"""Ablation (§3.1): Strata's log-then-digest write path vs NOVA's direct
DAX path on persistent memory.

The paper attributes Strata's PM deficit to exactly this: "Strata first
writes data to a log on persistent memory and then digests the log to
actual file blocks ... such logging is not necessary on persistent memory
devices", causing write amplification.
"""

from repro.bench.harness import build_strata
from repro.bench.workloads import sequential_write
from repro.devices.pm import PersistentMemoryDevice
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock

MIB = 1024 * 1024


def strata_pm_write() -> dict:
    stack = build_strata(pin_target="pm")
    pm = stack.devices["pm"]
    user_bytes = 16 * MIB
    before = pm.stats.bytes_written
    t0 = stack.clock.now_ns
    result = sequential_write(
        stack.fs, stack.clock, "/f", user_bytes, io_size=MIB, fsync_every=0
    )
    stack.fs.digest()  # land everything in its final PM home
    elapsed = (stack.clock.now_ns - t0) / 1e9
    return {
        "mb_s": (user_bytes / 1e6) / elapsed,
        "write_amp": (pm.stats.bytes_written - before) / user_bytes,
    }


def nova_pm_write() -> dict:
    clock = SimClock()
    pm = PersistentMemoryDevice("pm0", 64 * MIB, clock)
    nova = NovaFileSystem("nova", pm, clock)
    user_bytes = 16 * MIB
    before = pm.stats.bytes_written
    result = sequential_write(nova, clock, "/f", user_bytes, io_size=MIB, fsync_every=0)
    return {
        "mb_s": result.mb_per_s,
        "write_amp": (pm.stats.bytes_written - before) / user_bytes,
    }


def test_ablation_strata_log_write_amplification(benchmark):
    def run():
        return {"strata": strata_pm_write(), "nova": nova_pm_write()}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"PM writes: NOVA {result['nova']['mb_s']:.0f} MB/s "
        f"(amp {result['nova']['write_amp']:.2f}x) vs "
        f"Strata {result['strata']['mb_s']:.0f} MB/s "
        f"(amp {result['strata']['write_amp']:.2f}x)"
    )
    for system, stats in result.items():
        benchmark.extra_info[f"{system}_mb_s"] = round(stats["mb_s"], 1)
        benchmark.extra_info[f"{system}_write_amp"] = round(stats["write_amp"], 2)

    # log-then-digest doubles PM traffic; NOVA stays near 1x (COW only)
    assert result["strata"]["write_amp"] > 1.8
    assert result["nova"]["write_amp"] < 1.3
    assert result["nova"]["mb_s"] > result["strata"]["mb_s"]
