"""Ablation (§2.5): SCM cache on/off for a slow-tier working set.

The paper's motivation: "as storage continues to grow, DRAM is difficult
to scale.  Using SCM devices to offload DRAM page caches helps alleviate
the scalability problem."  We model exactly that regime: the hot working
set does NOT fit in the file system's DRAM page cache but DOES fit in the
SCM cache, so without the SCM cache every hot read thrashes to disk.
"""

from repro.bench.workloads import make_file
from repro.core.policies import PinnedPolicy
from repro.fscommon.pagecache import PageCache
from repro.sim.rng import DeterministicRng
from repro.stack import build_stack
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096

HOT_BYTES = 16 * MIB  # working set
DRAM_PAGES = 1024  # 4 MiB of DRAM page cache: too small for the hot set
FILE_BYTES = 48 * MIB


def hot_read_latency_us(enable_cache: bool) -> dict:
    stack = build_stack(
        capacities={"pm": 128 * MIB, "ssd": 128 * MIB, "hdd": 512 * MIB},
        enable_cache=enable_cache,
    )
    mux = stack.mux
    hdd_fs = stack.filesystems["hdd"]
    # model scarce DRAM: shrink ext4's page cache below the working set
    hdd_fs.page_cache = PageCache(
        stack.clock, DRAM_PAGES, BS, hdd_fs._writeback_page
    )
    mux.policy = PinnedPolicy(stack.tier_id("hdd"))
    handle = make_file(mux, stack.clock, "/data.bin", FILE_BYTES)

    # warm up: touch the whole hot set once (uncounted in both configs)
    for offset in range(0, HOT_BYTES, BS):
        mux.read(handle, offset, BS)

    rng = DeterministicRng(17)
    hot_blocks = HOT_BYTES // BS
    iterations = 2500
    before = mux.cache.stats.snapshot() if mux.cache is not None else {}
    t0 = stack.clock.now_ns
    for _ in range(iterations):
        mux.read(handle, rng.randint(0, hot_blocks - 1) * BS, BS)
    mean_us = (stack.clock.now_ns - t0) / 1000.0 / iterations
    stats = {"mean_us": mean_us}
    if mux.cache is not None:
        hits = mux.cache.stats.get("hit") - before.get("hit", 0)
        misses = mux.cache.stats.get("miss") - before.get("miss", 0)
        stats["hit_ratio"] = hits / (hits + misses) if hits + misses else 0.0
    mux.close(handle)
    return stats


def test_ablation_scm_cache(benchmark):
    def run():
        return {
            "cached": hot_read_latency_us(True),
            "uncached": hot_read_latency_us(False),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = result["uncached"]["mean_us"] / result["cached"]["mean_us"]
    print()
    print(
        f"hot-set reads beyond DRAM, from the HDD tier: "
        f"cached {result['cached']['mean_us']:.1f} us "
        f"(hit ratio {result['cached']['hit_ratio']:.2f}) vs "
        f"uncached {result['uncached']['mean_us']:.1f} us -> {speedup:.1f}x"
    )
    benchmark.extra_info["cached_us"] = round(result["cached"]["mean_us"], 2)
    benchmark.extra_info["uncached_us"] = round(result["uncached"]["mean_us"], 2)
    benchmark.extra_info["hit_ratio"] = round(result["cached"]["hit_ratio"], 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)

    assert result["cached"]["hit_ratio"] > 0.9
    assert speedup > 5.0
