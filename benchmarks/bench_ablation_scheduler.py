"""Ablation (§4): the device-profile I/O scheduler on a split read.

This ablation isolates the *serial* dispatch model (``parallel=False``):
with sub-requests charged one after another, reordering cannot change the
total time of one read — what the scheduler buys is **response ordering**:
fast-tier sub-requests are dispatched first, so the PM/SSD-resident
portion of a split read is available long before the HDD portion.  We
measure the simulated time until the fast tier's data has been served,
with the scheduler on vs off (FIFO in file order).

With the parallel engine (the default elsewhere) this effect disappears
by construction: every sub-request completes on its own device timeline,
so the PM portion arrives early regardless of dispatch order — see the
``parallel_stripe`` wallclock workload for that comparison.
"""

from repro.core.policy import MigrationOrder
from repro.core.scheduler import IoScheduler
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


def fast_data_service_time(enabled: bool) -> dict:
    stack = build_stack(
        capacities={"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 256 * MIB},
        enable_cache=False,
        scheduler=IoScheduler(enabled=enabled, parallel=False),
    )
    mux = stack.mux
    handle = mux.create("/split")
    blocks = 512  # 2 MiB
    mux.write(handle, 0, bytes(blocks * BS))
    # everything except the last 64 blocks goes to the hdd tier: in file
    # order, the hot PM-resident tail would be served *last*
    mux.engine.migrate_now(
        MigrationOrder(
            handle.ino, 0, blocks - 64, stack.tier_id("pm"), stack.tier_id("hdd")
        )
    )
    stack.filesystems["hdd"].page_cache.drop_clean()

    # observe when each tier's sub-request completes (the mux serves
    # uncached sub-requests through the zero-copy read_into path)
    completions = []
    original_read_into = stack.vfs.read_into

    def traced_read_into(h, offset, length, out, out_off=0):
        n = original_read_into(h, offset, length, out, out_off)
        completions.append((h.fs.fs_name, stack.clock.now_ns))
        return n

    stack.vfs.read_into = traced_read_into
    t0 = stack.clock.now_ns
    mux.read(handle, 0, blocks * BS)
    total_ms = (stack.clock.now_ns - t0) / 1e6
    stack.vfs.read_into = original_read_into

    pm_done = [t for fs_name, t in completions if fs_name == "nova"]
    stats = {
        "total_ms": total_ms,
        "fast_tier_served_ms": (min(pm_done) - t0) / 1e6 if pm_done else total_ms,
    }
    mux.close(handle)
    return stats


def test_ablation_io_scheduler(benchmark):
    def run():
        return {
            "on": fast_data_service_time(True),
            "off": fast_data_service_time(False),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"2 MiB split read (PM tail + HDD body): total {result['on']['total_ms']:.2f} ms; "
        f"PM data served after {result['on']['fast_tier_served_ms']:.3f} ms (scheduler on) "
        f"vs {result['off']['fast_tier_served_ms']:.2f} ms (off)"
    )
    for mode, stats in result.items():
        for key, value in stats.items():
            benchmark.extra_info[f"{mode}_{key}"] = round(value, 4)

    # same total work either way...
    assert abs(result["on"]["total_ms"] - result["off"]["total_ms"]) < 1.0
    # ...but the fast tier's data arrives far earlier with the scheduler
    assert (
        result["on"]["fast_tier_served_ms"] * 10
        < result["off"]["fast_tier_served_ms"]
    )
