"""Benchmark-suite configuration.

Every benchmark measures *simulated* time (deterministic, machine-
independent); pytest-benchmark's wall-clock numbers describe how long the
simulation takes to run, while the paper-comparison metrics are attached
as ``extra_info`` and printed as paper-vs-measured tables.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-scale",
        action="store_true",
        default=False,
        help="run benchmarks at full (slower) workload sizes",
    )


@pytest.fixture
def full_scale(request):
    return request.config.getoption("--full-scale")
