"""Figure 3b: per-device I/O throughput, Strata vs Mux.

Paper result: with random writes always directed to one target device,
Mux's throughput is 1.08x / 1.46x / 1.07x Strata's on PM / SSD / HDD —
the indirection layer more than pays for itself because NOVA/XFS/Ext4 are
better at driving their devices than Strata's log-then-digest path.
"""

from repro.bench.experiments import PAPER_IO_SPEEDUP, TIERS, experiment_fig3b
from repro.bench.harness import format_rows


def test_fig3b_device_io(benchmark, full_scale):
    total_mib = 24 if full_scale else 12
    result = benchmark.pedantic(
        experiment_fig3b, kwargs={"total_mib": total_mib}, rounds=1, iterations=1
    )
    print()
    print(format_rows(result.rows(), "== Figure 3b: device I/O throughput =="))

    for tier in TIERS:
        benchmark.extra_info[f"mux_{tier}_mb_s"] = round(result.mux_mb_s[tier], 1)
        benchmark.extra_info[f"strata_{tier}_mb_s"] = round(
            result.strata_mb_s[tier], 1
        )
        benchmark.extra_info[f"{tier}_speedup_paper"] = PAPER_IO_SPEEDUP[tier]
        benchmark.extra_info[f"{tier}_speedup_measured"] = round(
            result.speedup(tier), 2
        )

    # Mux wins on every device, as in the paper
    for tier in TIERS:
        assert result.speedup(tier) > 1.0
