"""§3.2 read overhead: 1-byte random reads, Mux vs native (no tiering).

Paper result: Mux increases worst-case read latency by +52.4% (NOVA/PM),
+87.3% (XFS/SSD) and +6.6% (Ext4/HDD).  The overhead is Mux's per-call
work (BLT lookup, affinity bookkeeping, OCC check, extra VFS dispatch)
plus the amortized lazy persistence of its own metadata to the metafile.
"""

from repro.bench.experiments import (
    PAPER_READ_OVERHEAD,
    TIERS,
    experiment_read_overhead,
)
from repro.bench.harness import format_rows


def test_read_latency_overhead(benchmark, full_scale):
    iterations = 1200 if full_scale else 400
    result = benchmark.pedantic(
        experiment_read_overhead,
        kwargs={"iterations": iterations},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_rows(result.rows(), "== §3.2 read latency overhead =="))

    for tier in TIERS:
        benchmark.extra_info[f"{tier}_native_us"] = round(result.native_us[tier], 2)
        benchmark.extra_info[f"{tier}_mux_us"] = round(result.mux_us[tier], 2)
        benchmark.extra_info[f"{tier}_overhead_paper_pct"] = PAPER_READ_OVERHEAD[tier]
        benchmark.extra_info[f"{tier}_overhead_measured_pct"] = round(
            result.overhead_pct(tier), 1
        )

    # overheads are positive everywhere; HDD pays the smallest percentage
    for tier in TIERS:
        assert result.overhead_pct(tier) > 0
    assert result.overhead_pct("hdd") < result.overhead_pct("pm")
