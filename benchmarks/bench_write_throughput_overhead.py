"""§3.2 write overhead: sequential 4 MiB writes, Mux vs native.

Paper result: Mux decreases write throughput by only 1.6% / 2.2% / 3.5%
on PM / SSD / HDD — per-operation costs amortize over 4 MiB transfers.
"""

from repro.bench.experiments import (
    PAPER_WRITE_OVERHEAD,
    TIERS,
    experiment_write_overhead,
)
from repro.bench.harness import format_rows


def test_write_throughput_overhead(benchmark):
    result = benchmark.pedantic(experiment_write_overhead, rounds=1, iterations=1)
    print()
    print(format_rows(result.rows(), "== §3.2 write throughput overhead =="))

    for tier in TIERS:
        benchmark.extra_info[f"{tier}_native_mb_s"] = round(
            result.native_mb_s[tier], 1
        )
        benchmark.extra_info[f"{tier}_mux_mb_s"] = round(result.mux_mb_s[tier], 1)
        benchmark.extra_info[f"{tier}_overhead_paper_pct"] = PAPER_WRITE_OVERHEAD[
            tier
        ]
        benchmark.extra_info[f"{tier}_overhead_measured_pct"] = round(
            result.overhead_pct(tier), 2
        )

    # the overhead is small: under 10% everywhere (paper: under 4%)
    for tier in TIERS:
        assert result.overhead_pct(tier) < 10.0
