"""Ablation (§2.2/§2.3): extent-tree BLT vs flat byte-array BLT.

The paper chooses an extent tree "as a high-performance data structure"
and separately sizes a byte-array variant ("one byte per 4 KB of user
data").  We compare lookup cost on sequential vs fragmented files and the
metadata footprint of both structures.
"""

from repro.core.blt import ByteArrayBlt, ExtentBlt
from repro.core.policy import MigrationOrder
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


def read_time_us(blt_factory, fragment: bool) -> dict:
    stack = build_stack(
        capacities={"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 256 * MIB},
        enable_cache=False,
        blt_factory=blt_factory,
    )
    mux = stack.mux
    handle = mux.create("/f")
    blocks = 4096  # 16 MiB
    for off in range(0, blocks * BS, MIB):
        mux.write(handle, off, bytes(MIB))
    if fragment:
        # alternate 8-block stripes onto the ssd tier -> many BLT extents
        for fb in range(0, blocks, 16):
            mux.engine.migrate_now(
                MigrationOrder(
                    handle.ino, fb, 8, stack.tier_id("pm"), stack.tier_id("ssd")
                )
            )
    inode = mux.ns.get(handle.ino)
    t0 = stack.clock.now_ns
    reads = 256
    for i in range(reads):
        offset = (i * 769 % blocks) * BS
        mux.read(handle, offset, BS)
    elapsed_us = (stack.clock.now_ns - t0) / 1000.0
    memory = inode.blt.memory_bytes()
    mux.close(handle)
    return {"mean_read_us": elapsed_us / reads, "blt_bytes": memory}


def test_ablation_blt_structures(benchmark):
    def run():
        return {
            "extent_seq": read_time_us(ExtentBlt, fragment=False),
            "extent_frag": read_time_us(ExtentBlt, fragment=True),
            "flat_seq": read_time_us(ByteArrayBlt, fragment=False),
            "flat_frag": read_time_us(ByteArrayBlt, fragment=True),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, stats in result.items():
        print(
            f"{name:12s}: read {stats['mean_read_us']:8.2f} us/4KiB, "
            f"BLT footprint {stats['blt_bytes']:7d} B"
        )
    for name, stats in result.items():
        benchmark.extra_info[f"{name}_read_us"] = round(stats["mean_read_us"], 2)
        benchmark.extra_info[f"{name}_blt_bytes"] = stats["blt_bytes"]

    # extent tree: tiny footprint on sequential files (coalescing)
    assert result["extent_seq"]["blt_bytes"] < result["flat_seq"]["blt_bytes"] / 10
    # paper §2.3 space bound holds for the flat table: <= 0.025% of data
    assert result["flat_seq"]["blt_bytes"] / (4096 * BS) <= 0.00025
