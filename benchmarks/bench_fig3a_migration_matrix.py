"""Figure 3a: migration extensibility + throughput matrix.

Paper result: Mux migrates between *all six* device pairs; Strata supports
only PM→SSD and PM→HDD (everything else N/S).  On the shared PM→SSD path
Mux is 2.59x faster because it delegates to production file systems
instead of Strata's digest-unit device writes under extent-tree locks.
"""

from repro.bench.experiments import experiment_fig3a
from repro.bench.harness import format_rows


def test_fig3a_migration_matrix(benchmark, full_scale):
    file_mib = 16 if full_scale else 8
    result = benchmark.pedantic(
        experiment_fig3a, kwargs={"file_mib": file_mib}, rounds=1, iterations=1
    )
    print()
    print(format_rows(result.rows(), "== Figure 3a: migration matrix =="))

    for (src, dst), mb_s in result.mux.items():
        benchmark.extra_info[f"mux_{src}_to_{dst}_mb_s"] = round(mb_s, 1)
    for (src, dst), mb_s in result.strata.items():
        benchmark.extra_info[f"strata_{src}_to_{dst}_mb_s"] = round(mb_s, 1)
    benchmark.extra_info["mux_supported_pairs"] = result.mux_supported_pairs
    benchmark.extra_info["strata_supported_pairs"] = result.strata_supported_pairs
    benchmark.extra_info["pm_ssd_speedup_paper"] = 2.59
    benchmark.extra_info["pm_ssd_speedup_measured"] = round(
        result.speedup_pm_ssd(), 2
    )

    # the shapes the paper reports
    assert result.mux_supported_pairs == 6
    assert result.strata_supported_pairs == 2
    for pair in result.strata:
        assert result.mux[pair] > result.strata[pair]
