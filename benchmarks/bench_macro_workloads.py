"""Application-level macro benchmarks: fileserver / webserver / varmail on
HDD-only Ext4, Strata, and Mux.

Not a figure from the paper — these are the workloads the paper's
introduction motivates tiered storage with, used here to sanity-check
that the tiering actually pays off at the application level.
"""

import pytest

from repro.bench.harness import build_strata
from repro.bench.macro import ALL_WORKLOADS
from repro.devices.hdd import HardDiskDrive
from repro.fs.ext4 import Ext4FileSystem
from repro.sim.clock import SimClock
from repro.stack import build_stack

MIB = 1024 * 1024
CAPS = {"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 512 * MIB}


def run_all(workload):
    clock = SimClock()
    ext4 = Ext4FileSystem("ext4", HardDiskDrive("hdd0", CAPS["hdd"], clock), clock)
    ext4_result = workload(ext4, clock)

    strata_stack = build_strata(capacities=CAPS)
    strata_result = workload(strata_stack.fs, strata_stack.clock)

    mux_stack = build_stack(capacities=CAPS)
    mux_result = workload(mux_stack.mux, mux_stack.clock)
    return {
        "ext4_hdd": ext4_result,
        "strata": strata_result,
        "mux": mux_result,
    }


@pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
def test_macro_workload(benchmark, name):
    workload = ALL_WORKLOADS[name]
    results = benchmark.pedantic(run_all, args=(workload,), rounds=1, iterations=1)
    print()
    for system, result in results.items():
        print(f"  {system:10s} {result.summary()}")
        benchmark.extra_info[f"{system}_ops_per_sec"] = round(result.ops_per_sec)

    # tiering (either system) must beat the HDD-only baseline on the
    # fsync-heavy mail workload; Mux must always be in the same league as
    # Strata (>= 0.5x) and beat plain HDD on fileserver
    if name == "varmail":
        assert results["mux"].ops_per_sec > 10 * results["ext4_hdd"].ops_per_sec
    if name == "fileserver":
        assert results["mux"].ops_per_sec > results["ext4_hdd"].ops_per_sec
    assert results["mux"].ops_per_sec > 0.5 * results["strata"].ops_per_sec
