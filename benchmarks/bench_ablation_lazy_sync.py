"""Ablation (§2.3): how lazily should Mux synchronize its metadata?

"Mux bookkeeps the affinitive file system per attribute ... and lazily
synchronizes participating file systems."  The sync interval is the knob:
flushing Mux's metadata records to the metafile every Nth record trades
read-path latency (each flush is an append+fsync on the meta tier)
against staleness.  On a single-HDD stack — where the metafile shares the
slow device — the cost is starkly visible, which is exactly the §3.2
worst case.
"""

from repro.bench.harness import build_pinned_mux
from repro.bench.workloads import make_file, random_read_single_byte
from repro.core import calibration as cal

MIB = 1024 * 1024

INTERVALS = [4, 16, 48, 192]


def hdd_read_latency_us(sync_interval: int) -> float:
    original = cal.META_SYNC_RECORDS
    cal.META_SYNC_RECORDS = sync_interval
    try:
        stack = build_pinned_mux(
            "hdd", tiers=["hdd"], capacities={"hdd": 512 * MIB}
        )
        handle = make_file(stack.mux, stack.clock, "/big.bin", 128 * MIB)
        stack.mux.close(handle)
        result = random_read_single_byte(
            stack.mux, stack.clock, "/big.bin", 128 * MIB, iterations=300
        )
        return result.mean_us
    finally:
        cal.META_SYNC_RECORDS = original


def test_ablation_lazy_sync_interval(benchmark):
    def run():
        return {interval: hdd_read_latency_us(interval) for interval in INTERVALS}

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for interval, mean_us in result.items():
        print(
            f"  sync every {interval:4d} records -> "
            f"mean 1-byte HDD read {mean_us:8.1f} us"
        )
        benchmark.extra_info[f"interval_{interval}_us"] = round(mean_us, 1)

    # lazier synchronization monotonically cheapens the read path
    assert result[4] > result[48] > 0
    assert result[192] <= result[48] * 1.05