"""Ablation (§2.4): OCC Synchronizer vs lock-based migration.

The paper's claim: OCC "minimizes the critical path of user requests and
enables the parallel execution of migration without pessimistic blocking".
We measure the time for a user write to complete while a large migration
is in flight: under OCC the write slips between copy chunks; under the
pessimistic lock it waits for the whole movement.
"""

import pytest

from repro.core.policy import MigrationOrder
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


def user_write_completion_time(force_lock: bool) -> float:
    stack = build_stack(
        capacities={"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 256 * MIB},
        enable_cache=False,
    )
    mux = stack.mux
    mux.engine.occ.force_lock = force_lock
    handle = mux.create("/big")
    size = 24 * MIB
    chunk = bytes(MIB)
    for off in range(0, size, MIB):
        mux.write(handle, off, chunk)
    order = MigrationOrder(
        handle.ino, 0, size // BS, stack.tier_id("pm"), stack.tier_id("ssd")
    )
    task = mux.engine.submit(order)
    issue_ns = stack.clock.now_ns
    task.step()  # the migration starts (and under the lock, finishes)
    mux.write(handle, 0, b"user write during migration")
    latency = stack.clock.now_ns - issue_ns
    task.join()
    mux.close(handle)
    return latency / 1000.0  # us


def test_ablation_occ_vs_lock(benchmark):
    def run():
        return {
            "occ_us": user_write_completion_time(force_lock=False),
            "lock_us": user_write_completion_time(force_lock=True),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(
        f"user write completion during 24 MiB migration: "
        f"OCC {result['occ_us']:.1f} us vs lock {result['lock_us']:.1f} us "
        f"({result['lock_us'] / result['occ_us']:.0f}x stall reduction)"
    )
    benchmark.extra_info.update(result)
    # OCC keeps user writes off the migration's critical path
    assert result["occ_us"] * 10 < result["lock_us"]


def test_ablation_occ_retry_cost(benchmark):
    """Conflicting writes force retries; the migration still converges."""

    def run():
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(256 * BS))
        inode = mux.ns.get(handle.ino)
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, 256, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        step = 0
        while task.step():
            if step % 2 == 0 and inode.migration_active:
                mux.write(handle, (step % 256) * BS, b"conflict")
            step += 1
        result = task.result
        mux.close(handle)
        return {
            "attempts": result.attempts,
            "conflicts": result.conflicts,
            "lock_fallback": result.lock_fallback,
            "moved_blocks": result.moved_blocks,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"conflicted migration: {stats}")
    benchmark.extra_info.update(
        {k: (int(v) if isinstance(v, bool) else v) for k, v in stats.items()}
    )
    assert stats["attempts"] >= 2 or stats["lock_fallback"]
