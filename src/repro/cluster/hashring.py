"""Consistent hashing of directory subtrees onto shards.

The classic Karger ring with virtual nodes: each shard owns ``vnodes``
points on a 64-bit circle, a key maps to the first point clockwise from
its hash.  Adding or removing one shard therefore remaps only the keys
whose arc the new/old shard's points cover — about ``1/N`` of the
namespace — which is the property that makes shard membership changes
cheap (only the moved subtrees need data migration).

Hashes come from ``blake2b``, so placement is deterministic across
processes and Python versions (``hash()`` is salted per process and must
never leak into simulated behaviour).
"""

from __future__ import annotations

from bisect import bisect_right
from hashlib import blake2b
from typing import Dict, List, Tuple

from repro.errors import InvalidArgument


def _point(data: str) -> int:
    """Deterministic 64-bit position on the circle."""
    return int.from_bytes(blake2b(data.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring mapping string keys to integer shard ids."""

    def __init__(self, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise InvalidArgument(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        #: sorted circle positions and the shard owning each
        self._points: List[Tuple[int, int]] = []
        self._nodes: Dict[int, None] = {}

    def add_node(self, node_id: int) -> None:
        if node_id in self._nodes:
            raise InvalidArgument(f"shard {node_id} already on the ring")
        self._nodes[node_id] = None
        for v in range(self.vnodes):
            self._points.append((_point(f"shard-{node_id}#vn-{v}"), node_id))
        self._points.sort()

    def remove_node(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise InvalidArgument(f"shard {node_id} is not on the ring")
        del self._nodes[node_id]
        self._points = [(p, n) for p, n in self._points if n != node_id]

    def nodes(self) -> List[int]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def node_for(self, key: str) -> int:
        """The shard owning ``key`` (first ring point clockwise)."""
        if not self._points:
            raise InvalidArgument("hash ring has no shards")
        h = _point(f"key:{key}")
        idx = bisect_right(self._points, (h, 2**64))
        if idx == len(self._points):
            idx = 0  # wrap around the circle
        return self._points[idx][1]

    def spread(self, keys: List[str]) -> Dict[int, int]:
        """Key count per shard — balance diagnostics for tests/benchmarks."""
        out: Dict[int, int] = {n: 0 for n in self._nodes}
        for key in keys:
            out[self.node_for(key)] += 1
        return out
