"""ClusterMux: one namespace sharded across N Mux instances (§4).

Sharding model
--------------

The unit of placement is a **directory subtree**: the first two path
components (``/tenants/t3/f0`` -> subtree ``tenants/t3``; a depth-1
entry is its own subtree).  Subtrees map to shards through a
consistent-hash ring with virtual nodes (:mod:`repro.cluster.hashring`),
overridden by an explicit relocation table that rebalancing and
cross-shard directory renames maintain.  Depth-1 directories are
*global* — replicated on every shard — so every shard can resolve the
parents of the subtrees it owns; ``readdir`` on them merges the shards'
entries into one view.

Every shard is a full independent Mux stack (own devices, native file
systems, VFS), all driven on **one** :class:`~repro.sim.clock.SimClock`.
Synchronous calls route to the owning shard and charge exactly what a
single Mux would; the submit/complete path (:class:`ClusterRing`) gives
each op its own clock frame on its shard, so ops on different shards
overlap in simulated time and completions reap in ``(completed_ns, seq)``
order — the discipline of :mod:`repro.core.ring` lifted to the cluster.

Cross-shard data movement — rename and subtree rebalancing — pays a
simulated network wire (:class:`~repro.fs.nfs.NetworkFileSystem` around
the destination shard) with its RTT and bandwidth cost.  Rename is
two-phase with a durable intent record so a crash converges to exactly
one of {old, new}; rebalancing is run-level OCC: files copy while
foreground writes proceed, per-file write sequence numbers validate the
copies, conflicted files retry, and a bounded-retry pessimistic fallback
(suspended frames + ring quiesce, like :mod:`repro.core.occ`) guarantees
completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.cluster.hashring import HashRing
from repro.core.ring import Completion, Submission
from repro.errors import (
    CrossDevice,
    DirectoryNotEmpty,
    FileNotFound,
    FsError,
    InvalidArgument,
    IsADirectory,
    NotSupported,
)
from repro.fs.nfs import NetworkFileSystem
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs import path as vpath
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags
from repro.vfs.stat import FsStats, Stat

#: per-shard housekeeping directory (hidden from cluster readdir)
META_DIR = "/.cluster"
OVERRIDES_PATH = META_DIR + "/overrides"
INTENT_PATH = META_DIR + "/rename-intent"
#: temp-name suffixes for two-phase copies (cross-shard rename / rebalance)
RENAME_TMP = ".~xsr"
MIGRATE_TMP = ".~mig"
#: bytes per cross-shard copy chunk (one wire RPC each)
COPY_CHUNK = 256 * 1024
#: OCC validation attempts before the pessimistic lock fallback
OCC_MAX_RETRIES = 3


@dataclass
class _Shard:
    """One member Mux stack plus its network-facing wrapper."""

    shard_id: int
    stack: object  # repro.stack.Stack
    wire: NetworkFileSystem

    @property
    def mux(self):
        return self.stack.mux


class ClusterMux(FileSystem):
    """N sharded Mux instances behind the single-Mux VFS/ring API."""

    fs_name = "cluster"

    def __init__(
        self,
        stacks: List[object],
        clock: SimClock,
        vnodes: int = 64,
        rtt_us: float = 100.0,
        bandwidth: float = 1.25e9,
    ) -> None:
        if not stacks:
            raise InvalidArgument("a cluster needs at least one shard")
        self.clock = clock
        self.ring = HashRing(vnodes)
        self.shards: List[_Shard] = []
        for shard_id, stack in enumerate(stacks):
            if stack.clock is not clock:
                raise InvalidArgument(
                    f"shard {shard_id} runs on a different SimClock"
                )
            wire = NetworkFileSystem(
                f"wire-s{shard_id}", stack.mux, clock,
                rtt_us=rtt_us, bandwidth=bandwidth,
            )
            self.shards.append(_Shard(shard_id, stack, wire))
            self.ring.add_node(shard_id)
        self.block_size = self.shards[0].mux.block_size
        #: subtree key -> shard id, consulted before the hash ring
        #: (rebalanced subtrees, cross-shard directory renames)
        self.overrides: Dict[str, int] = {}
        self.stats = CounterSet()
        #: host-side routing telemetry: data ops per shard / per subtree
        self._shard_ops: Dict[int, int] = {s.shard_id: 0 for s in self.shards}
        self._subtree_ops: Dict[str, int] = {}
        #: OCC state for rebalancing: (shard_id, ino) -> write sequence,
        #: and per-subtree namespace sequence (create/unlink/rename)
        self._write_seq: Dict[Tuple[int, int], int] = {}
        self._ns_seq: Dict[str, int] = {}
        #: test hook: called at labeled points of two-phase protocols so
        #: crash tests can cut power at every step
        self._crash_hook: Optional[Callable[[str], None]] = None
        for shard in self.shards:
            shard.mux.mkdir(META_DIR)

    # -- routing -----------------------------------------------------------

    @staticmethod
    def subtree_key(path: str) -> Optional[str]:
        """The placement key of a path: its first two components."""
        comps = vpath.components(path)
        if not comps:
            return None
        return comps[0] if len(comps) == 1 else comps[0] + "/" + comps[1]

    def shard_of_key(self, key: str) -> _Shard:
        shard_id = self.overrides.get(key)
        if shard_id is None:
            shard_id = self.ring.node_for(key)
        return self.shards[shard_id]

    def _shard_for(self, path: str) -> _Shard:
        key = self.subtree_key(path)
        if key is None:
            return self.shards[0]
        return self.shard_of_key(key)

    def _hook(self, label: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(label)

    # -- handle plumbing ---------------------------------------------------

    def _wrap(self, shard: _Shard, inner: FileHandle, path: str, flags: int) -> FileHandle:
        handle = FileHandle(self, (shard.shard_id << 32) | inner.ino, path, flags)
        handle.private = {
            "shard": shard.shard_id,
            "inner": inner,
            "key": self.subtree_key(path),
        }
        return handle

    def _unwrap(self, handle: FileHandle) -> Tuple[_Shard, FileHandle]:
        handle.ensure_open()
        private = handle.private
        if not isinstance(private, dict) or "inner" not in private:
            raise RuntimeError("foreign handle passed to ClusterMux")
        return self.shards[private["shard"]], private["inner"]

    def _note_op(self, shard: _Shard, key: Optional[str]) -> None:
        """Host-side routing telemetry + pressure sampling (no clock cost)."""
        self._shard_ops[shard.shard_id] += 1
        if key is not None:
            self._subtree_ops[key] = self._subtree_ops.get(key, 0) + 1
        shard.mux.pressure.sample(self.clock.now_ns)

    def note_write(self, shard_id: int, ino: int) -> None:
        """Bump the OCC write sequence rebalancing validates against."""
        key = (shard_id, ino)
        self._write_seq[key] = self._write_seq.get(key, 0) + 1

    def _note_ns(self, key: Optional[str]) -> None:
        if key is not None:
            self._ns_seq[key] = self._ns_seq.get(key, 0) + 1

    # -- namespace ---------------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        path = vpath.normalize(path)
        shard = self._shard_for(path)
        inner = shard.mux.create(path, mode)
        self._note_ns(self.subtree_key(path))
        return self._wrap(shard, inner, path, OpenFlags.RDWR)

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        path = vpath.normalize(path)
        shard = self._shard_for(path)
        existed = (flags & OpenFlags.CREAT) and shard.mux.ns.exists(path)
        inner = shard.mux.open(path, flags)
        if (flags & OpenFlags.CREAT) and not existed:
            self._note_ns(self.subtree_key(path))
        return self._wrap(shard, inner, path, flags)

    def close(self, handle: FileHandle) -> None:
        shard, inner = self._unwrap(handle)
        handle.mark_closed()
        shard.mux.close(inner)

    def unlink(self, path: str) -> None:
        path = vpath.normalize(path)
        self._shard_for(path).mux.unlink(path)
        self._note_ns(self.subtree_key(path))

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        path = vpath.normalize(path)
        comps = vpath.components(path)
        if not comps:
            raise InvalidArgument("mkdir on root")
        if len(comps) == 1:
            # depth-1 directories are global: every shard can then resolve
            # the parents of the subtrees the ring assigns to it
            for shard in self.shards:
                shard.mux.mkdir(path, mode)
        else:
            self._shard_for(path).mux.mkdir(path, mode)
            self._note_ns(self.subtree_key(path))

    def rmdir(self, path: str) -> None:
        path = vpath.normalize(path)
        comps = vpath.components(path)
        if len(comps) == 1:
            # global directory: refuse unless empty on *every* shard, so a
            # partial rmdir can never strand subtrees
            for shard in self.shards:
                if shard.mux.readdir(path):
                    raise DirectoryNotEmpty(f"cluster: {path!r} is not empty")
            for shard in self.shards:
                shard.mux.rmdir(path)
        else:
            self._shard_for(path).mux.rmdir(path)
            self._note_ns(self.subtree_key(path))

    def readdir(self, path: str) -> List[str]:
        path = vpath.normalize(path)
        comps = vpath.components(path)
        if len(comps) >= 2:
            return self._shard_for(path).mux.readdir(path)
        if len(comps) == 1:
            # a depth-1 file lives on its hash shard; a depth-1 directory
            # is global and its children are spread across all shards
            owner = self._shard_for(path)
            if not owner.mux.getattr(path).is_dir:
                return owner.mux.readdir(path)  # raises NotADirectory
        names = set()
        for shard in self.shards:
            try:
                names.update(shard.mux.readdir(path))
            except FileNotFound:
                continue
        names.discard(META_DIR[1:])
        return sorted(names)

    def getattr(self, path: str) -> Stat:
        path = vpath.normalize(path)
        return self._shard_for(path).mux.getattr(path)

    def setattr(self, path: str, **attrs: object) -> Stat:
        path = vpath.normalize(path)
        comps = vpath.components(path)
        owner = self._shard_for(path)
        result = owner.mux.setattr(path, **attrs)
        if len(comps) == 1 and result.is_dir:
            # keep the global directory skeleton consistent
            for shard in self.shards:
                if shard is not owner:
                    shard.mux.setattr(path, **attrs)
        return result

    # -- rename ------------------------------------------------------------

    def rename(self, old_path: str, new_path: str) -> None:
        old_path = vpath.normalize(old_path)
        new_path = vpath.normalize(new_path)
        src = self._shard_for(old_path)
        dst = self._shard_for(new_path)
        if src.shard_id == dst.shard_id:
            src.mux.rename(old_path, new_path)
            self._note_ns(self.subtree_key(old_path))
            self._note_ns(self.subtree_key(new_path))
            return
        moving = src.mux.getattr(old_path)  # raises FileNotFound
        if moving.is_dir:
            self._rename_dir_cross(src, old_path, new_path)
        else:
            self._rename_file_cross(src, dst, old_path, new_path)
        self._note_ns(self.subtree_key(old_path))
        self._note_ns(self.subtree_key(new_path))

    def _rename_dir_cross(self, src: _Shard, old_path: str, new_path: str) -> None:
        """Cross-shard directory rename: move the name, not the data.

        A subtree-root rename keeps the data on its current shard and
        redirects routing through the override table — the subtree can be
        shipped later by rebalancing.  Renames that would bury one
        subtree inside another shard's subtree are EXDEV, like POSIX
        cross-mount renames.
        """
        old_comps = vpath.components(old_path)
        new_comps = vpath.components(new_path)
        if len(old_comps) == 1:
            raise NotSupported("cluster: cannot rename a global top-level directory")
        if len(old_comps) != 2 or len(new_comps) != 2:
            raise CrossDevice(
                f"cluster: directory rename {old_path!r} -> {new_path!r} "
                "crosses shards"
            )
        src.mux.rename(old_path, new_path)
        old_key = self.subtree_key(old_path)
        new_key = self.subtree_key(new_path)
        self.overrides.pop(old_key, None)
        if self.ring.node_for(new_key) == src.shard_id:
            self.overrides.pop(new_key, None)
        else:
            self.overrides[new_key] = src.shard_id
        self._persist_overrides()
        self.stats.add("dir_renames_redirected")

    def _rename_file_cross(
        self, src: _Shard, dst: _Shard, old_path: str, new_path: str
    ) -> None:
        """Two-phase cross-shard file rename with a durable intent record.

        1. copy to a temp name on the destination through the wire and
           fsync it (the destination's two-phase BLT-atomic write path
           makes each copied span durable-or-absent);
        2. persist an intent record on the destination, then commit:
           rename temp over the target, unlink the source.

        A crash before the intent is durable leaves only a stray temp
        (swept at recovery — the old name wins); after it, recovery rolls
        the rename forward (the new name wins).  Exactly one of
        {old, new} survives any cut.
        """
        parent = vpath.dirname(new_path)
        if parent != vpath.ROOT:
            if not dst.mux.getattr(parent).is_dir:
                raise FileNotFound(f"cluster: {parent!r} is not a directory")
        try:
            existing = dst.mux.getattr(new_path)
        except FileNotFound:
            pass
        else:
            if existing.is_dir:
                raise IsADirectory(f"cluster: {new_path!r} is a directory")
        tmp = new_path + RENAME_TMP
        bytes_moved = self._copy_file(src, dst, old_path, tmp)
        self._hook("copied")
        self._write_intent(dst, old_path, new_path, tmp)
        self._hook("intent")
        dst.mux.rename(tmp, new_path)
        dst.mux.sync()
        self._hook("committed")
        src.mux.unlink(old_path)
        src.mux.sync()
        self._hook("unlinked")
        self._clear_intent(dst)
        self.stats.add("cross_shard_renames")
        self.stats.add("cross_shard_rename_bytes", bytes_moved)

    def _copy_file(
        self, src: _Shard, dst: _Shard, src_path: str, dst_path: str
    ) -> int:
        """Copy file content shard-to-shard over the wire; returns bytes.

        Reads are local to the source shard; every written chunk pays the
        destination wire's RTT + transfer cost.  The copy ends with an
        fsync, so the destination holds a durable replica before any
        commit step runs.
        """
        st = src.mux.getattr(src_path)
        rh = src.mux.open(src_path, OpenFlags.RDONLY)
        wh = dst.wire.open(
            dst_path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        )
        copied = 0
        try:
            while copied < st.size:
                chunk = min(COPY_CHUNK, st.size - copied)
                data = src.mux.read(rh, copied, chunk)
                if not data:
                    break
                dst.wire.write(wh, copied, data)
                copied += len(data)
            dst.wire.fsync(wh)
        finally:
            dst.wire.close(wh)
            src.mux.close(rh)
        return copied

    def _write_intent(self, dst: _Shard, old: str, new: str, tmp: str) -> None:
        payload = f"{old}\n{new}\n{tmp}\n".encode()
        handle = dst.mux.open(
            INTENT_PATH, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        )
        try:
            dst.mux.write(handle, 0, payload)
            dst.mux.fsync(handle)
        finally:
            dst.mux.close(handle)

    def _clear_intent(self, dst: _Shard) -> None:
        if dst.mux.ns.exists(INTENT_PATH):
            dst.mux.unlink(INTENT_PATH)

    # -- data --------------------------------------------------------------

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        shard, inner = self._unwrap(handle)
        self._note_op(shard, handle.private.get("key"))
        return shard.mux.read(inner, offset, length)

    def read_into(
        self, handle: FileHandle, offset: int, length: int, out: bytearray, out_off: int = 0
    ) -> int:
        shard, inner = self._unwrap(handle)
        self._note_op(shard, handle.private.get("key"))
        return shard.mux.read_into(inner, offset, length, out, out_off)

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        shard, inner = self._unwrap(handle)
        self._note_op(shard, handle.private.get("key"))
        self.note_write(shard.shard_id, inner.ino)
        return shard.mux.write(inner, offset, data)

    def truncate(self, handle: FileHandle, size: int) -> None:
        shard, inner = self._unwrap(handle)
        self.note_write(shard.shard_id, inner.ino)
        shard.mux.truncate(inner, size)

    def fsync(self, handle: FileHandle) -> None:
        shard, inner = self._unwrap(handle)
        self._note_op(shard, handle.private.get("key"))
        shard.mux.fsync(inner)

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        shard, inner = self._unwrap(handle)
        self.note_write(shard.shard_id, inner.ino)
        shard.mux.punch_hole(inner, offset, length)

    def set_placement(self, path: str, tier_id: Optional[int]) -> None:
        """Pin ``path`` to a tier id on its owning shard (shards are
        built identically, so tier ids are cluster-wide)."""
        self._shard_for(vpath.normalize(path)).mux.set_placement(path, tier_id)

    # -- async rings -------------------------------------------------------

    def open_ring(self, depth: int = 8) -> "ClusterRing":
        """A cluster-wide submit/complete ring (one inner ring per shard)."""
        return ClusterRing(self, depth)

    # -- aggregates / housekeeping ----------------------------------------

    def statfs(self) -> FsStats:
        total = 0
        free = 0
        for shard in self.shards:
            st = shard.mux.statfs()
            total += st.total_blocks
            free += st.free_blocks
        return FsStats(
            block_size=self.block_size, total_blocks=total, free_blocks=free
        )

    def sync(self) -> None:
        for shard in self.shards:
            shard.mux.sync()

    def maintain(self, max_rounds: int = 4) -> int:
        return sum(s.mux.maintain(max_rounds) for s in self.shards)

    def maintain_async(self) -> int:
        return sum(s.mux.maintain_async() for s in self.shards)

    def crash(self) -> None:
        """Power-cut every shard (volatile cluster routing state is lost)."""
        for shard in self.shards:
            shard.mux.crash()

    def recover(self) -> None:
        """Recover every shard, then converge cluster-level two-phase state.

        The override table reloads from its durable per-shard copies;
        interrupted cross-shard renames roll forward once their intent
        record was durable (the copy is always durable before the intent),
        otherwise their stray temp files are swept and the source wins.
        """
        for shard in self.shards:
            shard.mux.recover()
            if not shard.mux.ns.exists(META_DIR):
                shard.mux.mkdir(META_DIR)
        self.overrides = self._load_overrides()
        for dst in self.shards:
            self._replay_intent(dst)
        for shard in self.shards:
            self._sweep_temps(shard)
        self._write_seq.clear()
        self._ns_seq.clear()

    def _replay_intent(self, dst: _Shard) -> None:
        if not dst.mux.ns.exists(INTENT_PATH):
            return
        lines = dst.mux.read_file(INTENT_PATH).decode().splitlines()
        if len(lines) == 3:
            old, new, tmp = lines
            src = self._shard_for(old)
            if dst.mux.ns.exists(tmp):
                # durable copy, commit never happened: roll forward
                dst.mux.rename(tmp, new)
                dst.mux.sync()
            if dst.mux.ns.exists(new) and src.mux.ns.exists(old):
                src.mux.unlink(old)
                src.mux.sync()
            self.stats.add("recovered_renames")
        self._clear_intent(dst)

    def _sweep_temps(self, shard: _Shard) -> None:
        """Unlink two-phase temp files whose protocol never reached intent."""

        def walk(path: str) -> None:
            for name in shard.mux.readdir(path):
                child = path.rstrip("/") + "/" + name
                if child == META_DIR:
                    continue
                if shard.mux.getattr(child).is_dir:
                    walk(child)
                elif name.endswith(RENAME_TMP) or name.endswith(MIGRATE_TMP):
                    shard.mux.unlink(child)
                    self.stats.add("swept_temps")

        walk("/")

    # -- override-table durability ----------------------------------------

    def _persist_overrides(self) -> None:
        payload = "".join(
            f"{key} {sid}\n" for key, sid in sorted(self.overrides.items())
        ).encode()
        for shard in self.shards:
            handle = shard.mux.open(
                OVERRIDES_PATH, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
            )
            try:
                if payload:
                    shard.mux.write(handle, 0, payload)
                shard.mux.fsync(handle)
            finally:
                shard.mux.close(handle)

    def _load_overrides(self) -> Dict[str, int]:
        for shard in self.shards:
            if not shard.mux.ns.exists(OVERRIDES_PATH):
                continue
            out: Dict[str, int] = {}
            for line in shard.mux.read_file(OVERRIDES_PATH).decode().splitlines():
                key, _, sid = line.rpartition(" ")
                out[key] = int(sid)
            return out
        return {}

    # -- pressure gauge + rebalancing -------------------------------------

    def shard_loads(self) -> Dict[int, float]:
        """Per-shard load: the worst tier EWMA gauge on each member Mux.

        Gauges are fed by the routed data ops (interval-gated sampling in
        :meth:`_note_op`), so a shard that just served a hotspot reads
        hot even after its queues drain.
        """
        loads: Dict[int, float] = {}
        for shard in self.shards:
            monitor = shard.mux.pressure
            loads[shard.shard_id] = max(
                (monitor.load_of(t) for t in shard.mux.tier_ids()),
                default=0.0,
            )
        return loads

    def subtree_owner(self, key: str) -> int:
        return self.shard_of_key(key).shard_id

    def rebalance(
        self, max_moves: int = 4, imbalance: float = 2.0
    ) -> Dict[str, int]:
        """Shed hot subtrees from the most-loaded shard to its peers.

        Triggered when the hottest shard's pressure load exceeds
        ``imbalance`` times the least-loaded peer's.  The hot shard's
        subtrees are ranked by routed-op count and shipped one at a time
        (run-level OCC migration over the wire) to whichever peer is
        least loaded at that point, until the hot shard's expected share
        drops to ~1/N of its traffic or ``max_moves`` is reached.
        """
        summary = {
            "moves": 0, "files_moved": 0, "bytes_moved": 0,
            "conflicts": 0, "lock_fallbacks": 0,
        }
        if len(self.shards) < 2:
            return summary
        loads = self.shard_loads()
        hot_id = max(loads, key=lambda s: (loads[s], -s))
        peers = [s for s in loads if s != hot_id]
        coldest = min(loads[p] for p in peers)
        if loads[hot_id] <= max(coldest, 0.05) * imbalance:
            return summary
        hot_keys = sorted(
            (
                key
                for key, count in self._subtree_ops.items()
                if count > 0 and self.subtree_owner(key) == hot_id
            ),
            key=lambda k: (-self._subtree_ops[k], k),
        )
        total_ops = sum(self._subtree_ops[k] for k in hot_keys)
        shed_target = total_ops * (len(self.shards) - 1) / len(self.shards)
        assigned: Dict[int, float] = {p: loads[p] for p in peers}
        shed = 0
        for key in hot_keys:
            if summary["moves"] >= max_moves or shed >= shed_target:
                break
            dst_id = min(peers, key=lambda p: (assigned[p], p))
            moved = self.migrate_subtree(key, dst_id)
            summary["moves"] += 1
            summary["files_moved"] += moved["files_moved"]
            summary["bytes_moved"] += moved["bytes_moved"]
            summary["conflicts"] += moved["conflicts"]
            summary["lock_fallbacks"] += moved["lock_fallbacks"]
            share = self._subtree_ops.get(key, 0) or 1
            assigned[dst_id] += loads[hot_id] * share / max(total_ops, 1)
            shed += share
            self._subtree_ops[key] = 0
        self.stats.add("rebalances")
        return summary

    # -- run-level OCC subtree migration ----------------------------------

    def migrate_subtree(self, key: str, dst_id: int) -> Dict[str, int]:
        """Move one subtree to ``dst_id``, driving the OCC task to completion."""
        gen = self.migrate_subtree_task(key, dst_id)
        while True:
            try:
                next(gen)
            except StopIteration as stop:
                return stop.value

    def migrate_subtree_task(
        self, key: str, dst_id: int
    ) -> Generator[None, None, Dict[str, int]]:
        """Cooperative generator migrating subtree ``key`` between shards.

        Yields between copy chunks, so tests can interleave adversarial
        foreground writes at every step (``repro.sim.tasks``).  The OCC
        discipline mirrors :class:`repro.core.occ.OccSynchronizer` at the
        file granularity: copy optimistically, validate against the
        cluster write/namespace sequence numbers, retry conflicted files,
        and after ``OCC_MAX_RETRIES`` fall back to a pessimistic lock
        (suspended frames + shard ring quiesce) that cannot race.
        The commit — rename the copies into place on the destination,
        flip the routing override, drop the source copies — runs without
        a single yield, so no foreground op observes a half-moved subtree.
        """
        summary = {
            "files_moved": 0, "bytes_moved": 0,
            "conflicts": 0, "attempts": 0, "lock_fallbacks": 0,
        }
        src = self.shard_of_key(key)
        if src.shard_id == dst_id:
            return summary
        dst = self.shards[dst_id]
        root = "/" + key
        if not src.mux.ns.exists(root):
            raise FileNotFound(f"cluster: subtree {root!r} does not exist")

        def snapshot_tree() -> Tuple[List[str], List[str]]:
            dirs: List[str] = []
            files: List[str] = []
            if not src.mux.getattr(root).is_dir:
                files.append(root)
                return dirs, files
            dirs.append(root)
            stack = [root]
            while stack:
                path = stack.pop()
                for name in src.mux.readdir(path):
                    child = path + "/" + name
                    if src.mux.getattr(child).is_dir:
                        dirs.append(child)
                        stack.append(child)
                    else:
                        files.append(child)
            dirs.sort()
            files.sort()
            return dirs, files

        def ensure_dirs(dirs: List[str]) -> None:
            for d in dirs:
                for ancestor in vpath.ancestors(d)[1:] + [d]:
                    if not dst.mux.ns.exists(ancestor):
                        dst.mux.mkdir(ancestor)

        def wseq_of(path: str) -> int:
            ino = src.mux.ns.resolve(path).ino
            return self._write_seq.get((src.shard_id, ino), 0)

        def copy_steps(path: str) -> Generator[None, None, int]:
            """Chunked copy of one file to its dst temp name; yields between
            chunks so foreground writes can interleave (and be caught by
            the sequence-number validation)."""
            st = src.mux.getattr(path)
            rh = src.mux.open(path, OpenFlags.RDONLY)
            wh = dst.wire.open(
                path + MIGRATE_TMP,
                OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC,
            )
            copied = 0
            try:
                while copied < st.size:
                    chunk = min(COPY_CHUNK, st.size - copied)
                    data = src.mux.read(rh, copied, chunk)
                    if not data:
                        break
                    dst.wire.write(wh, copied, data)
                    copied += len(data)
                    yield
                dst.wire.fsync(wh)
            finally:
                dst.wire.close(wh)
                src.mux.close(rh)
            return copied

        dirs, files = snapshot_tree()
        ensure_dirs(dirs)
        ns_snapshot = self._ns_seq.get(key, 0)
        pending = list(files)
        copied_bytes: Dict[str, int] = {}
        snapshots: Dict[str, int] = {}
        for _ in range(OCC_MAX_RETRIES):
            if not pending:
                break
            summary["attempts"] += 1
            for path in pending:
                snapshots[path] = wseq_of(path)
                copied_bytes[path] = yield from copy_steps(path)
            if self._ns_seq.get(key, 0) != ns_snapshot:
                # files appeared/vanished during the copy: re-plan the tree
                ns_snapshot = self._ns_seq.get(key, 0)
                dirs, files = snapshot_tree()
                ensure_dirs(dirs)
                pending = [p for p in files if p not in copied_bytes]
                summary["conflicts"] += 1
                self.stats.add("occ_conflicts")
                continue
            conflicted = [
                p for p in pending if wseq_of(p) != snapshots[p]
            ]
            summary["conflicts"] += len(conflicted)
            if conflicted:
                self.stats.add("occ_conflicts", len(conflicted))
            pending = conflicted
        if pending:
            # pessimistic fallback: suspend overlap frames and quiesce the
            # source shard's in-flight ring ops, then copy atomically
            summary["lock_fallbacks"] += len(pending)
            self.stats.add("occ_lock_fallbacks", len(pending))
            token = self.clock.suspend_frames()
            try:
                for path in pending:
                    src.mux.quiesce_inflight(src.mux.ns.resolve(path).ino)
                    for _ in copy_steps(path):
                        pass
            finally:
                self.clock.resume_frames(token)
        # -- commit: no yields below this line ----------------------------
        dirs, files = snapshot_tree()
        for path in files:
            dst.mux.rename(path + MIGRATE_TMP, path)
        dst.mux.sync()
        if self.ring.node_for(key) == dst_id:
            self.overrides.pop(key, None)
        else:
            self.overrides[key] = dst_id
        self._persist_overrides()
        for path in files:
            src.mux.unlink(path)
        for d in sorted(dirs, reverse=True):
            src.mux.rmdir(d)
        src.mux.sync()
        summary["files_moved"] = len(files)
        summary["bytes_moved"] = sum(copied_bytes.get(p, 0) for p in files)
        self.stats.add("subtrees_moved")
        self.stats.add("files_rebalanced", summary["files_moved"])
        self.stats.add("bytes_rebalanced", summary["bytes_moved"])
        return summary

    # -- telemetry ---------------------------------------------------------

    def shard_report(self) -> List[Dict[str, object]]:
        """Per-shard queue/backlog/ops gauges for ``bench trace --cluster``."""
        report: List[Dict[str, object]] = []
        for shard in self.shards:
            monitor = shard.mux.pressure
            gauges = monitor.snapshot()
            report.append(
                {
                    "shard": shard.shard_id,
                    "ops": self._shard_ops[shard.shard_id],
                    "queued": round(
                        max((g["queued"] for g in gauges.values()), default=0.0), 4
                    ),
                    "backlog": round(
                        max((g["backlog"] for g in gauges.values()), default=0.0), 4
                    ),
                    "load": round(
                        max(
                            (monitor.load_of(t) for t in shard.mux.tier_ids()),
                            default=0.0,
                        ),
                        4,
                    ),
                    "wire_rpcs": shard.wire.stats.get("rpcs"),
                    "wire_bytes": shard.wire.stats.get("bytes_on_wire"),
                }
            )
        return report

    def rebalance_counters(self) -> Dict[str, int]:
        """Lifetime rebalance/rename counters (deterministic)."""
        return {
            key: self.stats.get(key)
            for key in (
                "rebalances",
                "subtrees_moved",
                "files_rebalanced",
                "bytes_rebalanced",
                "occ_conflicts",
                "occ_lock_fallbacks",
                "cross_shard_renames",
                "dir_renames_redirected",
            )
        }


class ClusterRing:
    """Cluster-wide async submit/complete ring.

    One inner :class:`~repro.core.ring.IoRing` per shard, opened lazily;
    each submission routes to its shard's ring (and therefore to a clock
    frame at the submission instant on that shard's device timelines), so
    ops on different shards overlap in simulated time.  Completions are
    renumbered into one cluster sequence and reaped in
    ``(completed_ns, cluster_seq)`` order — the same determinism contract
    as a single Mux ring.
    """

    def __init__(self, cluster: ClusterMux, depth: int = 8) -> None:
        if depth < 1:
            raise InvalidArgument(f"ring depth must be >= 1, got {depth}")
        self.cluster = cluster
        self.depth = depth
        self.clock = cluster.clock
        self._inner: Dict[int, object] = {}
        #: (shard_id, inner_seq) -> (cluster_seq, cluster_ino)
        self._seq_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._next_seq = 0
        self.closed = False

    def _ring_for(self, shard_id: int):
        ring = self._inner.get(shard_id)
        if ring is None:
            ring = self.cluster.shards[shard_id].mux.open_ring(depth=self.depth)
            self._inner[shard_id] = ring
        return ring

    def _route(self, handle: FileHandle) -> Tuple[int, FileHandle]:
        shard, inner = self.cluster._unwrap(handle)
        self.cluster._note_op(shard, handle.private.get("key"))
        return shard.shard_id, inner

    def _register(self, shard_id: int, sub: Submission, cluster_ino: int) -> Submission:
        seq = self._next_seq
        self._next_seq += 1
        self._seq_map[(shard_id, sub.seq)] = (seq, cluster_ino)
        return Submission(
            seq=seq, op=sub.op, ino=cluster_ino, submitted_ns=sub.submitted_ns
        )

    def submit_read(self, handle: FileHandle, offset: int, length: int) -> Submission:
        if self.closed:
            raise InvalidArgument("submit on a closed ring")
        shard_id, inner = self._route(handle)
        sub = self._ring_for(shard_id).submit_read(inner, offset, length)
        return self._register(shard_id, sub, handle.ino)

    def submit_write(self, handle: FileHandle, offset: int, data: bytes) -> Submission:
        if self.closed:
            raise InvalidArgument("submit on a closed ring")
        shard_id, inner = self._route(handle)
        self.cluster.note_write(shard_id, inner.ino)
        sub = self._ring_for(shard_id).submit_write(inner, offset, data)
        return self._register(shard_id, sub, handle.ino)

    def submit_fsync(self, handle: FileHandle) -> Submission:
        if self.closed:
            raise InvalidArgument("submit on a closed ring")
        shard_id, inner = self._route(handle)
        sub = self._ring_for(shard_id).submit_fsync(inner)
        return self._register(shard_id, sub, handle.ino)

    def _remap(self, shard_id: int, completions: List[Completion]) -> List[Completion]:
        out = []
        for c in completions:
            seq, ino = self._seq_map.pop((shard_id, c.seq))
            out.append(
                Completion(
                    seq=seq, op=c.op, ino=ino,
                    submitted_ns=c.submitted_ns, completed_ns=c.completed_ns,
                    result=c.result, error=c.error,
                )
            )
        return out

    @property
    def pending(self) -> int:
        return sum(r.pending for r in self._inner.values())

    def poll(self) -> List[Completion]:
        """Reap every due completion across all shards, merged in
        ``(completed_ns, cluster_seq)`` order."""
        out: List[Completion] = []
        for shard_id in sorted(self._inner):
            out.extend(self._remap(shard_id, self._inner[shard_id].poll()))
        out.sort(key=lambda c: (c.completed_ns, c.seq))
        return out

    def drain(self) -> List[Completion]:
        """Reap everything, advancing the clock to the last completion."""
        out: List[Completion] = []
        for shard_id in sorted(self._inner):
            out.extend(self._remap(shard_id, self._inner[shard_id].drain()))
        out.sort(key=lambda c: (c.completed_ns, c.seq))
        return out

    def close(self) -> List[Completion]:
        out = self.drain()
        for ring in self._inner.values():
            ring.close()
        self._inner.clear()
        self.closed = True
        return out

    def snapshot(self) -> Dict[str, object]:
        """Aggregated lifetime counters across the per-shard rings."""
        snaps = {sid: r.snapshot() for sid, r in sorted(self._inner.items())}
        return {
            "depth": self.depth,
            "submitted": sum(s["submitted"] for s in snaps.values()),
            "reaped": sum(s["reaped"] for s in snaps.values()),
            "backpressure_waits": sum(
                s["backpressure_waits"] for s in snaps.values()
            ),
            "max_inflight": max(
                (s["max_inflight"] for s in snaps.values()), default=0
            ),
            "shards": snaps,
        }

    def __enter__(self) -> "ClusterRing":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close()


@dataclass
class Cluster:
    """Everything :func:`build_cluster` assembled."""

    clock: SimClock
    mux: ClusterMux
    shards: List[object] = field(default_factory=list)


def build_cluster(
    shards: int = 2,
    clock: Optional[SimClock] = None,
    vnodes: int = 64,
    rtt_us: float = 100.0,
    bandwidth: float = 1.25e9,
    **stack_kwargs,
) -> Cluster:
    """Assemble ``shards`` full Mux stacks on one SimClock behind a ClusterMux.

    ``stack_kwargs`` pass through to each shard's
    :func:`repro.stack.build_stack` (tiers, capacities, policy, cache
    flags, profiles, ...), so a cluster of degraded or cache-less shards
    is one call away.
    """
    from repro.stack import build_stack

    if shards < 1:
        raise InvalidArgument("a cluster needs at least one shard")
    clock = clock if clock is not None else SimClock()
    stacks = [build_stack(clock=clock, **stack_kwargs) for _ in range(shards)]
    mux = ClusterMux(
        stacks, clock, vnodes=vnodes, rtt_us=rtt_us, bandwidth=bandwidth
    )
    return Cluster(clock=clock, mux=mux, shards=stacks)
