"""Sharded multi-Mux cluster (§4, "Distributed Mux").

One Mux instance is the ceiling on "millions of users"; this package
shards the Mux namespace across N independent Mux instances driven on a
single :class:`~repro.sim.clock.SimClock`, so per-shard device timelines
genuinely overlap in simulated time.  :class:`ClusterMux` presents the
same VFS + submit/complete-ring API as a single Mux; placement of
directory subtrees onto shards is consistent hashing
(:class:`HashRing`), rebalancing is run-level OCC migration between
shards over a simulated network wire.
"""

from repro.cluster.hashring import HashRing
from repro.cluster.cluster import Cluster, ClusterMux, ClusterRing, build_cluster

__all__ = ["Cluster", "ClusterMux", "ClusterRing", "HashRing", "build_cluster"]
