"""Open-loop load against a ClusterMux: the scale-out measurement rig.

Reuses the deterministic arrival machinery of
:mod:`repro.bench.multi_tenant` (pre-generated Poisson/zipf schedules,
per-tenant async rings, latency from *intended* arrival) but drives a
:class:`~repro.cluster.cluster.ClusterMux` instead of a single Mux, and
reports **makespan throughput**: the same offered schedule replayed
against 1/2/4 shards finishes in less simulated time exactly in
proportion to how well the shards' device timelines overlap.  Population
setup runs before the measured window so the scaling ratio measures the
data path, not mkdirs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.multi_tenant import (
    MultiTenantResult,
    TenantResult,
    TenantSpec,
    generate_schedule,
    _PAYLOAD_BYTE,
)
from repro.cluster.cluster import ClusterMux
from repro.cluster.hashring import HashRing


def colocated_tenant_names(
    ring: HashRing, root_key: str, count: int, prefix: str = "hot"
) -> Tuple[List[str], int]:
    """Deterministically pick ``count`` tenant names whose subtrees all
    hash to one shard — the recipe for a deliberate hotspot.

    Probes ``hot0, hot1, ...`` and keeps the ones landing on the shard
    the first probe chose.  Returns ``(names, shard_id)``.
    """
    target: Optional[int] = None
    names: List[str] = []
    probe = 0
    while len(names) < count:
        name = f"{prefix}{probe}"
        probe += 1
        shard = ring.node_for(f"{root_key}/{name}")
        if target is None:
            target = shard
        if shard == target:
            names.append(name)
    return names, target


def balanced_tenant_names(
    ring: HashRing, root_key: str, count: int, prefix: str = "t"
) -> List[str]:
    """Deterministically pick ``count`` tenant names spreading evenly
    across the ring's shards (round-robin over probe results).

    A handful of tenants over a consistent-hash ring is dominated by
    placement luck; a real deployment has enough subtrees that the law
    of large numbers evens the spread.  This helper recovers that regime
    with few tenants, so scaling benchmarks measure shard overlap rather
    than hash variance — using only the public ring mapping.
    """
    per_shard: Dict[int, List[str]] = {n: [] for n in ring.nodes()}
    quota = count // len(ring)
    extra = count % len(ring)
    probe = 0
    picked = 0
    while picked < count:
        name = f"{prefix}{probe}"
        probe += 1
        shard = ring.node_for(f"{root_key}/{name}")
        limit = quota + (1 if shard < extra else 0)
        if len(per_shard[shard]) < limit:
            per_shard[shard].append(name)
            picked += 1
    names = [n for bucket in per_shard.values() for n in bucket]
    names.sort(key=lambda n: int(n[len(prefix):]))
    return names


def run_cluster_load(
    cluster: ClusterMux,
    specs: List[TenantSpec],
    duration_ns: int,
    ring_depth: int = 8,
    seed: int = 2026,
    root: str = "/tenants",
    population_tier: Optional[int] = None,
    durable_population: bool = True,
) -> Tuple[MultiTenantResult, int]:
    """Replay the open-loop schedule against ``cluster``.

    Identical measurement discipline to
    :func:`repro.bench.multi_tenant.run_multi_tenant` — the clock
    advances to each op's intended arrival, submissions overlap through
    per-tenant cluster rings, latency is completion minus intended
    arrival — so single-Mux and cluster numbers are directly comparable.
    Returns the result plus the **makespan** (ns of simulated time from
    the first measured op to the last drained completion); aggregate
    throughput is ``completed_ops / makespan``, the number that must
    scale with shard count.
    """
    clock = cluster.clock
    events = generate_schedule(specs, duration_ns, seed)

    # -- population (unmeasured; idempotent so a hotspot run can be
    # replayed after a rebalance against the already-moved subtrees) -----
    if not cluster.exists(root):
        cluster.mkdir(root)
    handles: List[List] = []
    for spec in specs:
        if not cluster.exists(f"{root}/{spec.name}"):
            cluster.mkdir(f"{root}/{spec.name}")
        payload = bytes([_PAYLOAD_BYTE]) * spec.file_bytes
        tenant_handles = []
        for i in range(spec.files):
            path = f"{root}/{spec.name}/f{i}"
            if population_tier is not None:
                if not cluster.exists(path):
                    cluster.close(cluster.create(path))
                cluster.set_placement(path, population_tier)
                cluster.write_file(path, payload)
                cluster.set_placement(path, None)
            else:
                cluster.write_file(path, payload)
            handle = cluster.open(path)
            if durable_population:
                cluster.fsync(handle)
            tenant_handles.append(handle)
        handles.append(tenant_handles)
    cluster.sync()

    results = {spec.name: TenantResult(spec.name) for spec in specs}
    rings = [cluster.open_ring(depth=ring_depth) for _ in specs]
    outstanding: List[Dict[int, Tuple[int, str]]] = [{} for _ in specs]

    def harvest(idx: int, completions) -> None:
        tenant = results[specs[idx].name]
        book = outstanding[idx]
        for c in completions:
            arrival, op = book.pop(c.seq)
            if c.error is not None:
                tenant.errors += 1
                continue
            latency = c.completed_ns - arrival
            (tenant.reads if op == "read" else tenant.writes).record(latency)

    # -- measured open-loop schedule ------------------------------------
    start_ns = clock.now_ns
    for arrival, idx, _seq, op, file_idx, offset in events:
        clock.advance_to(start_ns + arrival)
        harvest(idx, rings[idx].poll())
        spec = specs[idx]
        handle = handles[idx][file_idx]
        if op == "read":
            sub = rings[idx].submit_read(handle, offset, spec.io_bytes)
        elif op == "write":
            payload = bytes([_PAYLOAD_BYTE]) * spec.io_bytes
            sub = rings[idx].submit_write(handle, offset, payload)
        else:
            sub = rings[idx].submit_fsync(handle)
        outstanding[idx][sub.seq] = (start_ns + arrival, op)
        results[spec.name].submitted += 1

    for idx, ring in enumerate(rings):
        harvest(idx, ring.drain())
        ring.close()
    makespan_ns = clock.now_ns - start_ns
    for tenant_handles in handles:
        for handle in tenant_handles:
            cluster.close(handle)

    result = MultiTenantResult(
        tenants=results,
        offered_ops=len(events),
        duration_ns=duration_ns,
        ring_depth=ring_depth,
    )
    return result, makespan_ns
