"""Trace-driven replay benchmark (the ``muxtrace v1`` format).

Synthetic arrival processes answer "does the policy react to pressure";
block traces answer "does it react to *this* workload".  This module
defines a small canonical trace format, deterministic generators for the
three interesting shapes (zipf steady-state, bursty writers over a read
floor, phase-change hot sets), and an open-loop replay engine that drives
a trace through the async ring API against any stack — so every
registered policy can be benchmarked head-to-head on identical offered
load.

Format — one record per line, integer fields, ``#`` comments::

    # muxtrace v1
    # files 16
    # file_bytes 1048576
    <arrival_ns> <R|W|F> <file_id> <offset> <length>

``files``/``file_bytes`` describe the pre-populated file set the trace
addresses (``file_id`` in ``[0, files)``, ``offset + length <=
file_bytes``).  ``F`` is an fsync of ``file_id`` (offset and length are
0) — bursty writers in the wild are databases and loggers, and what
makes their bursts hurt is that they demand durability: the fsync is
where buffered writes become device traffic.  Arrivals are offsets from
replay start and must be non-decreasing.  The replay is open-loop: the
clock is advanced to each op's intended arrival and latency is measured
from that instant, so backlog shows up as queueing delay rather than as
a slower trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.bench.multi_tenant import _exp_gap, _zipf_cdf, _zipf_pick
from repro.errors import InvalidArgument
from repro.sim.histogram import LatencyHistogram
from repro.sim.rng import DeterministicRng

KIB = 1024
MIB = 1024 * KIB

TRACE_MAGIC = "# muxtrace v1"

#: deterministic write payload byte (content never affects placement)
_PAYLOAD_BYTE = 0x6B


@dataclass(frozen=True)
class TraceOp:
    """One record: an I/O against the trace's file population."""

    arrival_ns: int
    op: str  # "read" | "write" | "fsync"
    file_id: int
    offset: int
    length: int


@dataclass
class BlockTrace:
    """A parsed (or generated) muxtrace."""

    ops: List[TraceOp]
    files: int
    file_bytes: int
    #: free-form provenance comments, one per line (no leading '#')
    comments: List[str] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return self.ops[-1].arrival_ns if self.ops else 0

    def op_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for op in self.ops:
            mix[op.op] = mix.get(op.op, 0) + 1
        return mix

    def truncated(self, fraction: float) -> "BlockTrace":
        """A prefix of the trace covering ``fraction`` of its duration."""
        if not 0.0 < fraction <= 1.0:
            raise InvalidArgument("fraction must be in (0, 1]")
        cutoff = int(self.duration_ns * fraction)
        ops = [op for op in self.ops if op.arrival_ns <= cutoff]
        return BlockTrace(ops, self.files, self.file_bytes, list(self.comments))

    def validate(self) -> None:
        last = 0
        for op in self.ops:
            if op.arrival_ns < last:
                raise InvalidArgument("trace arrivals must be non-decreasing")
            last = op.arrival_ns
            if op.op not in ("read", "write", "fsync"):
                raise InvalidArgument(f"bad op {op.op!r}")
            if not 0 <= op.file_id < self.files:
                raise InvalidArgument(f"file_id {op.file_id} out of range")
            if op.op == "fsync":
                if op.offset or op.length:
                    raise InvalidArgument("fsync records carry no offset/length")
                continue
            if op.offset < 0 or op.length < 1:
                raise InvalidArgument("bad offset/length")
            if op.offset + op.length > self.file_bytes:
                raise InvalidArgument("op extends past file_bytes")


# ---------------------------------------------------------------------------
# serialization
# ---------------------------------------------------------------------------


def dumps_trace(trace: BlockTrace) -> str:
    """Serialize to the canonical text form."""
    lines = [TRACE_MAGIC]
    lines.append(f"# files {trace.files}")
    lines.append(f"# file_bytes {trace.file_bytes}")
    for comment in trace.comments:
        lines.append(f"# {comment}")
    letters = {"read": "R", "write": "W", "fsync": "F"}
    for op in trace.ops:
        lines.append(
            f"{op.arrival_ns} {letters[op.op]} {op.file_id} {op.offset} {op.length}"
        )
    return "\n".join(lines) + "\n"


def dump_trace(trace: BlockTrace, path) -> None:
    Path(path).write_text(dumps_trace(trace))


def parse_trace(text: str) -> BlockTrace:
    """Parse the canonical text form; validates shape and ordering."""
    lines = text.splitlines()
    if not lines or lines[0].strip() != TRACE_MAGIC:
        raise InvalidArgument(f"not a muxtrace (missing {TRACE_MAGIC!r} header)")
    files = None
    file_bytes = None
    comments: List[str] = []
    ops: List[TraceOp] = []
    kinds = {"R": "read", "W": "write", "F": "fsync"}
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            parts = body.split()
            if len(parts) == 2 and parts[0] == "files":
                files = int(parts[1])
            elif len(parts) == 2 and parts[0] == "file_bytes":
                file_bytes = int(parts[1])
            elif body:
                comments.append(body)
            continue
        fields = line.split()
        if len(fields) != 5:
            raise InvalidArgument(f"line {lineno}: expected 5 fields")
        arrival, letter, file_id, offset, length = fields
        if letter not in kinds:
            raise InvalidArgument(f"line {lineno}: op must be R, W or F")
        ops.append(
            TraceOp(int(arrival), kinds[letter], int(file_id), int(offset), int(length))
        )
    if files is None or file_bytes is None:
        raise InvalidArgument("trace missing '# files N' / '# file_bytes N'")
    trace = BlockTrace(ops, files, file_bytes, comments)
    trace.validate()
    return trace


def load_trace(path) -> BlockTrace:
    return parse_trace(Path(path).read_text())


# ---------------------------------------------------------------------------
# generators — deterministic in the seed, like every arrival process here
# ---------------------------------------------------------------------------


def zipf_trace(
    duration_ns: int,
    files: int = 16,
    file_bytes: int = 1 * MIB,
    io_bytes: int = 16 * KIB,
    mean_gap_ns: int = 6_000,
    alpha: float = 1.1,
    read_fraction: float = 0.8,
    seed: int = 7,
) -> BlockTrace:
    """Steady-state zipf traffic: Poisson arrivals, skewed file/block picks."""
    rng = DeterministicRng(seed).fork("zipf-trace")
    file_cdf = _zipf_cdf(files, alpha)
    block_cdf = _zipf_cdf(file_bytes // io_bytes, alpha)
    ops: List[TraceOp] = []
    t = 0
    while True:
        t += _exp_gap(rng, mean_gap_ns)
        if t >= duration_ns:
            break
        op = "read" if rng.random() < read_fraction else "write"
        file_id = _zipf_pick(rng, file_cdf)
        offset = _zipf_pick(rng, block_cdf) * io_bytes
        ops.append(TraceOp(t, op, file_id, offset, io_bytes))
    trace = BlockTrace(
        ops,
        files,
        file_bytes,
        [
            f"generator zipf seed={seed} alpha={alpha} io={io_bytes} "
            f"gap={mean_gap_ns} rf={read_fraction}"
        ],
    )
    trace.validate()
    return trace


def bursty_trace(
    duration_ns: int,
    files: int = 16,
    file_bytes: int = 1 * MIB,
    read_bytes: int = 16 * KIB,
    read_gap_ns: int = 6_000,
    write_bytes: int = 128 * KIB,
    burst_gap_ns: int = 120_000,
    burst_size: int = 8,
    alpha: float = 1.1,
    fsync_bursts: bool = True,
    seed: int = 7,
) -> BlockTrace:
    """A zipf read floor with write bursts landing at Poisson instants.

    Every op in a burst shares one arrival — the worst case for a queue:
    the backlog jumps by ``burst_size`` writes instantly, and any read
    arriving behind it eats the whole queue.  With ``fsync_bursts`` each
    file the burst touched is fsynced right after it (arrival + 1 ns),
    the database/logger pattern: the burst demands durability, so its
    cost cannot hide in volatile write buffers.  This is the shape where
    pressure-blind placement loses its read tail.
    """
    rng = DeterministicRng(seed).fork("bursty-trace")
    file_cdf = _zipf_cdf(files, alpha)
    read_cdf = _zipf_cdf(file_bytes // read_bytes, alpha)
    write_slots = file_bytes // write_bytes
    write_cdf = _zipf_cdf(write_slots, alpha)
    ops: List[TraceOp] = []
    t = 0
    while True:  # read floor
        t += _exp_gap(rng, read_gap_ns)
        if t >= duration_ns:
            break
        file_id = _zipf_pick(rng, file_cdf)
        offset = _zipf_pick(rng, read_cdf) * read_bytes
        ops.append(TraceOp(t, "read", file_id, offset, read_bytes))
    t = 0
    while True:  # write bursts
        t += _exp_gap(rng, burst_gap_ns)
        if t >= duration_ns:
            break
        touched: List[int] = []
        for _ in range(burst_size):
            file_id = _zipf_pick(rng, file_cdf)
            offset = _zipf_pick(rng, write_cdf) * write_bytes
            ops.append(TraceOp(t, "write", file_id, offset, write_bytes))
            if file_id not in touched:
                touched.append(file_id)
        if fsync_bursts:
            for file_id in touched:
                ops.append(TraceOp(t + 1, "fsync", file_id, 0, 0))
    ops.sort(key=lambda op: (op.arrival_ns, op.op, op.file_id, op.offset))
    trace = BlockTrace(
        ops,
        files,
        file_bytes,
        [
            f"generator bursty seed={seed} alpha={alpha} read={read_bytes}@"
            f"{read_gap_ns} write={write_bytes}x{burst_size}@{burst_gap_ns}"
        ],
    )
    trace.validate()
    return trace


def phase_trace(
    duration_ns: int,
    files: int = 16,
    file_bytes: int = 1 * MIB,
    io_bytes: int = 16 * KIB,
    mean_gap_ns: int = 6_000,
    alpha: float = 1.2,
    read_fraction: float = 0.8,
    phases: int = 2,
    seed: int = 7,
) -> BlockTrace:
    """Zipf traffic whose hot set rotates every ``duration/phases`` ns.

    Each phase shifts the file popularity ranking by a fixed stride, so
    yesterday's cold tail becomes today's hot head — the workload that
    punishes stale placement and rewards policies that keep migrating.
    """
    if phases < 1:
        raise InvalidArgument("phases must be >= 1")
    rng = DeterministicRng(seed).fork("phase-trace")
    file_cdf = _zipf_cdf(files, alpha)
    block_cdf = _zipf_cdf(file_bytes // io_bytes, alpha)
    phase_ns = duration_ns // phases
    stride = max(1, files // phases)
    ops: List[TraceOp] = []
    t = 0
    while True:
        t += _exp_gap(rng, mean_gap_ns)
        if t >= duration_ns:
            break
        phase = min(t // phase_ns, phases - 1)
        rank = _zipf_pick(rng, file_cdf)
        file_id = (rank + phase * stride) % files
        op = "read" if rng.random() < read_fraction else "write"
        offset = _zipf_pick(rng, block_cdf) * io_bytes
        ops.append(TraceOp(t, op, file_id, offset, io_bytes))
    trace = BlockTrace(
        ops,
        files,
        file_bytes,
        [
            f"generator phase seed={seed} alpha={alpha} phases={phases} "
            f"io={io_bytes} gap={mean_gap_ns} rf={read_fraction}"
        ],
    )
    trace.validate()
    return trace


GENERATORS: Dict[str, Callable[..., BlockTrace]] = {
    "zipf": zipf_trace,
    "bursty": bursty_trace,
    "phase": phase_trace,
}


# ---------------------------------------------------------------------------
# canonical traces — checked into benchmarks/traces/, regenerable from here
# ---------------------------------------------------------------------------

#: the three canonical shapes the policy duels run on.  ``bursty`` is the
#: headline scenario: a 16 KiB zipf read floor with 4 MiB fsynced write
#: bursts every ~4 ms — long enough (60 ms) that placement decisions,
#: not population luck, decide the read tail.  Parameters are part of the
#: benchmark contract: the files in ``benchmarks/traces/`` are generated
#: from exactly these (test_tracereplay pins file == generator).
CANONICAL_TRACE_PARAMS: Dict[str, Dict[str, object]] = {
    "bursty": dict(
        generator="bursty",
        duration_ns=60_000_000,
        files=48,
        file_bytes=2 * MIB,
        read_bytes=16 * KIB,
        read_gap_ns=15_000,
        write_bytes=128 * KIB,
        burst_gap_ns=4_000_000,
        burst_size=32,
        alpha=1.0,
        seed=7,
    ),
    "zipf": dict(
        generator="zipf",
        duration_ns=30_000_000,
        files=48,
        file_bytes=2 * MIB,
        io_bytes=16 * KIB,
        mean_gap_ns=12_000,
        alpha=1.1,
        read_fraction=0.8,
        seed=7,
    ),
    "phase": dict(
        generator="phase",
        duration_ns=30_000_000,
        files=48,
        file_bytes=2 * MIB,
        io_bytes=16 * KIB,
        mean_gap_ns=12_000,
        alpha=1.2,
        read_fraction=0.8,
        phases=3,
        seed=7,
    ),
}


def canonical_trace(name: str) -> BlockTrace:
    """Generate one canonical trace from its pinned parameters."""
    if name not in CANONICAL_TRACE_PARAMS:
        raise InvalidArgument(f"unknown canonical trace {name!r}")
    params = dict(CANONICAL_TRACE_PARAMS[name])
    generator = GENERATORS[params.pop("generator")]
    return generator(**params)


def traces_dir() -> Path:
    """The checked-in trace directory (``benchmarks/traces/``)."""
    return Path(__file__).resolve().parents[3] / "benchmarks" / "traces"


def load_canonical(name: str) -> BlockTrace:
    """Load a canonical trace from ``benchmarks/traces/``.

    Falls back to regenerating from :data:`CANONICAL_TRACE_PARAMS` when
    the checked-in file is absent (e.g. an installed package without the
    repo tree) — both paths yield bit-identical traces.
    """
    path = traces_dir() / f"{name}.muxtrace"
    if path.is_file():
        return load_trace(path)
    return canonical_trace(name)


def write_canonical_traces(directory=None) -> List[Path]:
    """(Re)write every canonical trace file; returns the paths written."""
    directory = Path(directory) if directory is not None else traces_dir()
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name in sorted(CANONICAL_TRACE_PARAMS):
        path = directory / f"{name}.muxtrace"
        dump_trace(canonical_trace(name), path)
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------


@dataclass
class TraceReplayResult:
    """Latency outcome of one trace replay against one stack."""

    reads: LatencyHistogram = field(default_factory=LatencyHistogram)
    writes: LatencyHistogram = field(default_factory=LatencyHistogram)
    submitted: int = 0
    errors: int = 0
    #: failed completions by exception class name (NoSpace, TierOffline…)
    error_kinds: Dict[str, int] = field(default_factory=dict)
    #: migration orders the policy submitted during maintenance
    migrations_submitted: int = 0
    final_now_ns: int = 0

    def percentiles_ns(self, op: str = "read") -> Dict[str, int]:
        hist = self.reads if op == "read" else self.writes
        return hist.percentiles_ns(0.5, 0.99, 0.999)


def replay_trace(
    stack,
    trace: BlockTrace,
    ring_depth: int = 8,
    maintain_every: int = 64,
    population_tier: Optional[str] = "ssd",
    root: str = "/trace",
    warm_passes: int = 0,
    drop_page_caches: bool = False,
) -> TraceReplayResult:
    """Open-loop replay of ``trace`` against ``stack``.

    The file population (``trace.files`` files of ``trace.file_bytes``)
    is written before the measured window — pinned to ``population_tier``
    (a tier *name*) when given, so head-to-head policy comparisons start
    from identical block placement and measure steady-state behaviour,
    not population luck.  The pin is cleared before replay.

    Every ``maintain_every`` events the mux plans migrations
    (``maintain_async``) and the engine advances in-flight ones one
    cooperative step, so policies that migrate get to — on background
    channels, contending only when the device is genuinely busy.

    ``warm_passes`` replays the trace that many times closed-loop and
    *untimed* first — the epochs that preceded the measured window.
    Heat builds, the policy converges on its steady-state placement and
    every background copy drains, so the timed replay compares how each
    policy *serves* the workload rather than how fast it reacts to a
    population it has never seen.

    ``drop_page_caches`` empties every native file system's clean DRAM
    page cache right before the measured window (the simulated analog of
    ``drop_caches`` between warm-up and measurement) — otherwise a warm
    pass leaves the working set in DRAM and every policy measures the
    same cache, hiding what *placement* bought.
    """
    mux = stack.mux
    clock = stack.clock
    trace.validate()

    mux.mkdir(root)
    pin = (
        stack.tier_ids[population_tier] if population_tier is not None else None
    )
    payload = bytes([_PAYLOAD_BYTE]) * trace.file_bytes
    handles = []
    for i in range(trace.files):
        path = f"{root}/f{i}"
        if pin is not None:
            mux.close(mux.create(path))
            mux.set_placement(path, pin)
            mux.write_file(path, payload)
            mux.set_placement(path, None)
        else:
            mux.write_file(path, payload)
        handle = mux.open(path)
        # make the population durable before the measured window: dirty
        # page-cache debt and a full device write buffer would otherwise
        # bill population cleanup to the first measured reads
        mux.fsync(handle)
        handles.append(handle)

    for _ in range(warm_passes):
        for index, op in enumerate(trace.ops):
            if maintain_every:
                if index and index % maintain_every == 0:
                    mux.maintain_async()
                mux.engine.tick()
                mux.mirrors.tick()
            handle = handles[op.file_id]
            if op.op == "read":
                mux.read(handle, op.offset, op.length)
            elif op.op == "write":
                mux.write(handle, op.offset, bytes([_PAYLOAD_BYTE]) * op.length)
            else:
                mux.fsync(handle)
    if warm_passes:
        # settle before the measured window opens
        mux.maintain_async()
        mux.engine.drain()
        mux.mirrors.drain()
    if drop_page_caches:
        # make every page clean first — drop_clean() models a crash and
        # discards dirty pages too, which would lose warm-pass writes
        for handle in handles:
            mux.fsync(handle)
        for fs in stack.filesystems.values():
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                cache.drop_clean()

    result = TraceReplayResult()
    ring = mux.open_ring(depth=ring_depth)
    outstanding: Dict[int, Tuple[int, str]] = {}

    def harvest(completions) -> None:
        for c in completions:
            arrival, op = outstanding.pop(c.seq)
            if c.error is not None:
                result.errors += 1
                kind = type(c.error).__name__
                result.error_kinds[kind] = result.error_kinds.get(kind, 0) + 1
                continue
            latency = c.completed_ns - arrival
            (result.reads if op == "read" else result.writes).record(latency)

    start_ns = clock.now_ns
    for index, op in enumerate(trace.ops):
        clock.advance_to(start_ns + op.arrival_ns)
        harvest(ring.poll())
        if maintain_every:
            if index and index % maintain_every == 0:
                result.migrations_submitted += mux.maintain_async()
            # the background copier runs continuously: advance in-flight
            # migrations every event, otherwise a multi-chunk copy spans
            # many bursts of foreground writes and OCC-aborts on each
            mux.engine.tick()
            # mirror convergence rides the same cadence (instant no-op
            # for policies that never grant mirrors)
            mux.mirrors.tick()
        handle = handles[op.file_id]
        if op.op == "read":
            sub = ring.submit_read(handle, op.offset, op.length)
        elif op.op == "write":
            sub = ring.submit_write(
                handle, op.offset, bytes([_PAYLOAD_BYTE]) * op.length
            )
        else:
            sub = ring.submit_fsync(handle)
        outstanding[sub.seq] = (start_ns + op.arrival_ns, op.op)
        result.submitted += 1

    harvest(ring.drain())
    ring.close()
    mux.engine.drain()
    for handle in handles:
        mux.close(handle)
    result.final_now_ns = clock.now_ns
    return result


def compare_policies(
    trace: BlockTrace,
    policies: Iterable[str],
    stack_factory: Callable[[str], object],
    ring_depth: int = 8,
    maintain_every: int = 64,
    population_tier: Optional[str] = "ssd",
) -> Dict[str, TraceReplayResult]:
    """Replay one trace against a fresh stack per registered policy name.

    ``stack_factory(policy_name)`` must return identically-configured
    stacks differing only in policy, so the trace is the controlled
    variable and the policy is the treatment.
    """
    results: Dict[str, TraceReplayResult] = {}
    for name in policies:
        stack = stack_factory(name)
        results[name] = replay_trace(
            stack,
            trace,
            ring_depth=ring_depth,
            maintain_every=maintain_every,
            population_tier=population_tier,
        )
    return results
