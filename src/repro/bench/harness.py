"""Shared system builders + result reporting for the benchmark suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.policies import PinnedPolicy
from repro.core.scheduler import IoScheduler
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.ssd import SolidStateDrive
from repro.sim.clock import SimClock
from repro.stack import DEFAULT_CAPACITIES, Stack, build_stack
from repro.strata.fs import StrataFileSystem

MIB = 1024 * 1024


@dataclass
class StrataStack:
    """A Strata instance plus its devices and clock."""

    clock: SimClock
    fs: StrataFileSystem
    devices: Dict[str, object]


def build_strata(
    capacities: Optional[Dict[str, int]] = None,
    pin_target: Optional[str] = None,
) -> StrataStack:
    """Assemble Strata over the paper's three devices."""
    caps = dict(DEFAULT_CAPACITIES)
    if capacities:
        caps.update(capacities)
    clock = SimClock()
    pm = PersistentMemoryDevice("pm0", caps["pm"], clock)
    ssd = SolidStateDrive("ssd0", caps["ssd"], clock)
    hdd = HardDiskDrive("hdd0", caps["hdd"], clock)
    fs = StrataFileSystem("strata", pm, ssd, hdd, clock, pin_target=pin_target)
    return StrataStack(clock, fs, {"pm": pm, "ssd": ssd, "hdd": hdd})


def build_pinned_mux(
    target: str,
    tiers: Optional[List[str]] = None,
    capacities: Optional[Dict[str, int]] = None,
    enable_cache: bool = True,
    scheduler: Optional[IoScheduler] = None,
) -> Stack:
    """A Mux stack whose policy pins every write to ``target``."""
    tiers = tiers if tiers is not None else ["pm", "ssd", "hdd"]
    stack = build_stack(
        tiers=tiers,
        capacities=capacities,
        policy=PinnedPolicy(0),  # placeholder; fixed below once ids exist
        enable_cache=enable_cache,
        scheduler=scheduler,
    )
    stack.mux.policy = PinnedPolicy(stack.tier_id(target))
    return stack


class VfsView:
    """Adapter: run a workload against one FS *through* the shared VFS.

    The paper's baselines are native file systems reached via the kernel
    VFS; charging the same VFS dispatch cost to both the native and the
    Mux configurations keeps the overhead comparison fair.  The adapter
    rewrites workload paths under the file system's mount point and
    forwards handle-based calls through the VFS.
    """

    def __init__(self, vfs, mount: str) -> None:
        self.vfs = vfs
        self.mount = mount.rstrip("/")

    def _full(self, path: str) -> str:
        return self.mount + path

    def open(self, path: str, flags):
        return self.vfs.open(self._full(path), flags)

    def create(self, path: str, mode: int = 0o644):
        return self.vfs.create(self._full(path), mode)

    def close(self, handle) -> None:
        self.vfs.close(handle)

    def read(self, handle, offset: int, length: int) -> bytes:
        return self.vfs.read(handle, offset, length)

    def write(self, handle, offset: int, data: bytes) -> int:
        return self.vfs.write(handle, offset, data)

    def truncate(self, handle, size: int) -> None:
        self.vfs.truncate(handle, size)

    def fsync(self, handle) -> None:
        self.vfs.fsync(handle)

    def getattr(self, path: str):
        return self.vfs.getattr(self._full(path))

    def unlink(self, path: str) -> None:
        self.vfs.unlink(self._full(path))


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------


@dataclass
class ResultRow:
    """One paper-vs-measured comparison line."""

    experiment: str
    config: str
    metric: str
    paper: str
    measured: str

    def formatted(self, widths: List[int]) -> str:
        cells = [self.experiment, self.config, self.metric, self.paper, self.measured]
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))


def format_rows(rows: List[ResultRow], title: str = "") -> str:
    header = ResultRow("experiment", "config", "metric", "paper", "measured")
    all_rows = [header] + rows
    widths = [
        max(len(getattr(r, f)) for r in all_rows)
        for f in ("experiment", "config", "metric", "paper", "measured")
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(header.formatted(widths))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(row.formatted(widths) for row in rows)
    return "\n".join(lines)
