"""Wall-clock benchmark harness: host-CPU cost of the simulated data path.

Every other benchmark in this repo reports **simulated** time — numbers
produced by the timing model, identical on any machine.  This harness
additionally measures how long the *host* takes to push the bytes through
the stack (``time.perf_counter`` seconds and ops/sec), so data-path
optimisations show up as a perf trajectory across PRs even though the
simulated results are bit-identical by design.

Two guarantees this module enforces:

* **Determinism** — each workload builds a fresh stack and records a
  *simulated fingerprint* (``clock.now_ns``, per-device ``DeviceStats``,
  SCM-cache hit/miss counters).  Repetitions must produce identical
  fingerprints or the run aborts.
* **Drift detection** — ``--smoke`` reruns a reduced version of every
  workload and compares fingerprints against the golden values recorded
  in ``BENCH_wallclock.json``, exiting nonzero on any mismatch.  This is
  the CI guard that data-path changes did not alter the timing model.

Usage::

    PYTHONPATH=src python -m repro.bench wallclock            # full run
    PYTHONPATH=src python -m repro.bench wallclock --smoke    # CI guard
    PYTHONPATH=src python -m repro.bench wallclock --out F --before G
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.harness import build_strata
from repro.bench.macro import fileserver, varmail, webserver
from repro.bench.multi_tenant import (
    TenantSpec,
    fairness_slowdowns,
    run_multi_tenant,
    slowdown_x,
)
from repro.bench.tracereplay import load_canonical, replay_trace
from repro.bench.workloads import (
    cache_writeback,
    fault_storm,
    hot_set_reads,
    make_file,
    metadata_churn,
    metadata_tree,
    migration_churn,
    sequential_read,
    sequential_write,
    striped_reads,
)
from repro.bench.multi_tenant import _zipf_cdf, _zipf_pick
from repro.core.qos import IoClass
from repro.core.scheduler import IoScheduler
from repro.devices.faults import FaultConfig
from repro.devices.profile import OPTANE_PMEM_200, OPTANE_SSD_P4800X
from repro.sim.histogram import LatencyHistogram
from repro.sim.rng import DeterministicRng
from repro.stack import Stack, build_stack

KIB = 1024
MIB = 1024 * KIB

#: output file written at the repo root (cwd of the bench invocation)
DEFAULT_OUT = "BENCH_wallclock.json"

#: repetitions per workload; wall_s is the minimum (least-noise) rep
FULL_REPS = 3
SMOKE_REPS = 1


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def _mux_fingerprint(stack: Stack, extended: bool = False) -> Dict[str, object]:
    """Simulated fingerprint of a stack run.

    ``extended`` additionally pins the write-back counters; only the
    ``cache_writeback`` workload uses it, so the fingerprints (and hence
    the goldens) of every pre-existing workload are unchanged.
    """
    fp: Dict[str, object] = {
        "now_ns": stack.clock.now_ns,
        "devices": {
            name: dev.stats.snapshot() for name, dev in sorted(stack.devices.items())
        },
    }
    if stack.mux.cache is not None:
        fp["cache"] = {
            "hit": stack.mux.cache.stats.get("hit"),
            "miss": stack.mux.cache.stats.get("miss"),
        }
        if extended:
            counters = stack.mux.cache.cache_counters()
            for key in ("write_hit", "destage_runs", "destaged_blocks", "dirty_blocks"):
                fp["cache"][key] = counters.get(key, 0)
    else:
        fp["cache"] = {"hit": 0, "miss": 0}
    return fp


def _strata_fingerprint(clock, devices) -> Dict[str, object]:
    return {
        "now_ns": clock.now_ns,
        "devices": {
            name: dev.stats.snapshot() for name, dev in sorted(devices.items())
        },
        "cache": {"hit": 0, "miss": 0},
    }


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
#
# Each workload is a callable (smoke: bool) -> result dict.  It builds a
# fresh stack (so reps are independent and deterministic), times only the
# measured section with perf_counter, and reports the simulated
# fingerprint of the *whole* run including setup.


def _wl_seq_write(smoke: bool) -> Dict[str, object]:
    total = 8 * MIB if smoke else 48 * MIB
    stack = build_stack()
    stack.mux.mkdir("/bench")
    t0 = time.perf_counter()
    res = sequential_write(stack.mux, stack.clock, "/bench/seq", total)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": total // (4 * MIB),
        "bytes": res.bytes_moved,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_seq_read(smoke: bool) -> Dict[str, object]:
    size = 8 * MIB if smoke else 64 * MIB
    passes = 1 if smoke else 6
    stack = build_stack()
    stack.mux.mkdir("/bench")
    handle = make_file(stack.mux, stack.clock, "/bench/rdfile", size)
    stack.mux.close(handle)
    t0 = time.perf_counter()
    moved = 0
    sim0 = stack.clock.now_ns
    for _ in range(passes):
        res = sequential_read(stack.mux, stack.clock, "/bench/rdfile", size)
        moved += res.bytes_moved
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": passes * (size // (4 * MIB)),
        "bytes": moved,
        "sim_elapsed_s": (stack.clock.now_ns - sim0) / 1e9,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_hot_set(smoke: bool) -> Dict[str, object]:
    size = 8 * MIB if smoke else 16 * MIB
    iters = 800 if smoke else 4000
    stack = build_stack()
    stack.mux.mkdir("/bench")
    handle = make_file(stack.mux, stack.clock, "/bench/hot", size)
    stack.mux.close(handle)
    t0 = time.perf_counter()
    sim0 = stack.clock.now_ns
    res = hot_set_reads(stack.mux, stack.clock, "/bench/hot", size, 2 * MIB, iters)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": res.operations * 4096,
        "sim_elapsed_s": (stack.clock.now_ns - sim0) / 1e9,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_fileserver(smoke: bool) -> Dict[str, object]:
    files, ops = (10, 150) if smoke else (40, 600)
    stack = build_stack()
    t0 = time.perf_counter()
    res = fileserver(stack.mux, stack.clock, files=files, operations=ops)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": 0,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_webserver(smoke: bool) -> Dict[str, object]:
    files, ops = (30, 250) if smoke else (100, 1000)
    stack = build_stack()
    t0 = time.perf_counter()
    res = webserver(stack.mux, stack.clock, files=files, operations=ops)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": 0,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_varmail(smoke: bool) -> Dict[str, object]:
    ops = 80 if smoke else 300
    stack = build_stack()
    t0 = time.perf_counter()
    res = varmail(stack.mux, stack.clock, operations=ops)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": 0,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_metadata_churn(smoke: bool) -> Dict[str, object]:
    files, ops = (60, 400) if smoke else (200, 12000)
    stack = build_stack()
    # tree construction is setup; the timed section is the steady-state
    # metadata traffic, routed through the VFS like a real application
    live = metadata_tree(stack.vfs, files=files, root="/mux")
    t0 = time.perf_counter()
    res = metadata_churn(
        stack.vfs,
        stack.clock,
        files=files,
        operations=ops,
        root="/mux",
        live=live,
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": 0,
        "sim_elapsed_s": res.total_ns / 1e9,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_migration_churn(smoke: bool) -> Dict[str, object]:
    files, size, rounds = (2, 1 * MIB, 2) if smoke else (2, 16 * MIB, 6)
    stack = build_stack()
    tier_ids = [stack.tier_id(n) for n in ("pm", "ssd", "hdd") if n in stack.tier_ids]
    t0 = time.perf_counter()
    res = migration_churn(
        stack.mux,
        stack.clock,
        tier_ids,
        files=files,
        file_bytes=size,
        rounds=rounds,
    )
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": files * rounds,
        "bytes": res.bytes_moved,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_fault_storm(smoke: bool) -> Dict[str, object]:
    files, ops = (8, 150) if smoke else (24, 1200)
    stack = build_stack(
        faults={
            "ssd": FaultConfig(
                read_error_p=0.05,
                write_error_p=0.25,
                transient_fraction=1.0,
                torn_write_p=0.1,
            ),
            "hdd": FaultConfig(latency_spike_p=0.2),
        },
        fault_seed=2025,
    )
    t0 = time.perf_counter()
    sim0 = stack.clock.now_ns
    events = fault_storm(stack, operations=ops, files=files)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": 0,
        "sim_elapsed_s": (stack.clock.now_ns - sim0) / 1e9,
        "events": events,
        "fingerprint": _mux_fingerprint(stack),
    }


def _wl_cache_writeback(smoke: bool) -> Dict[str, object]:
    size, ops = (2 * MIB, 400) if smoke else (8 * MIB, 4000)
    stack = build_stack(cache_write_back=True)
    t0 = time.perf_counter()
    sim0 = stack.clock.now_ns
    counts = cache_writeback(stack, file_bytes=size, operations=ops)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": ops * 4096,
        "sim_elapsed_s": (stack.clock.now_ns - sim0) / 1e9,
        "events": counts,
        "fingerprint": _mux_fingerprint(stack, extended=True),
    }


def _wl_parallel_stripe(smoke: bool) -> Dict[str, object]:
    """Striped cross-tier reads: the parallel engine vs the serial model.

    The same workload runs on two stacks — parallel dispatch (the
    default) and the serial ablation (``IoScheduler(parallel=False)``) —
    and the headline number is the per-read latency ratio.  The
    fingerprint pins the parallel stack plus the serial stack's final
    clock, so drift in *either* dispatch model trips the smoke guard.
    """
    size, reads = (2 * MIB, 2) if smoke else (16 * MIB, 4)
    results: Dict[str, float] = {}
    serial_now_ns = 0
    fingerprint: Dict[str, object] = {}
    wall = 0.0
    # dispatch-model ablation: saturation knees off, so the measured gap
    # is parallel-vs-serial dispatch alone — a 16 MiB stripe floods the
    # queues far past any calibrated knee, which would penalize both
    # models and confound the comparison with device saturation
    no_knee = {
        "pm": replace(OPTANE_PMEM_200, knee_depth=0, knee_penalty=0.0),
        "ssd": replace(OPTANE_SSD_P4800X, knee_depth=0, knee_penalty=0.0),
    }
    for mode, parallel in (("parallel", True), ("serial", False)):
        stack = build_stack(
            tiers=["pm", "ssd"],
            enable_cache=False,
            scheduler=IoScheduler(parallel=parallel),
            profiles=no_knee,
        )
        tier_ids = [stack.tier_id(n) for n in ("pm", "ssd")]
        t0 = time.perf_counter()
        res = striped_reads(stack, tier_ids, file_bytes=size, reads=reads)
        wall += time.perf_counter() - t0
        results[mode] = res.mean_ns
        if parallel:
            fingerprint = _mux_fingerprint(stack)
        else:
            serial_now_ns = stack.clock.now_ns
    fingerprint["serial_now_ns"] = serial_now_ns
    speedup = results["serial"] / results["parallel"] if results["parallel"] else 0.0
    return {
        "wall_s": wall,
        "ops": 2 * reads,
        "bytes": 2 * reads * size,
        "sim_elapsed_s": (results["parallel"] * reads) / 1e9,
        "events": {
            "parallel_read_us": round(results["parallel"] / 1e3, 2),
            "serial_read_us": round(results["serial"] / 1e3, 2),
            "speedup_x": round(speedup, 2),
        },
        "fingerprint": fingerprint,
    }


def _mt_specs(load_mult: float) -> List[TenantSpec]:
    """Four tenants with distinct personalities, scaled by ``load_mult``.

    ``load_mult`` multiplies every inter-arrival gap, so 1.0 is the
    highest offered load (past depth-1 saturation) and larger values back
    off toward an uncontended system.  The mix covers the interesting
    axes: read-heavy vs mixed, Poisson vs bursty arrivals, and one
    QoS-throttled batch tenant.
    """

    def gap(base_ns: int) -> int:
        return max(1, round(base_ns * load_mult))

    return [
        TenantSpec("alpha", mean_interarrival_ns=gap(2_500), files=6, read_fraction=0.9),
        TenantSpec("bravo", mean_interarrival_ns=gap(4_000), files=4, read_fraction=0.7),
        TenantSpec("burst", mean_interarrival_ns=gap(3_000), arrival="bursty", burst_size=8),
        TenantSpec(
            "batch",
            mean_interarrival_ns=gap(6_000),
            read_fraction=0.5,
            qos_class=IoClass("batch", quota_bytes_per_sec=200 * MIB),
        ),
    ]


def _mt_stack() -> Stack:
    # catalog profiles now carry spec-calibrated saturation knees by
    # default (see devices/profile.py), so no per-workload override is
    # needed: device queueing, not cache luck, sets the tails here
    return build_stack(enable_cache=False, readahead_background=True)


def _wl_multi_tenant(smoke: bool) -> Dict[str, object]:
    """Open-loop multi-tenant tails: async ring vs serialized depth-1.

    The same pre-generated arrival schedule runs twice per load point —
    once through depth-8 submit/complete rings and once through depth-1
    (the serialized baseline) — and the headline number is the aggregate
    read-p99 ratio at the highest offered load.  Because the load is
    open-loop, depth-1 queueing delay counts against its tail instead of
    silently slowing the arrival process.

    The fingerprint pins the async stack at the highest load plus the
    baseline's final clock and the full p50/p99/p999 table for every
    (load, depth) pair, so drift in either dispatch path — or in the tail
    percentiles themselves — trips the smoke guard.
    """
    duration_ns = 300_000 if smoke else 1_000_000
    loads = [1.0] if smoke else [4.0, 2.0, 1.0]
    wall = 0.0
    ops = 0
    bytes_moved = 0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    tails: Dict[str, object] = {}
    table: Dict[str, object] = {}
    ratio = 0.0
    for load in loads:
        specs = _mt_specs(load)
        point: Dict[str, Dict[str, int]] = {}
        for depth in (8, 1):
            stack = _mt_stack()
            sim0 = stack.clock.now_ns
            t0 = time.perf_counter()
            res = run_multi_tenant(stack, specs, duration_ns=duration_ns, ring_depth=depth)
            wall += time.perf_counter() - t0
            ops += res.completed_ops
            bytes_moved += sum(
                t.ops * spec.io_bytes for spec, t in zip(specs, res.tenants.values())
            )
            label = "async" if depth == 8 else "depth1"
            point[label] = {
                **{f"read_{k}": v for k, v in res.percentiles_ns("read").items()},
                **{f"write_{k}": v for k, v in res.percentiles_ns("write").items()},
            }
            if depth == 8:
                sim_elapsed_ns += stack.clock.now_ns - sim0
            if load == loads[-1]:
                if depth == 8:
                    fingerprint = _mux_fingerprint(stack)
                else:
                    fingerprint["depth1_now_ns"] = stack.clock.now_ns
        key = f"load_{load:g}x"
        tails[key] = point
        table[key] = {
            "async_read_p99_us": round(point["async"]["read_p99"] / 1e3, 2),
            "depth1_read_p99_us": round(point["depth1"]["read_p99"] / 1e3, 2),
        }
        if load == loads[-1] and point["async"]["read_p99"]:
            ratio = point["depth1"]["read_p99"] / point["async"]["read_p99"]
    fingerprint["tails"] = tails
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": bytes_moved,
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {"p99_ratio_x": round(ratio, 1), "sweep": table},
        "fingerprint": fingerprint,
    }


#: the three registered policies the pressure duels compare: the paper's
#: size-threshold default, the hotness-driven migrator, and the
#: queue/health-fed pressure-aware policy this benchmark exists to judge
_DUEL_POLICIES = ("tpfs", "hotcold", "pressure")


def _duel_stack(policy: str) -> Stack:
    """Identical stacks differing only in policy, tuned so bursts hurt.

    The SSD's volatile write buffer is shrunk from the spec's 32 MiB to
    256 KiB: with the stock buffer a whole fsynced burst is absorbed at
    cache speed and *no* placement policy can distinguish itself.  The
    SCM cache is off for the same reason — the duel measures placement
    under device pressure, not cache hit luck.  Catalog saturation knees
    (on by default) do the rest.
    """
    return build_stack(
        policy=policy,
        enable_cache=False,
        profiles={"ssd": replace(OPTANE_SSD_P4800X, write_buffer_bytes=256 * KIB)},
        readahead_background=True,
        pressure_interval_ns=10_000,
    )


def _wl_trace_replay(smoke: bool) -> Dict[str, object]:
    """Canonical bursty trace replayed head-to-head across policies.

    The checked-in ``benchmarks/traces/bursty.muxtrace`` (a zipf read
    floor with 4 MiB fsynced write bursts) is replayed open-loop against
    one stack per registered policy; the headline is each policy's read
    tail on identical offered load.  The fingerprint pins the
    pressure-aware stack's devices plus every policy's full latency
    table, so drift in any policy's placement trips the smoke guard.
    """
    trace = load_canonical("bursty")
    if smoke:
        trace = trace.truncated(0.2)
    wall = 0.0
    ops = 0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    policies_fp: Dict[str, object] = {}
    table: Dict[str, object] = {}
    for name in _DUEL_POLICIES:
        stack = _duel_stack(name)
        sim0 = stack.clock.now_ns
        t0 = time.perf_counter()
        res = replay_trace(
            stack,
            trace,
            ring_depth=32,
            maintain_every=256,
            population_tier="ssd",
        )
        wall += time.perf_counter() - t0
        ops += res.submitted
        reads = res.percentiles_ns("read")
        writes = res.percentiles_ns("write")
        table[name] = {
            "read_p99_us": round(reads["p99"] / 1e3, 1),
            "read_p999_us": round(reads["p999"] / 1e3, 1),
            "migrations": res.migrations_submitted,
        }
        policies_fp[name] = {
            "now_ns": stack.clock.now_ns,
            **{f"read_{k}": v for k, v in reads.items()},
            **{f"write_{k}": v for k, v in writes.items()},
            "submitted": res.submitted,
            "errors": res.errors,
            "migrations": res.migrations_submitted,
        }
        if name == "pressure":
            sim_elapsed_ns = stack.clock.now_ns - sim0
            fingerprint = _mux_fingerprint(stack)
    fingerprint["policies"] = policies_fp
    mix = trace.op_mix()
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": sum(op.length for op in trace.ops) * len(_DUEL_POLICIES),
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {"trace": "bursty", "op_mix": mix, "policies": table},
        "fingerprint": fingerprint,
    }


def _duel_specs() -> List[TenantSpec]:
    """Two read-floor tenants sharing channels with one bursty logger.

    The logger fsyncs each burst (the database/logger durability
    pattern), so ~4 MiB of writes land on the SSD's channels every ~4 ms
    — exactly the pressure shape the trace duel uses, but arriving
    through independent per-tenant rings so per-tenant fairness is
    measurable against each tenant's isolated counterfactual.
    """
    return [
        TenantSpec(
            "web",
            mean_interarrival_ns=30_000,
            files=20,
            file_bytes=2 * MIB,
            io_bytes=16 * KIB,
            read_fraction=1.0,
            zipf_alpha=1.0,
        ),
        TenantSpec(
            "api",
            mean_interarrival_ns=30_000,
            files=20,
            file_bytes=2 * MIB,
            io_bytes=16 * KIB,
            read_fraction=1.0,
            zipf_alpha=1.0,
        ),
        TenantSpec(
            "log",
            mean_interarrival_ns=125_000,
            files=8,
            file_bytes=2 * MIB,
            io_bytes=128 * KIB,
            read_fraction=0.0,
            arrival="bursty",
            burst_size=32,
            zipf_alpha=1.0,
            fsync_bursts=True,
        ),
    ]


def _wl_tenant_policy_duel(smoke: bool) -> Dict[str, object]:
    """Multi-tenant policy duel plus per-tenant fairness slowdowns.

    The same open-loop three-tenant schedule runs against one stack per
    policy (placement maintained mid-run via ``maintain_every``), and the
    pressure-aware policy is additionally scored on fairness: each
    tenant's shared-run read tail over its isolated-run tail, the classic
    slowdown metric — the spread shows who pays for the logger's bursts.
    """
    duration_ns = 12_000_000 if smoke else 60_000_000
    specs = _duel_specs()
    wall = 0.0
    ops = 0
    bytes_moved = 0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    policies_fp: Dict[str, object] = {}
    table: Dict[str, object] = {}

    def _run(stack: Stack):
        return run_multi_tenant(
            stack,
            specs,
            duration_ns=duration_ns,
            ring_depth=32,
            population_tier=stack.tier_ids["ssd"],
            maintain_every=256,
            durable_population=True,
        )

    for name in _DUEL_POLICIES:
        stack = _duel_stack(name)
        sim0 = stack.clock.now_ns
        t0 = time.perf_counter()
        res = _run(stack)
        wall += time.perf_counter() - t0
        ops += res.completed_ops
        bytes_moved += sum(
            t.ops * spec.io_bytes for spec, t in zip(specs, res.tenants.values())
        )
        reads = res.percentiles_ns("read")
        table[name] = {
            "read_p99_us": round(reads["p99"] / 1e3, 1),
            "read_p999_us": round(reads["p999"] / 1e3, 1),
            "migrations": res.migrations_submitted,
        }
        policies_fp[name] = {
            "now_ns": stack.clock.now_ns,
            **{f"read_{k}": v for k, v in reads.items()},
            **{f"write_{k}": v for k, v in res.percentiles_ns("write").items()},
            "migrations": res.migrations_submitted,
        }
        if name == "pressure":
            sim_elapsed_ns = stack.clock.now_ns - sim0
            fingerprint = _mux_fingerprint(stack)

    # fairness for the winner: shared tail over isolated counterfactual
    t0 = time.perf_counter()
    _, fairness = fairness_slowdowns(
        lambda: _duel_stack("pressure"),
        specs,
        duration_ns=duration_ns,
        ring_depth=32,
        population_tier_name="ssd",
        maintain_every=256,
        durable_population=True,
    )
    wall += time.perf_counter() - t0
    slowdowns = {
        name: round(slowdown_x(entry), 2)
        for name, entry in fairness.items()
        if entry["isolated_p99_ns"]
    }
    fingerprint["policies"] = policies_fp
    fingerprint["fairness"] = fairness
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": bytes_moved,
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {"policies": table, "fairness_slowdown_x": slowdowns},
        "fingerprint": fingerprint,
    }


def _wl_mirror_skew(smoke: bool) -> Dict[str, object]:
    """Mirror-optimized tiering vs exclusive placement on skewed reads.

    A zipf read stream hammers a working set that starts *cold on the
    HDD* (too large for exclusive promotion to rescue outright: the
    pressure policy stops promoting at ``promote_util`` of PM).  The
    ``mirror`` policy instead grants hot read-mostly files replicas on
    PM — authority stays downhill, reads route uphill — so its measured
    steady-state read tail collapses to fast-tier latency while the
    exclusive baseline keeps paying the HDD for whatever it could not
    promote.  The headline is the read-p99 ratio (baseline over
    mirrored); the fingerprint pins both stacks.
    """
    files, file_bytes, io_bytes = 56, 1 * MIB, 16 * KIB
    warm_reads, measured_reads = (2500, 1000) if smoke else (5000, 2500)
    maintain_every = 100
    wall = 0.0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    policies_fp: Dict[str, object] = {}
    table: Dict[str, object] = {}
    p99_by_policy: Dict[str, int] = {}
    for name in ("pressure", "mirror"):
        # two tiers, and an HDD small enough that its page cache (10%
        # of the device) cannot swallow whatever the policy leaves
        # behind: placement, not DRAM, decides the read tail
        stack = build_stack(
            tiers=["pm", "hdd"],
            capacities={"hdd": 128 * MIB},
            policy=name,
            enable_cache=False,
        )
        mux = stack.mux
        hdd = stack.tier_ids["hdd"]
        mux.mkdir("/skew")
        payload = b"\x6b" * file_bytes
        handles = []
        for i in range(files):
            path = f"/skew/f{i}"
            mux.close(mux.create(path))
            mux.set_placement(path, hdd)
            mux.write_file(path, payload)
            mux.set_placement(path, None)
            handle = mux.open(path)
            mux.fsync(handle)
            handles.append(handle)
        # the population leaves every block clean in the HDD file
        # system's page cache (it is 10% of the device — the whole
        # working set fits); drop it so the measured stream starts
        # against cold media, the tiered-storage shape under test
        for fs in stack.filesystems.values():
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                cache.drop_clean()
        rng = DeterministicRng(11).fork("mirror-skew")
        # mild skew across files (every file stays warm enough to earn
        # placement), sharper skew within each file's blocks
        file_cdf = _zipf_cdf(files, 0.5)
        block_cdf = _zipf_cdf(file_bytes // io_bytes, 1.1)
        hist = LatencyHistogram()
        sim0 = stack.clock.now_ns
        t0 = time.perf_counter()
        for index in range(warm_reads + measured_reads):
            if index and index % maintain_every == 0:
                mux.maintain_async()
            mux.engine.tick()
            mux.mirrors.tick()
            fid = _zipf_pick(rng, file_cdf)
            offset = _zipf_pick(rng, block_cdf) * io_bytes
            if index == warm_reads:
                # settle between the phases: converge in-flight
                # migrations and mirror syncs so the measured window
                # sees each policy's steady-state placement, not the
                # transient cost of reaching it
                mux.maintain_async()
                mux.engine.drain()
                mux.mirrors.drain()
            s0 = stack.clock.now_ns
            mux.read(handles[fid], offset, io_bytes)
            if index >= warm_reads:
                hist.record(stack.clock.now_ns - s0)
        wall += time.perf_counter() - t0
        for handle in handles:
            mux.close(handle)
        reads = hist.percentiles_ns(0.5, 0.99, 0.999)
        p99_by_policy[name] = reads["p99"]
        table[name] = {
            "read_p50_us": round(reads["p50"] / 1e3, 1),
            "read_p99_us": round(reads["p99"] / 1e3, 1),
            "reads_from_mirror": mux.stats.get("reads_from_mirror"),
            "mirror_blocks_synced": mux.mirrors.stats.get("blocks_synced"),
        }
        policies_fp[name] = {
            "now_ns": stack.clock.now_ns,
            **{f"read_{k}": v for k, v in reads.items()},
            "reads_from_mirror": mux.stats.get("reads_from_mirror"),
            "blocks_synced": mux.mirrors.stats.get("blocks_synced"),
            "deadline_promotions": mux.mirrors.stats.get("deadline_promotions"),
        }
        if name == "mirror":
            sim_elapsed_ns = stack.clock.now_ns - sim0
            fingerprint = _mux_fingerprint(stack)
    fingerprint["policies"] = policies_fp
    ratio = (
        p99_by_policy["pressure"] / p99_by_policy["mirror"]
        if p99_by_policy.get("mirror")
        else 0.0
    )
    return {
        "wall_s": wall,
        "ops": 2 * (warm_reads + measured_reads),
        "bytes": 2 * (warm_reads + measured_reads) * io_bytes,
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {
            "population": "hdd-cold",
            "policies": table,
            "read_p99_ratio_x": round(ratio, 1),
        },
        "fingerprint": fingerprint,
    }


#: the mirror duel adds the MOST policy to the exclusive-placement field
_MIRROR_DUEL_POLICIES = ("tpfs", "pressure", "mirror")


def _wl_mirror_trace_duel(smoke: bool) -> Dict[str, object]:
    """Canonical read-heavy zipf trace: mirrored vs exclusive placement.

    The same open-loop replay as ``trace_replay``, but on the canonical
    ``zipf`` trace (80% reads) with the population pinned *cold on the
    HDD* — the tiered-storage shape MOST targets: the authoritative
    copies live downhill, and only placement policy decides how fast the
    read tail gets rescued.  One untimed warm pass lets every policy
    converge on its steady-state placement, then the page caches drop
    (so durable placement, not leftover DRAM, serves the window) and the
    timed replay measures serving.  Exclusive promotion of the hot files
    keeps OCC-aborting against the trace's own writes; mirrors absorb
    those writes on the replica and converge in the background, so the
    mirrored stack alone gets the hot set uphill.  The events table
    shows each policy's read p99/p999 plus the mirrored stack's
    improvement over the best exclusive policy; the fingerprint pins the
    mirrored stack's devices and every policy's full latency table.
    """
    trace = load_canonical("zipf")
    if smoke:
        trace = trace.truncated(0.2)
    wall = 0.0
    ops = 0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    policies_fp: Dict[str, object] = {}
    table: Dict[str, object] = {}
    p99s: Dict[str, int] = {}
    p999s: Dict[str, int] = {}
    for name in _MIRROR_DUEL_POLICIES:
        stack = _duel_stack(name)
        sim0 = stack.clock.now_ns
        t0 = time.perf_counter()
        res = replay_trace(
            stack,
            trace,
            ring_depth=32,
            maintain_every=64,
            population_tier="hdd",
            warm_passes=1,
            drop_page_caches=True,
        )
        wall += time.perf_counter() - t0
        ops += res.submitted
        reads = res.percentiles_ns("read")
        writes = res.percentiles_ns("write")
        p99s[name] = reads["p99"]
        p999s[name] = reads["p999"]
        table[name] = {
            "read_p99_us": round(reads["p99"] / 1e3, 1),
            "read_p999_us": round(reads["p999"] / 1e3, 1),
            "migrations": res.migrations_submitted,
            "reads_from_mirror": stack.mux.stats.get("reads_from_mirror"),
        }
        policies_fp[name] = {
            "now_ns": stack.clock.now_ns,
            **{f"read_{k}": v for k, v in reads.items()},
            **{f"write_{k}": v for k, v in writes.items()},
            "submitted": res.submitted,
            "errors": res.errors,
            "migrations": res.migrations_submitted,
            "reads_from_mirror": stack.mux.stats.get("reads_from_mirror"),
            "blocks_synced": stack.mux.mirrors.stats.get("blocks_synced"),
        }
        if name == "mirror":
            sim_elapsed_ns = stack.clock.now_ns - sim0
            fingerprint = _mux_fingerprint(stack)
    fingerprint["policies"] = policies_fp
    best_exclusive_p99 = min(p99s[n] for n in ("tpfs", "pressure"))
    best_exclusive_p999 = min(p999s[n] for n in ("tpfs", "pressure"))
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": sum(op.length for op in trace.ops) * len(_MIRROR_DUEL_POLICIES),
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {
            "trace": "zipf",
            "population": "hdd-cold",
            "policies": table,
            "read_p99_vs_exclusive_x": round(
                best_exclusive_p99 / p99s["mirror"], 1
            )
            if p99s["mirror"]
            else 0.0,
            "read_p999_vs_exclusive_x": round(
                best_exclusive_p999 / p999s["mirror"], 1
            )
            if p999s["mirror"]
            else 0.0,
        },
        "fingerprint": fingerprint,
    }


def _wl_strata_fileserver(smoke: bool) -> Dict[str, object]:
    files, ops = (8, 100) if smoke else (20, 300)
    strata = build_strata()
    t0 = time.perf_counter()
    res = fileserver(strata.fs, strata.clock, files=files, operations=ops)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": res.operations,
        "bytes": 0,
        "sim_elapsed_s": res.elapsed_s,
        "fingerprint": _strata_fingerprint(strata.clock, strata.devices),
    }


def _wl_crash_matrix(smoke: bool) -> Dict[str, object]:
    """Crash-state explorer as a drift guard: the census point count, the
    per-label histogram and the summed post-recovery clocks must all be
    bit-stable, and every explored state must still recover cleanly."""
    from repro.tools.crashexplore import explore

    t0 = time.perf_counter()
    report = explore(smoke=smoke)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "ops": report["states_explored"],
        "bytes": 0,
        "sim_elapsed_s": report["clock_sum_ns"] / 1e9,
        "fingerprint": {
            "now_ns": report["clock_sum_ns"],
            "devices": {},
            "cache": {},
            "sync_points": report["sync_points"],
            "by_label": report["by_label"],
            "states": report["states_explored"],
            "failures": len(report["failures"]),
            "lost_intervals": report["lost_intervals_reported"],
        },
    }


def _cluster_fingerprint(cluster) -> Dict[str, object]:
    """Simulated fingerprint of a whole cluster: per-shard devices with
    ``s<N>.`` prefixes plus summed cache counters, same shape as
    :func:`_mux_fingerprint` so ``compare_fingerprints`` needs no changes."""
    devices: Dict[str, object] = {}
    hit = miss = 0
    for shard in cluster.shards:
        for name, dev in sorted(shard.stack.devices.items()):
            devices[f"s{shard.shard_id}.{name}"] = dev.stats.snapshot()
        if shard.mux.cache is not None:
            hit += shard.mux.cache.stats.get("hit")
            miss += shard.mux.cache.stats.get("miss")
    return {
        "now_ns": cluster.clock.now_ns,
        "devices": devices,
        "cache": {"hit": hit, "miss": miss},
    }


def _cluster_specs(names: List[str], load: float = 1.0) -> List[TenantSpec]:
    """Durability-bound tenants: the shape that makes one Mux the
    bottleneck and therefore makes sharding pay.  Every write burst
    fsyncs (the database/logger pattern), so its cost is an HDD journal
    commit no page cache can absorb; reads interleave on the same
    channels and inherit the queueing delay."""
    return [
        TenantSpec(
            name=name,
            mean_interarrival_ns=round(25_000 / load),
            files=4,
            file_bytes=128 * KIB,
            io_bytes=4 * KIB,
            read_fraction=0.5,
            zipf_alpha=1.1,
            fsync_bursts=True,
        )
        for name in names
    ]


def _wl_cluster_scaleout(smoke: bool) -> Dict[str, object]:
    """Sharded ClusterMux scaling + hotspot-rebalance recovery.

    Phase 1 replays one open-loop HDD-bound schedule (cache off,
    population pinned to the hdd tier) against 1-, 2- and 4-shard
    clusters on one SimClock; aggregate throughput is completed ops over
    simulated makespan, so the scaling ratio measures how well the
    shards' device timelines actually overlap.  Phase 2 deliberately
    hashes every tenant subtree onto one shard of a 4-shard cluster,
    measures the hot read p99, lets the pressure-gauge rebalancer shed
    subtrees (OCC migration over the wire), and replays the same
    schedule — the recovered p99 is the rebalance payoff.  The
    fingerprint pins every phase's devices, makespans and tails.
    """
    from repro.cluster.bench import (
        balanced_tenant_names,
        colocated_tenant_names,
        run_cluster_load,
    )
    from repro.cluster.cluster import build_cluster

    duration_ns = 300_000 if smoke else 800_000
    tenant_count = 8 if smoke else 12
    shard_counts = [1, 4] if smoke else [1, 2, 4]

    def make_cluster(n: int):
        # single-tier HDD shards: with PM in the stack the mux's
        # two-phase writes re-place every hot span onto PM and the disk
        # goes idle — the right behaviour for tiering, the wrong rig for
        # measuring scale-out.  One seek-bound tier per shard makes the
        # shard itself the bottleneck, which is what sharding must fix.
        return build_cluster(shards=n, tiers=["hdd"], enable_cache=False)

    wall = 0.0
    ops = 0
    bytes_moved = 0
    sim_elapsed_ns = 0
    fingerprint: Dict[str, object] = {}
    table: Dict[str, object] = {}
    scaling_fp: Dict[str, object] = {}
    throughput: Dict[int, float] = {}

    # names that spread evenly over the *largest* cluster's ring (all
    # cluster sizes replay the same tenants, so offered load is constant)
    probe_ring = make_cluster(shard_counts[-1]).mux.ring
    names = balanced_tenant_names(probe_ring, "tenants", tenant_count)
    specs = _cluster_specs(names)
    for n in shard_counts:
        cluster = make_cluster(n).mux
        hdd = cluster.shards[0].stack.tier_ids["hdd"]
        sim0 = cluster.clock.now_ns
        t0 = time.perf_counter()
        res, makespan_ns = run_cluster_load(
            cluster, specs, duration_ns=duration_ns, ring_depth=8,
            population_tier=hdd,
        )
        wall += time.perf_counter() - t0
        ops += res.completed_ops
        bytes_moved += sum(
            t.ops * spec.io_bytes for spec, t in zip(specs, res.tenants.values())
        )
        throughput[n] = res.completed_ops * 1e9 / makespan_ns
        reads = res.percentiles_ns("read")
        table[f"shards_{n}"] = {
            "kops_per_sim_s": round(throughput[n] / 1e3, 1),
            "read_p99_us": round(reads["p99"] / 1e3, 1),
        }
        scaling_fp[f"shards_{n}"] = {
            "makespan_ns": makespan_ns,
            "completed": res.completed_ops,
            **{f"read_{k}": v for k, v in reads.items()},
        }
        if n == shard_counts[-1]:
            sim_elapsed_ns += cluster.clock.now_ns - sim0
            fingerprint = _cluster_fingerprint(cluster)
    scaling_x = throughput[shard_counts[-1]] / throughput[1]

    # -- phase 2: hotspot + rebalance -----------------------------------
    cluster = make_cluster(4).mux
    hdd = cluster.shards[0].stack.tier_ids["hdd"]
    hot_names, hot_shard = colocated_tenant_names(
        cluster.ring, "tenants", tenant_count
    )
    hot_specs = _cluster_specs(hot_names)
    sim0 = cluster.clock.now_ns
    t0 = time.perf_counter()
    hot_res, hot_span = run_cluster_load(
        cluster, hot_specs, duration_ns=duration_ns, ring_depth=8,
        population_tier=hdd,
    )
    moved = cluster.rebalance(max_moves=tenant_count - 2)
    cold_res, cold_span = run_cluster_load(
        cluster, hot_specs, duration_ns=duration_ns, ring_depth=8,
        population_tier=hdd,
    )
    wall += time.perf_counter() - t0
    sim_elapsed_ns += cluster.clock.now_ns - sim0
    ops += hot_res.completed_ops + cold_res.completed_ops
    hot_p99 = hot_res.percentiles_ns("read")["p99"]
    cold_p99 = cold_res.percentiles_ns("read")["p99"]
    fingerprint["scaling"] = scaling_fp
    fingerprint["hotspot"] = {
        "hot_shard": hot_shard,
        "hot_makespan_ns": hot_span,
        "hot_read_p99": hot_p99,
        "rebalanced_makespan_ns": cold_span,
        "rebalanced_read_p99": cold_p99,
        "subtrees_moved": moved["moves"],
        "files_moved": moved["files_moved"],
        "bytes_moved": moved["bytes_moved"],
        "final_now_ns": cluster.clock.now_ns,
    }
    return {
        "wall_s": wall,
        "ops": ops,
        "bytes": bytes_moved + moved["bytes_moved"],
        "sim_elapsed_s": sim_elapsed_ns / 1e9,
        "events": {
            "scaling_x": round(scaling_x, 2),
            "sweep": table,
            "hot_read_p99_us": round(hot_p99 / 1e3, 1),
            "rebalanced_read_p99_us": round(cold_p99 / 1e3, 1),
            "p99_recovery_x": round(hot_p99 / cold_p99, 2) if cold_p99 else 0.0,
            "subtrees_moved": moved["moves"],
        },
        "fingerprint": fingerprint,
    }


WORKLOADS: List[Tuple[str, Callable[[bool], Dict[str, object]]]] = [
    ("seq_write", _wl_seq_write),
    ("seq_read", _wl_seq_read),
    ("hot_set_reads", _wl_hot_set),
    ("fileserver", _wl_fileserver),
    ("webserver", _wl_webserver),
    ("varmail", _wl_varmail),
    ("metadata_churn", _wl_metadata_churn),
    ("migration_churn", _wl_migration_churn),
    ("fault_storm", _wl_fault_storm),
    ("cache_writeback", _wl_cache_writeback),
    ("parallel_stripe", _wl_parallel_stripe),
    ("multi_tenant", _wl_multi_tenant),
    ("trace_replay", _wl_trace_replay),
    ("tenant_policy_duel", _wl_tenant_policy_duel),
    ("strata_fileserver", _wl_strata_fileserver),
    ("crash_matrix", _wl_crash_matrix),
    ("mirror_skew", _wl_mirror_skew),
    ("mirror_trace_duel", _wl_mirror_trace_duel),
    ("cluster_scaleout", _wl_cluster_scaleout),
]


# ---------------------------------------------------------------------------
# running
# ---------------------------------------------------------------------------


def run_workloads(smoke: bool, reps: Optional[int] = None) -> Dict[str, Dict[str, object]]:
    """Run every workload ``reps`` times; return name -> best-rep result.

    Raises ``RuntimeError`` if any repetition of a workload produces a
    different simulated fingerprint (the stack lost determinism).
    """
    reps = reps if reps is not None else (SMOKE_REPS if smoke else FULL_REPS)
    out: Dict[str, Dict[str, object]] = {}
    for name, fn in WORKLOADS:
        best: Optional[Dict[str, object]] = None
        fingerprint = None
        for rep in range(reps):
            result = fn(smoke)
            if fingerprint is None:
                fingerprint = result["fingerprint"]
            elif result["fingerprint"] != fingerprint:
                raise RuntimeError(
                    f"workload {name!r} rep {rep} produced a different simulated "
                    f"fingerprint — the stack is not deterministic"
                )
            if best is None or result["wall_s"] < best["wall_s"]:
                best = result
        assert best is not None
        ops = best["ops"]
        best["ops_per_host_s"] = (
            round(ops / best["wall_s"], 1) if best["wall_s"] > 0 and ops else 0.0
        )
        best["wall_s"] = round(best["wall_s"], 4)
        out[name] = best
    return out


def compare_fingerprints(
    golden: Dict[str, object], observed: Dict[str, object]
) -> List[str]:
    """Human-readable list of differences (empty == identical)."""
    diffs: List[str] = []
    if golden.get("now_ns") != observed.get("now_ns"):
        diffs.append(f"now_ns: golden={golden.get('now_ns')} got={observed.get('now_ns')}")
    gdev = golden.get("devices", {})
    odev = observed.get("devices", {})
    for dev in sorted(set(gdev) | set(odev)):
        g, o = gdev.get(dev, {}), odev.get(dev, {})
        for key in sorted(set(g) | set(o)):
            if g.get(key) != o.get(key):
                diffs.append(f"{dev}.{key}: golden={g.get(key)} got={o.get(key)}")
    if golden.get("cache") != observed.get("cache"):
        diffs.append(f"cache: golden={golden.get('cache')} got={observed.get('cache')}")
    # workload-specific extras (e.g. parallel_stripe's serial_now_ns)
    for key in sorted((set(golden) | set(observed)) - {"now_ns", "devices", "cache"}):
        if golden.get(key) != observed.get(key):
            diffs.append(f"{key}: golden={golden.get(key)} got={observed.get(key)}")
    return diffs


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _run_full(out_path: str, before_path: Optional[str]) -> int:
    print("wallclock: full run (this takes a few minutes)...")
    full = run_workloads(smoke=False)
    smoke = run_workloads(smoke=True, reps=1)

    before: Dict[str, Dict[str, object]] = {}
    if before_path:
        with open(before_path) as f:
            prior = json.load(f)
        # accept either a raw run_workloads dump or a full BENCH file
        source = prior.get("workloads", prior)
        for name, entry in source.items():
            before[name] = entry.get("after", entry)

    doc: Dict[str, object] = {
        "bench": "wallclock",
        "units": {
            "wall_s": "host seconds (time.perf_counter, best of "
            f"{FULL_REPS} reps)",
            "sim_elapsed_s": "simulated seconds (machine-independent)",
            "ops_per_host_s": "workload ops per host second",
        },
        "workloads": {},
        "golden_sim": {},
        "golden_sim_smoke": {},
    }
    for name, result in full.items():
        entry: Dict[str, object] = {
            "after": {
                k: v for k, v in result.items() if k != "fingerprint"
            }
        }
        if name in before:
            b = dict(before[name])
            b.pop("fingerprint", None)
            entry["before"] = b
            bw, aw = b.get("wall_s"), result["wall_s"]
            if isinstance(bw, (int, float)) and isinstance(aw, (int, float)) and aw > 0:
                entry["speedup"] = round(bw / aw, 2)
        doc["workloads"][name] = entry
        doc["golden_sim"][name] = result["fingerprint"]
    for name, result in smoke.items():
        doc["golden_sim_smoke"][name] = result["fingerprint"]

    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wallclock: wrote {out_path}")
    for name, entry in doc["workloads"].items():
        after = entry["after"]
        line = f"  {name:18s} wall={after['wall_s']:8.3f}s"
        if "speedup" in entry:
            line += f"  speedup={entry['speedup']:.2f}x"
        print(line)
    return 0


def _run_smoke(out_path: str) -> int:
    try:
        with open(out_path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        print(f"wallclock --smoke: no {out_path}; run the full bench first")
        return 2
    golden = doc.get("golden_sim_smoke", {})
    if not golden:
        print(f"wallclock --smoke: {out_path} has no golden_sim_smoke section")
        return 2
    t0 = time.perf_counter()
    observed = run_workloads(smoke=True)
    failures = 0
    for name, result in observed.items():
        if name not in golden:
            print(f"  {name}: SKIP (no golden recorded)")
            continue
        diffs = compare_fingerprints(golden[name], result["fingerprint"])
        if diffs:
            failures += 1
            print(f"  {name}: SIMULATED-TIME DRIFT")
            for d in diffs:
                print(f"    {d}")
        else:
            print(f"  {name}: ok (wall={result['wall_s']:.3f}s)")
    total = time.perf_counter() - t0
    print(f"wallclock --smoke: {len(observed)} workloads in {total:.1f}s host time")
    if failures:
        print(f"wallclock --smoke: {failures} workload(s) drifted from golden")
        return 1
    print("wallclock --smoke: simulated time matches golden values")
    return 0


def _flag_value(argv: List[str], flag: str) -> Optional[str]:
    if flag not in argv:
        return None
    idx = argv.index(flag)
    if idx + 1 >= len(argv) or argv[idx + 1].startswith("--"):
        print(f"wallclock: {flag} requires a file path", file=sys.stderr)
        raise SystemExit(2)
    return argv[idx + 1]


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    out_path = _flag_value(argv, "--out") or DEFAULT_OUT
    before_path = _flag_value(argv, "--before")
    if smoke:
        return _run_smoke(out_path)
    return _run_full(out_path, before_path)


if __name__ == "__main__":
    raise SystemExit(main())
