"""Hotspot profiler: ``python -m repro.bench profile <workload>``.

Runs any workload registered in the wall-clock harness under
:mod:`cProfile` and prints the top-N functions by cumulative host time.
This makes perf work profile-guided: before optimising a path, run the
closest workload here and read where the host CPU actually goes (the
simulated clock is unaffected — profiling only observes the host).

Usage::

    PYTHONPATH=src python -m repro.bench profile metadata_churn
    PYTHONPATH=src python -m repro.bench profile seq_read --smoke -n 40
    PYTHONPATH=src python -m repro.bench profile hot_set_reads --sort tottime
    PYTHONPATH=src python -m repro.bench profile --list
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import List, Optional

DEFAULT_TOP_N = 25

#: pstats sort keys accepted by --sort; "cumulative" finds the expensive
#: call path, "tottime" finds the function burning the cycles itself
SORT_KEYS = ("cumulative", "tottime", "ncalls")


def _registered():
    from repro.bench.wallclock import WORKLOADS

    return dict(WORKLOADS)


def profile_workload(
    name: str,
    smoke: bool = False,
    top_n: int = DEFAULT_TOP_N,
    sort: str = "cumulative",
) -> str:
    """Run one registered workload under cProfile; returns the report text."""
    workloads = _registered()
    if name not in workloads:
        raise KeyError(name)
    if sort not in SORT_KEYS:
        raise ValueError(f"sort must be one of {SORT_KEYS}, not {sort!r}")
    fn = workloads[name]
    profiler = cProfile.Profile()
    profiler.enable()
    result = fn(smoke)
    profiler.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort)
    stats.print_stats(top_n)
    header = (
        f"profile: {name} ({'smoke' if smoke else 'full'} size) — "
        f"wall={result['wall_s']:.3f}s host, "
        f"sim={result['sim_elapsed_s']:.4f}s simulated\n"
        f"top {top_n} functions by {sort} host time:\n"
    )
    return header + buf.getvalue()


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    workloads = _registered()
    if "--list" in argv or not [a for a in argv if not a.startswith("-")]:
        print("registered workloads:")
        for name in workloads:
            print(f"  {name}")
        print(
            "usage: python -m repro.bench profile <workload> [--smoke] [-n N]"
            " [--sort cumulative|tottime|ncalls]"
        )
        return 0 if "--list" in argv else 2
    smoke = "--smoke" in argv
    top_n = DEFAULT_TOP_N
    consumed: List[str] = []
    for flag in ("-n", "--top"):
        if flag in argv:
            idx = argv.index(flag)
            if idx + 1 >= len(argv):
                print(f"profile: {flag} requires a number", file=sys.stderr)
                return 2
            consumed.append(argv[idx + 1])
            try:
                top_n = int(argv[idx + 1])
            except ValueError:
                print(
                    f"profile: bad {flag} value {argv[idx + 1]!r}", file=sys.stderr
                )
                return 2
            break
    sort = "cumulative"
    if "--sort" in argv:
        idx = argv.index("--sort")
        if idx + 1 >= len(argv) or argv[idx + 1] not in SORT_KEYS:
            print(
                f"profile: --sort requires one of {', '.join(SORT_KEYS)}",
                file=sys.stderr,
            )
            return 2
        sort = argv[idx + 1]
        consumed.append(sort)
    positional = [a for a in argv if not a.startswith("-") and a not in consumed]
    if not positional:
        print("profile: no workload named; --list shows choices", file=sys.stderr)
        return 2
    name = positional[0]
    if name not in workloads:
        print(f"profile: unknown workload {name!r}; --list shows choices", file=sys.stderr)
        return 2
    print(profile_workload(name, smoke=smoke, top_n=top_n, sort=sort))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
