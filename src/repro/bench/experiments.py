"""The paper's experiments (§3), each as a reusable function.

Every function builds fresh systems, runs the paper's workload at a
capacity-scaled size, and returns structured results together with the
paper's reported numbers so callers (pytest benchmarks, the CLI, and
EXPERIMENTS.md) can print paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench import workloads
from repro.bench.harness import (
    MIB,
    ResultRow,
    StrataStack,
    VfsView,
    build_pinned_mux,
    build_strata,
    format_rows,
)
from repro.core.policy import MigrationOrder
from repro.errors import MigrationUnsupported
from repro.stack import build_stack
from repro.vfs.interface import OpenFlags

TIERS = ("pm", "ssd", "hdd")

#: §3.1/Fig. 3 numbers the paper reports
PAPER_MIGRATION_SPEEDUP_PM_SSD = 2.59
PAPER_IO_SPEEDUP = {"pm": 1.08, "ssd": 1.46, "hdd": 1.07}
#: §3.2 overheads (percent)
PAPER_READ_OVERHEAD = {"pm": 52.4, "ssd": 87.3, "hdd": 6.6}
PAPER_WRITE_OVERHEAD = {"pm": 1.6, "ssd": 2.2, "hdd": 3.5}


# ===========================================================================
# Figure 3a — migration matrix (extensibility + throughput)
# ===========================================================================


@dataclass
class Fig3aResult:
    #: (src, dst) -> MB/s; missing pair = N/S (unsupported)
    mux: Dict[Tuple[str, str], float] = field(default_factory=dict)
    strata: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def mux_supported_pairs(self) -> int:
        return len(self.mux)

    @property
    def strata_supported_pairs(self) -> int:
        return len(self.strata)

    def speedup_pm_ssd(self) -> Optional[float]:
        mux = self.mux.get(("pm", "ssd"))
        strata = self.strata.get(("pm", "ssd"))
        if not mux or not strata:
            return None
        return mux / strata

    def rows(self) -> List[ResultRow]:
        rows = []
        for src in TIERS:
            for dst in TIERS:
                if src == dst:
                    continue
                mux = self.mux.get((src, dst))
                strata = self.strata.get((src, dst))
                rows.append(
                    ResultRow(
                        "Fig3a",
                        f"{src}->{dst}",
                        "migration MB/s (Strata / Mux)",
                        "supported only for pm->ssd, pm->hdd",
                        f"{_fmt(strata)} / {_fmt(mux)}",
                    )
                )
        speedup = self.speedup_pm_ssd()
        rows.append(
            ResultRow(
                "Fig3a",
                "pm->ssd",
                "Mux/Strata migration speedup",
                f"{PAPER_MIGRATION_SPEEDUP_PM_SSD:.2f}x",
                f"{speedup:.2f}x" if speedup else "n/a",
            )
        )
        return rows


def _fmt(value: Optional[float]) -> str:
    return f"{value:.0f}" if value is not None else "N/S"


def experiment_fig3a(file_mib: int = 16) -> Fig3aResult:
    """Measure migration throughput for every device pair, both systems."""
    result = Fig3aResult()
    size = file_mib * MIB

    for src in TIERS:
        for dst in TIERS:
            if src == dst:
                continue
            # ---- Mux: any pair works through the VFS ----------------------
            stack = build_pinned_mux(src, enable_cache=False)
            mux = stack.mux
            handle = workloads.make_file(mux, stack.clock, "/mig.bin", size)
            inode = mux.ns.get(handle.ino)
            end = inode.blt.end_block()
            mux.engine.migrate_now(
                MigrationOrder(
                    handle.ino,
                    0,
                    end,
                    stack.tier_id(src),
                    stack.tier_id(dst),
                    reason="fig3a",
                )
            )
            pair = (stack.tier_id(src), stack.tier_id(dst))
            result.mux[(src, dst)] = mux.engine.pair_stats[pair].throughput_mb_s()
            mux.close(handle)

            # ---- Strata: static routing -----------------------------------
            strata_stack = build_strata(pin_target=src)
            strata = strata_stack.fs
            s_handle = workloads.make_file(strata, strata_stack.clock, "/mig.bin", size)
            strata.digest()  # push everything out of the log to `src`
            blocks = size // strata.block_size
            try:
                strata.migrate_blocks("/mig.bin", 0, blocks, src, dst)
            except MigrationUnsupported:
                pass  # N/S cell
            else:
                result.strata[(src, dst)] = strata.pair_stats[
                    (src, dst)
                ].throughput_mb_s()
            strata.close(s_handle)
    return result


# ===========================================================================
# Figure 3b — per-device I/O throughput, Strata vs Mux
# ===========================================================================


@dataclass
class Fig3bResult:
    mux_mb_s: Dict[str, float] = field(default_factory=dict)
    strata_mb_s: Dict[str, float] = field(default_factory=dict)

    def speedup(self, tier: str) -> float:
        return self.mux_mb_s[tier] / self.strata_mb_s[tier]

    def rows(self) -> List[ResultRow]:
        rows = []
        for tier in TIERS:
            rows.append(
                ResultRow(
                    "Fig3b",
                    tier,
                    "Mux/Strata write throughput",
                    f"{PAPER_IO_SPEEDUP[tier]:.2f}x",
                    f"{self.speedup(tier):.2f}x "
                    f"({self.strata_mb_s[tier]:.0f} -> {self.mux_mb_s[tier]:.0f} MB/s)",
                )
            )
        return rows


def experiment_fig3b(
    total_mib: int = 24, span_mib: int = 40, io_kib: int = 16
) -> Fig3bResult:
    """Random writes always directed to one target device (both systems)."""
    result = Fig3bResult()
    for tier in TIERS:
        # ---- Mux ----------------------------------------------------------
        stack = build_pinned_mux(tier, enable_cache=False)
        res = workloads.random_write(
            stack.mux,
            stack.clock,
            "/io.bin",
            file_size=span_mib * MIB,
            total_bytes=total_mib * MIB,
            io_size=io_kib * 1024,
            fsync_every=0,  # the paper's microbenchmark measures streaming I/O
        )
        result.mux_mb_s[tier] = res.mb_per_s

        # ---- Strata ---------------------------------------------------------
        strata_stack = build_strata(pin_target=tier)
        strata = strata_stack.fs
        clock = strata_stack.clock
        start_ns = clock.now_ns
        res = workloads.random_write(
            strata,
            clock,
            "/io.bin",
            file_size=span_mib * MIB,
            total_bytes=total_mib * MIB,
            io_size=io_kib * 1024,
            fsync_every=0,
        )
        if tier != "pm":
            # data bound for SSD/HDD is not on its device until digested;
            # PM-bound data already lives on PM (the log *is* PM storage)
            strata.digest()
        elapsed = (clock.now_ns - start_ns) / 1e9
        result.strata_mb_s[tier] = (total_mib * MIB / 1e6) / elapsed
    return result


# ===========================================================================
# §3.2 — read latency overhead (Mux vs native, no tiering)
# ===========================================================================

#: file + device sizes per tier for the overhead experiments
OVERHEAD_SIZES = {
    "pm": {"caps": {"pm": 256 * MIB}, "file": 96 * MIB},
    "ssd": {"caps": {"ssd": 256 * MIB}, "file": 128 * MIB},
    "hdd": {"caps": {"hdd": 1024 * MIB}, "file": 256 * MIB},
}


@dataclass
class ReadOverheadResult:
    native_us: Dict[str, float] = field(default_factory=dict)
    mux_us: Dict[str, float] = field(default_factory=dict)

    def overhead_pct(self, tier: str) -> float:
        return 100.0 * (self.mux_us[tier] / self.native_us[tier] - 1.0)

    def rows(self) -> List[ResultRow]:
        return [
            ResultRow(
                "§3.2-read",
                tier,
                "1-byte random read latency overhead",
                f"+{PAPER_READ_OVERHEAD[tier]:.1f}%",
                f"+{self.overhead_pct(tier):.1f}% "
                f"({self.native_us[tier]:.2f} -> {self.mux_us[tier]:.2f} us)",
            )
            for tier in TIERS
        ]


def experiment_read_overhead(iterations: int = 1200) -> ReadOverheadResult:
    """Worst-case read path: one random byte from a large file."""
    result = ReadOverheadResult()
    for tier in TIERS:
        sizes = OVERHEAD_SIZES[tier]

        # ---- native file system through the VFS ----------------------------
        native_stack = build_stack(tiers=[tier], capacities=sizes["caps"])
        native = VfsView(native_stack.vfs, f"/tiers/{tier}")
        handle = workloads.make_file(
            native, native_stack.clock, "/big.bin", sizes["file"]
        )
        native.close(handle)
        res = workloads.random_read_single_byte(
            native, native_stack.clock, "/big.bin", sizes["file"], iterations
        )
        result.native_us[tier] = res.mean_us

        # ---- Mux over the same single file system ----------------------------
        mux_stack = build_pinned_mux(tier, tiers=[tier], capacities=sizes["caps"])
        mux = VfsView(mux_stack.vfs, "/mux")
        handle = workloads.make_file(mux, mux_stack.clock, "/big.bin", sizes["file"])
        mux.close(handle)
        res = workloads.random_read_single_byte(
            mux, mux_stack.clock, "/big.bin", sizes["file"], iterations
        )
        result.mux_us[tier] = res.mean_us
    return result


# ===========================================================================
# §3.2 — write throughput overhead (Mux vs native, no tiering)
# ===========================================================================

WRITE_TOTALS = {"pm": 32 * MIB, "ssd": 128 * MIB, "hdd": 192 * MIB}


@dataclass
class WriteOverheadResult:
    native_mb_s: Dict[str, float] = field(default_factory=dict)
    mux_mb_s: Dict[str, float] = field(default_factory=dict)

    def overhead_pct(self, tier: str) -> float:
        return 100.0 * (1.0 - self.mux_mb_s[tier] / self.native_mb_s[tier])

    def rows(self) -> List[ResultRow]:
        return [
            ResultRow(
                "§3.2-write",
                tier,
                "4 MiB sequential write throughput loss",
                f"-{PAPER_WRITE_OVERHEAD[tier]:.1f}%",
                f"-{self.overhead_pct(tier):.1f}% "
                f"({self.native_mb_s[tier]:.0f} -> {self.mux_mb_s[tier]:.0f} MB/s)",
            )
            for tier in TIERS
        ]


def experiment_write_overhead() -> WriteOverheadResult:
    """Sequential 4 MiB writes, Mux vs the native file system."""
    result = WriteOverheadResult()
    for tier in TIERS:
        sizes = OVERHEAD_SIZES[tier]
        total = WRITE_TOTALS[tier]

        native_stack = build_stack(tiers=[tier], capacities=sizes["caps"])
        native = VfsView(native_stack.vfs, f"/tiers/{tier}")
        res = workloads.sequential_write(
            native, native_stack.clock, "/seq.bin", total
        )
        result.native_mb_s[tier] = res.mb_per_s

        mux_stack = build_pinned_mux(tier, tiers=[tier], capacities=sizes["caps"])
        mux = VfsView(mux_stack.vfs, "/mux")
        res = workloads.sequential_write(mux, mux_stack.clock, "/seq.bin", total)
        result.mux_mb_s[tier] = res.mb_per_s
    return result


# ===========================================================================
# CLI: run everything, print paper-vs-measured
# ===========================================================================


def run_all(fast: bool = False) -> str:
    """Run every experiment; returns the combined report text."""
    sections: List[str] = []
    fig3a = experiment_fig3a(file_mib=8 if fast else 16)
    sections.append(format_rows(fig3a.rows(), "== Figure 3a: migration matrix =="))
    fig3b = experiment_fig3b(total_mib=12 if fast else 24)
    sections.append(format_rows(fig3b.rows(), "== Figure 3b: device I/O =="))
    reads = experiment_read_overhead(iterations=400 if fast else 1200)
    sections.append(format_rows(reads.rows(), "== §3.2 read latency overhead =="))
    writes = experiment_write_overhead()
    sections.append(format_rows(writes.rows(), "== §3.2 write throughput overhead =="))
    return "\n\n".join(sections)
