"""Workload generators for the paper's experiments.

All generators run against anything implementing the
:class:`~repro.vfs.interface.FileSystem` interface (native file systems,
Mux, Strata), measure **simulated** time, and return plain numbers —
machine-independent and deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags

MIB = 1024 * 1024


@dataclass
class ThroughputResult:
    bytes_moved: int
    elapsed_s: float

    @property
    def mb_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return (self.bytes_moved / 1e6) / self.elapsed_s


@dataclass
class LatencyResult:
    operations: int
    total_ns: int

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.operations if self.operations else 0.0

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


def make_file(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    size: int,
    io_size: int = 4 * MIB,
    fsync_every: int = 8,
    pattern: int = 0xA5,
) -> FileHandle:
    """Create ``path`` and fill it sequentially to ``size`` bytes."""
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    chunk = bytes([pattern]) * io_size
    written = 0
    ops = 0
    while written < size:
        n = min(io_size, size - written)
        fs.write(handle, written, chunk[:n])
        written += n
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    return handle


def sequential_write(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    total_bytes: int,
    io_size: int = 4 * MIB,
    fsync_every: int = 4,
) -> ThroughputResult:
    """The §3.2 write benchmark: repeatedly write ``io_size`` sequentially."""
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    chunk = bytes(io_size)
    start_ns = clock.now_ns
    written = 0
    ops = 0
    while written < total_bytes:
        n = min(io_size, total_bytes - written)
        fs.write(handle, written, chunk[:n])
        written += n
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(written, elapsed)


def sequential_read(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    total_bytes: int,
    io_size: int = 4 * MIB,
) -> ThroughputResult:
    """Sequential whole-file read in ``io_size`` chunks."""
    handle = fs.open(path, OpenFlags.RDONLY)
    start_ns = clock.now_ns
    read = 0
    while read < total_bytes:
        n = min(io_size, total_bytes - read)
        data = fs.read(handle, read, n)
        assert len(data) == n, f"short read at {read}"
        read += n
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(read, elapsed)


def random_write(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    total_bytes: int,
    io_size: int = 16 * 1024,
    seed: int = 7,
    fsync_every: int = 64,
) -> ThroughputResult:
    """Fig. 3b workload: random aligned writes over a preallocated span."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    fs.truncate(handle, file_size)  # sparse span; writes materialize blocks
    chunk = bytes(io_size)
    start_ns = clock.now_ns
    written = 0
    ops = 0
    slots = max(1, file_size // io_size)
    while written < total_bytes:
        offset = rng.randint(0, slots - 1) * io_size
        fs.write(handle, offset, chunk)
        written += io_size
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(written, elapsed)


def random_read_single_byte(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    iterations: int,
    seed: int = 11,
    warmup: int = 0,
) -> LatencyResult:
    """§3.2 read benchmark: repeatedly read one byte at random offsets."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDONLY)
    offsets = [rng.randint(0, file_size - 1) for _ in range(warmup + iterations)]
    for offset in offsets[:warmup]:
        fs.read(handle, offset, 1)
    start_ns = clock.now_ns
    for offset in offsets[warmup:]:
        data = fs.read(handle, offset, 1)
        assert len(data) == 1, f"short read at {offset}"
    total = clock.now_ns - start_ns
    fs.close(handle)
    return LatencyResult(iterations, total)


def hot_set_reads(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    hot_bytes: int,
    iterations: int,
    io_size: int = 4096,
    seed: int = 13,
) -> LatencyResult:
    """Skewed reads over a hot subset — exercises the SCM cache."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDONLY)
    hot_slots = max(1, hot_bytes // io_size)
    start_ns = clock.now_ns
    for _ in range(iterations):
        offset = rng.randint(0, hot_slots - 1) * io_size
        fs.read(handle, offset, io_size)
    total = clock.now_ns - start_ns
    fs.close(handle)
    return LatencyResult(iterations, total)
