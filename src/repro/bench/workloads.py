"""Workload generators for the paper's experiments.

All generators run against anything implementing the
:class:`~repro.vfs.interface.FileSystem` interface (native file systems,
Mux, Strata), measure **simulated** time, and return plain numbers —
machine-independent and deterministic for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags

MIB = 1024 * 1024


@dataclass
class ThroughputResult:
    bytes_moved: int
    elapsed_s: float

    @property
    def mb_per_s(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return (self.bytes_moved / 1e6) / self.elapsed_s


@dataclass
class LatencyResult:
    operations: int
    total_ns: int

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.operations if self.operations else 0.0

    @property
    def mean_us(self) -> float:
        return self.mean_ns / 1000.0


def make_file(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    size: int,
    io_size: int = 4 * MIB,
    fsync_every: int = 8,
    pattern: int = 0xA5,
) -> FileHandle:
    """Create ``path`` and fill it sequentially to ``size`` bytes."""
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    chunk = bytes([pattern]) * io_size
    written = 0
    ops = 0
    while written < size:
        n = min(io_size, size - written)
        fs.write(handle, written, chunk[:n])
        written += n
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    return handle


def sequential_write(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    total_bytes: int,
    io_size: int = 4 * MIB,
    fsync_every: int = 4,
) -> ThroughputResult:
    """The §3.2 write benchmark: repeatedly write ``io_size`` sequentially."""
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    chunk = bytes(io_size)
    start_ns = clock.now_ns
    written = 0
    ops = 0
    while written < total_bytes:
        n = min(io_size, total_bytes - written)
        fs.write(handle, written, chunk[:n])
        written += n
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(written, elapsed)


def sequential_read(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    total_bytes: int,
    io_size: int = 4 * MIB,
) -> ThroughputResult:
    """Sequential whole-file read in ``io_size`` chunks."""
    handle = fs.open(path, OpenFlags.RDONLY)
    start_ns = clock.now_ns
    read = 0
    while read < total_bytes:
        n = min(io_size, total_bytes - read)
        data = fs.read(handle, read, n)
        assert len(data) == n, f"short read at {read}"
        read += n
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(read, elapsed)


def random_write(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    total_bytes: int,
    io_size: int = 16 * 1024,
    seed: int = 7,
    fsync_every: int = 64,
) -> ThroughputResult:
    """Fig. 3b workload: random aligned writes over a preallocated span."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC)
    fs.truncate(handle, file_size)  # sparse span; writes materialize blocks
    chunk = bytes(io_size)
    start_ns = clock.now_ns
    written = 0
    ops = 0
    slots = max(1, file_size // io_size)
    while written < total_bytes:
        offset = rng.randint(0, slots - 1) * io_size
        fs.write(handle, offset, chunk)
        written += io_size
        ops += 1
        if fsync_every and ops % fsync_every == 0:
            fs.fsync(handle)
    fs.fsync(handle)
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(handle)
    return ThroughputResult(written, elapsed)


def random_read_single_byte(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    iterations: int,
    seed: int = 11,
    warmup: int = 0,
) -> LatencyResult:
    """§3.2 read benchmark: repeatedly read one byte at random offsets."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDONLY)
    offsets = [rng.randint(0, file_size - 1) for _ in range(warmup + iterations)]
    for offset in offsets[:warmup]:
        fs.read(handle, offset, 1)
    start_ns = clock.now_ns
    for offset in offsets[warmup:]:
        data = fs.read(handle, offset, 1)
        assert len(data) == 1, f"short read at {offset}"
    total = clock.now_ns - start_ns
    fs.close(handle)
    return LatencyResult(iterations, total)


def hot_set_reads(
    fs: FileSystem,
    clock: SimClock,
    path: str,
    file_size: int,
    hot_bytes: int,
    iterations: int,
    io_size: int = 4096,
    seed: int = 13,
) -> LatencyResult:
    """Skewed reads over a hot subset — exercises the SCM cache."""
    rng = DeterministicRng(seed)
    handle = fs.open(path, OpenFlags.RDONLY)
    hot_slots = max(1, hot_bytes // io_size)
    start_ns = clock.now_ns
    for _ in range(iterations):
        offset = rng.randint(0, hot_slots - 1) * io_size
        fs.read(handle, offset, io_size)
    total = clock.now_ns - start_ns
    fs.close(handle)
    return LatencyResult(iterations, total)


def metadata_tree(
    fs: FileSystem,
    files: int = 200,
    dirs: int = 8,
    payload: int = 1024,
    root: str = "",
) -> List[str]:
    """Build the deep tree :func:`metadata_churn` runs over.

    Every file sits five components below the root — the depth real
    metadata benchmarks (e.g. filebench varmail trees) use.  Returns the
    created file paths; split out so harnesses can keep tree construction
    outside the timed section.
    """
    for d in (f"{root}/meta", f"{root}/meta/sub", f"{root}/meta/sub/tree"):
        if not fs.exists(d):
            fs.mkdir(d)
    for d in range(dirs):
        fs.mkdir(f"{root}/meta/sub/tree/d{d:02d}")
    blob = bytes(payload)
    live: List[str] = []
    for n in range(files):
        path = f"{root}/meta/sub/tree/d{n % dirs:02d}/f{n:06d}"
        handle = fs.create(path)
        fs.write(handle, 0, blob)
        fs.close(handle)
        live.append(path)
    return live


def metadata_churn(
    fs: FileSystem,
    clock: SimClock,
    files: int = 200,
    operations: int = 2000,
    dirs: int = 8,
    payload: int = 1024,
    seed: int = 17,
    root: str = "",
    live: Optional[List[str]] = None,
) -> LatencyResult:
    """Namespace-heavy churn: stat/open/close/lookup deep small files.

    The op mix is dominated by path resolution over a deep directory tree
    (stats, opens, negative lookups of names that do not exist) with a
    light create/unlink churn to keep cache invalidation honest, so it
    measures the control plane — dentry cache, path normalization,
    mount-table lookup — with barely any data movement.  Pass a VFS as
    ``fs`` (with ``root`` set to Mux's mount point) to exercise the full
    dispatch path applications actually take.
    """
    rng = DeterministicRng(seed)
    if live is None:
        live = metadata_tree(fs, files, dirs, payload, root)
    blob = bytes(payload)
    next_id = files
    # the negative-lookup pool is fixed names that never exist; built up
    # front so the timed loop measures resolution, not string formatting
    gone = [
        f"{root}/meta/sub/tree/d{d:02d}/gone{g:03d}"
        for d in range(dirs)
        for g in range(25)
    ]

    def spawn() -> None:
        nonlocal next_id
        path = f"{root}/meta/sub/tree/d{next_id % dirs:02d}/f{next_id:06d}"
        next_id += 1
        handle = fs.create(path)
        fs.write(handle, 0, blob)
        fs.close(handle)
        live.append(path)

    start_ns = clock.now_ns
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.005 or not live:
            spawn()
        elif roll < 0.345:
            fs.getattr(rng.choice(live))
        elif roll < 0.595:
            handle = fs.open(rng.choice(live), OpenFlags.RDONLY)
            fs.close(handle)
        elif roll < 0.995:
            fs.exists(rng.choice(gone))
        else:
            victim = live.pop(rng.randint(0, len(live) - 1))
            fs.unlink(victim)
    total = clock.now_ns - start_ns
    return LatencyResult(operations, total)


def migration_churn(
    mux,
    clock: SimClock,
    tier_ids: List[int],
    files: int = 4,
    file_bytes: int = 4 * MIB,
    rounds: int = 6,
    write_every: int = 3,
    seed: int = 23,
) -> ThroughputResult:
    """Promotion/demotion churn under concurrent writes (Policy Runner path).

    Files bounce between the fastest and slowest tiers through the OCC
    Synchronizer while a writer dirties random blocks between migration
    steps — the adversarial §2.4 pattern at benchmark scale.  Measures
    dirty-block tracking, clean-set computation and BLT commit cost.
    """
    from repro.core.policy import MigrationOrder

    rng = DeterministicRng(seed)
    if not mux.exists("/churn"):
        mux.mkdir("/churn")
    bs = mux.block_size
    chunk = bytes(512 * 1024)
    handles = []
    for i in range(files):
        handle = mux.open(
            f"/churn/f{i}", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        )
        written = 0
        while written < file_bytes:
            n = min(len(chunk), file_bytes - written)
            mux.write(handle, written, chunk[:n])
            written += n
        handles.append(handle)
    blocks = file_bytes // bs
    fast, slow = tier_ids[0], tier_ids[-1]
    moved_bytes = 0
    start_ns = clock.now_ns
    demote = True
    for _ in range(rounds):
        src, dst = (fast, slow) if demote else (slow, fast)
        demote = not demote
        for handle in handles:
            task = mux.engine.submit(
                MigrationOrder(handle.ino, 0, blocks, src, dst, reason="churn")
            )
            step = 0
            while task.step():
                if step % write_every == 0:
                    offset = rng.randint(0, blocks - 1) * bs
                    mux.write(handle, offset, b"\xcd" * 512)
                step += 1
            if task.error is not None:
                raise task.error
            moved_bytes += task.result.bytes_moved
    elapsed = (clock.now_ns - start_ns) / 1e9
    for handle in handles:
        mux.close(handle)
    return ThroughputResult(moved_bytes, elapsed)


def cache_writeback(
    stack,
    file_bytes: int = 8 * MIB,
    operations: int = 4000,
    io_size: int = 4096,
    hot_fraction: int = 8,
    seed: int = 31,
) -> Dict[str, int]:
    """Durable-small-write mix: O_SYNC hot writes over a slow-tier file.

    A file is demoted to the HDD tier and pinned there (a capacity-tier
    resident that stays put), warmed into the SCM cache with one
    sequential read pass, then reopened ``O_SYNC`` — the varmail/database
    commit pattern where every small write must be durable immediately.
    The measured loop issues block-aligned writes concentrated on a hot
    1/``hot_fraction`` of the file, mixed with reads.

    With write-back *off*, each O_SYNC write is an individual slow-tier
    write plus a journal flush.  With write-back *on*, the PM slot store
    itself satisfies durability, so writes commit at memory speed and
    dirty runs destage later (writeback budget / close) as coalesced
    batches with repeat overwrites collapsed — the returned
    ``hdd_write_ops`` makes the reduction directly comparable.
    """
    from repro.core.policy import MigrationOrder

    mux = stack.mux
    rng = DeterministicRng(seed)
    if not mux.exists("/wb"):
        mux.mkdir("/wb")
    handle = make_file(mux, stack.clock, "/wb/hot", file_bytes)
    bs = mux.block_size
    blocks = file_bytes // bs
    pm, hdd = stack.tier_ids["pm"], stack.tier_ids["hdd"]
    mux.engine.migrate_now(
        MigrationOrder(handle.ino, 0, blocks, pm, hdd, reason="wb-demote")
    )
    mux.set_placement("/wb/hot", hdd)
    # warm pass: pull the whole file into the SCM cache
    read = 0
    while read < file_bytes:
        n = min(4 * MIB, file_bytes - read)
        mux.read(handle, read, n)
        read += n
    mux.close(handle)
    handle = mux.open("/wb/hot", OpenFlags.RDWR | OpenFlags.SYNC)
    hot_blocks = max(1, blocks // hot_fraction)
    start_ns = stack.clock.now_ns
    for _ in range(operations):
        if rng.random() < 0.8:
            offset = rng.randint(0, hot_blocks - 1) * bs
            mux.write(handle, offset, b"\xbe" * io_size)
        else:
            offset = rng.randint(0, blocks - 1) * bs
            mux.read(handle, offset, io_size)
    mux.close(handle)
    counters = mux.cache.cache_counters() if mux.cache is not None else {}
    hdd_stats = stack.devices["hdd"].stats.snapshot()
    return {
        "write_hits": counters.get("write_hit", 0),
        "destage_runs": counters.get("destage_runs", 0),
        "destaged_blocks": counters.get("destaged_blocks", 0),
        "dirty_at_end": counters.get("dirty_blocks", 0),
        "hdd_write_ops": hdd_stats.get("write_ops", 0),
        "loop_ns": stack.clock.now_ns - start_ns,
    }


def fault_storm(
    stack,
    operations: int = 1200,
    files: int = 24,
    payload: int = 64 * 1024,
    seed: int = 29,
) -> Dict[str, int]:
    """Degraded-mode torture mix: survive a failing tier mid-workload.

    Requires a stack built with fault injectors on the ``ssd`` tier (and
    optionally latency spikes on ``hdd``).  Four phases over one seeded
    schedule:

    1. **populate + demote** — create files on the fast tier, migrate a
       slice to the faulty SSD; its transient write errors exercise the
       retry/backoff path inside the run-level OCC migration;
    2. **offline window** — the SSD device drops dead mid-run: reads of
       SSD-resident blocks fail with ``EIO``, reads elsewhere and all new
       writes keep succeeding (placement routes around the dead tier);
    3. **recovery** — the device comes back, the tier is drained via
       ``evacuate`` and re-admitted as healthy;
    4. **aftershock** — metadata churn plus HDD reads under latency
       spikes prove the stack runs clean again.

    Returns the event counts; all randomness is seeded, so for a fixed
    (seed, fault_seed) pair the schedule — and therefore the simulated
    fingerprint — is bit-identical across runs.
    """
    from repro.core.policy import MigrationOrder
    from repro.errors import FsError

    mux = stack.mux
    rng = DeterministicRng(seed)
    pm, ssd, hdd = (stack.tier_ids[n] for n in ("pm", "ssd", "hdd"))
    ssd_injector = stack.injectors["ssd"]
    bs = mux.block_size
    blocks = payload // bs
    counts: Dict[str, int] = {
        "eio_reads": 0,
        "degraded_reads_ok": 0,
        "degraded_writes_ok": 0,
        "migrations": 0,
        "evacuated_files": 0,
        "retries": 0,
    }

    # -- phase 1: populate, then demote every other file onto the faulty SSD
    if not mux.exists("/storm"):
        mux.mkdir("/storm")
    blob = b"\xa5" * payload
    handles = []
    for i in range(files):
        handle = mux.create(f"/storm/f{i:03d}")
        mux.write(handle, 0, blob)
        handles.append(handle)
    for i in range(0, files, 2):
        result = mux.engine.migrate_now(
            MigrationOrder(handles[i].ino, 0, blocks, pm, ssd, reason="storm")
        )
        counts["migrations"] += 1
        counts["retries"] += result.retries

    # -- phase 2: offline window ------------------------------------------------
    phase_ops = max(1, operations // 3)
    ssd_injector.set_offline()
    # the native FS page cache can mask a dead device for a while; the
    # health monitor (here: the admin API) is what declares the tier dead
    mux.mark_tier_offline(ssd)
    created = 0
    for _ in range(phase_ops):
        if rng.random() < 0.6:
            i = rng.randint(0, files - 1)
            offset = rng.randint(0, blocks - 1) * bs
            try:
                mux.read(handles[i], offset, 4096)
                counts["degraded_reads_ok"] += 1
            except FsError:
                counts["eio_reads"] += 1
        else:
            handle = mux.create(f"/storm/n{created:05d}")
            created += 1
            mux.write(handle, 0, b"\x5a" * 4096)
            mux.close(handle)
            counts["degraded_writes_ok"] += 1

    # -- phase 3: recovery — drain the suspect tier, re-admit it -----------------
    ssd_injector.set_online()
    drained = mux.evacuate(ssd)
    counts["evacuated_files"] = drained["files_drained"]
    counts["retries"] += drained["retries"]
    mux.mark_tier_online(ssd)

    # -- phase 4: aftershock — churn plus HDD reads under latency spikes --------
    for i in range(1, min(files, 7), 2):
        result = mux.engine.migrate_now(
            MigrationOrder(handles[i].ino, 0, blocks, pm, hdd, reason="storm-cold")
        )
        counts["migrations"] += 1
        counts["retries"] += result.retries
    metadata_churn(mux, stack.clock, files=16, operations=phase_ops)
    for _ in range(phase_ops):
        i = rng.choice([1, 3, 5])
        offset = rng.randint(0, blocks - 1) * bs
        mux.read(handles[i], offset, 4096)
    mux.engine.drain()
    for handle in handles:
        mux.close(handle)
    return counts


def striped_reads(
    stack,
    tier_ids: List[int],
    file_bytes: int = 4 * MIB,
    stripe_blocks: int = 16,
    reads: int = 4,
) -> LatencyResult:
    """Whole-file reads over a file striped chunk-round-robin across tiers.

    The file's blocks are scattered in ``stripe_blocks``-block chunks
    across the given tiers, so every whole-file read splits into one
    sub-request per chunk.  Under the parallel engine those sub-requests
    overlap — across tiers on separate device timelines and within a tier
    across the device's channels — and the read completes at the max of
    the completions; under the serial model they are charged one after
    another.  Page caches are dropped before every read so the devices
    are really hit.  Returns the per-read simulated latency.
    """
    from repro.core.policy import MigrationOrder

    mux = stack.mux
    clock = stack.clock
    if not mux.exists("/stripe"):
        mux.mkdir("/stripe")
    handle = mux.open(
        "/stripe/f", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
    )
    written = 0
    chunk = bytes(512 * 1024)
    while written < file_bytes:
        n = min(len(chunk), file_bytes - written)
        mux.write(handle, written, chunk[:n])
        written += n
    mux.fsync(handle)

    # scatter: chunk i goes to tier_ids[i % len(tier_ids)] (new writes land
    # on the fastest tier, so chunks for tier_ids[0] are already in place)
    bs = mux.block_size
    blocks = file_bytes // bs
    src = tier_ids[0]
    for i, start in enumerate(range(0, blocks, stripe_blocks)):
        dst = tier_ids[i % len(tier_ids)]
        if dst == src:
            continue
        count = min(stripe_blocks, blocks - start)
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, start, count, src, dst, reason="stripe")
        )

    total_ns = 0
    for _ in range(reads):
        for fs in stack.filesystems.values():
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                cache.drop_clean()
        t0 = clock.now_ns
        mux.read(handle, 0, file_bytes)
        total_ns += clock.now_ns - t0
    mux.close(handle)
    return LatencyResult(reads, total_ns)
