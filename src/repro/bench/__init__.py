"""Benchmark harness: workloads, system builders, paper experiments."""

from repro.bench.harness import (
    ResultRow,
    StrataStack,
    VfsView,
    build_pinned_mux,
    build_strata,
    format_rows,
)
from repro.bench.macro import ALL_WORKLOADS, MacroResult, fileserver, varmail, webserver
from repro.bench.trace import ReplayResult, Trace, TraceRecorder, replay
from repro.bench.workloads import (
    LatencyResult,
    ThroughputResult,
    hot_set_reads,
    make_file,
    random_read_single_byte,
    random_write,
    sequential_write,
)

__all__ = [
    "ALL_WORKLOADS",
    "MacroResult",
    "fileserver",
    "varmail",
    "webserver",
    "ReplayResult",
    "Trace",
    "TraceRecorder",
    "replay",
    "ResultRow",
    "StrataStack",
    "VfsView",
    "build_pinned_mux",
    "build_strata",
    "format_rows",
    "LatencyResult",
    "ThroughputResult",
    "hot_set_reads",
    "make_file",
    "random_read_single_byte",
    "random_write",
    "sequential_write",
]
