"""Open-loop multi-tenant traffic engine with tail-latency reporting.

The "millions of users" north star needs a measurement harness whose
arrival process does **not** slow down when the storage stack does — the
defining property of open-loop load generation (a closed loop hides
queueing collapse, because a slow system stops being asked).  Each
simulated tenant owns a file population and an arrival process (Poisson
or bursty), pre-generated deterministically before a single op runs, so
the offered load is a pure function of the seed.

Ops are dispatched through per-tenant async submit/complete rings
(:mod:`repro.core.ring`): the global clock is advanced to each op's
*intended arrival instant* and the op is submitted there, overlapping
with everything already in flight.  Latency is measured from intended
arrival to completion, so ring backpressure and device backlog show up as
queueing delay — exactly what p99/p999 under offered load means.  With
``ring_depth=1`` the same schedule degenerates to a serialized
one-op-per-tenant baseline, which is the ablation the async API is
judged against.

Per-tenant latencies aggregate into
:class:`~repro.sim.histogram.LatencyHistogram`\\ s (reads and writes
separately), merged across tenants for the headline p50/p99/p999.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.qos import IoClass
from repro.errors import InvalidArgument
from repro.sim.histogram import LatencyHistogram
from repro.sim.rng import DeterministicRng

KIB = 1024

#: deterministic write payload pattern (content never affects placement)
_PAYLOAD_BYTE = 0x5A


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: a file population plus an arrival process."""

    name: str
    #: mean inter-arrival gap in ns (offered load = 1e9 / mean ops/s)
    mean_interarrival_ns: int
    files: int = 4
    file_bytes: int = 128 * KIB
    #: bytes per read/write op
    io_bytes: int = 4 * KIB
    read_fraction: float = 0.8
    #: zipf skew over file and block choices (higher = hotter hot set)
    zipf_alpha: float = 1.1
    #: "poisson" (memoryless gaps) or "bursty" (whole bursts arrive at
    #: Poisson instants, every op in a burst at the same arrival time)
    arrival: str = "poisson"
    burst_size: int = 4
    #: fsync every file a burst wrote, 1 ns after the burst — the
    #: database/logger pattern: the burst demands durability, so its cost
    #: cannot hide in volatile device write buffers.  (With "poisson"
    #: arrivals each write is its own burst, so this fsyncs every write.)
    fsync_bursts: bool = False
    #: registered with the Mux QoS manager and tagged on every handle
    qos_class: Optional[IoClass] = None

    def __post_init__(self) -> None:
        if self.mean_interarrival_ns <= 0:
            raise InvalidArgument("mean_interarrival_ns must be positive")
        if self.files < 1 or self.file_bytes < self.io_bytes or self.io_bytes < 1:
            raise InvalidArgument(f"bad population shape for tenant {self.name!r}")
        if self.arrival not in ("poisson", "bursty"):
            raise InvalidArgument(f"unknown arrival process {self.arrival!r}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise InvalidArgument("read_fraction must be in [0, 1]")


@dataclass
class TenantResult:
    """Measured behaviour of one tenant."""

    name: str
    reads: LatencyHistogram = field(default_factory=LatencyHistogram)
    writes: LatencyHistogram = field(default_factory=LatencyHistogram)
    submitted: int = 0
    errors: int = 0

    @property
    def ops(self) -> int:
        return self.reads.count + self.writes.count


@dataclass
class MultiTenantResult:
    """Aggregate outcome of one open-loop run."""

    tenants: Dict[str, TenantResult]
    offered_ops: int
    duration_ns: int
    ring_depth: int
    #: migration orders the policy submitted during maintenance rounds
    migrations_submitted: int = 0

    def merged(self, op: str = "read") -> LatencyHistogram:
        """All tenants' latencies for ``op`` folded into one histogram."""
        out = LatencyHistogram()
        for tenant in self.tenants.values():
            out.merge(tenant.reads if op == "read" else tenant.writes)
        return out

    def percentiles_ns(self, op: str = "read") -> Dict[str, int]:
        """Aggregate p50/p99/p999 for ``op`` in integer ns."""
        return self.merged(op).percentiles_ns(0.5, 0.99, 0.999)

    @property
    def completed_ops(self) -> int:
        return sum(t.ops for t in self.tenants.values())


# ---------------------------------------------------------------------------
# deterministic arrival + skew machinery
# ---------------------------------------------------------------------------


def _zipf_cdf(n: int, alpha: float) -> List[float]:
    """Cumulative zipf weights over ranks 1..n (rank 0 is hottest)."""
    weights = [1.0 / (r + 1) ** alpha for r in range(n)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    cdf[-1] = 1.0  # guard float residue
    return cdf


def _zipf_pick(rng: DeterministicRng, cdf: List[float]) -> int:
    return bisect_left(cdf, rng.random())


def _exp_gap(rng: DeterministicRng, mean_ns: float) -> int:
    """One exponential inter-arrival gap (at least 1 ns, so time moves)."""
    u = rng.random()
    return max(1, round(-mean_ns * math.log(1.0 - u)))


#: (arrival_ns, tenant_idx, tenant_seq, op, file_idx, offset)
Event = Tuple[int, int, int, str, int, int]


def generate_schedule(
    specs: List[TenantSpec], duration_ns: int, seed: int
) -> List[Event]:
    """Pre-generate the merged open-loop arrival schedule.

    Every random draw happens here, before any op executes, so the
    offered load cannot react to the stack's behaviour.  The merge is
    sorted by ``(arrival_ns, tenant_idx, tenant_seq)`` — fully
    deterministic, including ties (a burst's ops share one arrival).
    """
    root = DeterministicRng(seed)
    events: List[Event] = []
    for idx, spec in enumerate(specs):
        rng = root.fork(f"tenant-{spec.name}")
        file_cdf = _zipf_cdf(spec.files, spec.zipf_alpha)
        block_cdf = _zipf_cdf(spec.file_bytes // spec.io_bytes, spec.zipf_alpha)
        t = 0
        seq = 0
        while True:
            if spec.arrival == "bursty":
                t += _exp_gap(rng, spec.mean_interarrival_ns * spec.burst_size)
                burst = spec.burst_size
            else:
                t += _exp_gap(rng, spec.mean_interarrival_ns)
                burst = 1
            if t >= duration_ns:
                break
            touched: List[int] = []
            for _ in range(burst):
                op = "read" if rng.random() < spec.read_fraction else "write"
                file_idx = _zipf_pick(rng, file_cdf)
                block = _zipf_pick(rng, block_cdf)
                events.append((t, idx, seq, op, file_idx, block * spec.io_bytes))
                seq += 1
                if op == "write" and spec.fsync_bursts and file_idx not in touched:
                    touched.append(file_idx)
            for file_idx in touched:
                events.append((t + 1, idx, seq, "fsync", file_idx, 0))
                seq += 1
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return events


# ---------------------------------------------------------------------------
# execution
# ---------------------------------------------------------------------------


def run_multi_tenant(
    stack,
    specs: List[TenantSpec],
    duration_ns: int,
    ring_depth: int = 8,
    seed: int = 2026,
    root: str = "/tenants",
    population_tier: Optional[int] = None,
    maintain_every: int = 0,
    durable_population: bool = False,
) -> MultiTenantResult:
    """Drive the open-loop schedule against ``stack``; returns latencies.

    ``ring_depth`` bounds each tenant's async window: 8 is the overlapped
    configuration, 1 the serialized baseline.  Setup (population writes,
    QoS registration) happens before the measured schedule starts.

    ``population_tier`` pins every population file to that tier id for
    the setup writes (the pin is cleared before the measured schedule).
    Policy head-to-head comparisons need it: otherwise each policy places
    the population differently and the measured read path compares
    *population placement* rather than steady-state behaviour.

    ``maintain_every`` (0 = off, the default) plans migrations every N
    events via ``mux.maintain_async()`` and advances in-flight copies one
    cooperative step per event, so migrating policies get to act during
    the measured window — policy duels need it, while the async-vs-depth1
    ablation keeps it off so placement stays frozen across depths.

    ``durable_population`` fsyncs every population file before the
    measured window, so dirty page-cache debt and full device write
    buffers from setup are not billed to the first measured ops.
    """
    mux = stack.mux
    clock = stack.clock
    events = generate_schedule(specs, duration_ns, seed)

    # -- population + QoS setup (unmeasured) ----------------------------
    mux.mkdir(root)
    qos = None
    if any(s.qos_class is not None for s in specs):
        qos = mux.qos if mux.qos is not None else mux.enable_qos()
    handles: List[List] = []
    for spec in specs:
        mux.mkdir(f"{root}/{spec.name}")
        if spec.qos_class is not None:
            qos.register(spec.qos_class)
        tenant_handles = []
        payload = bytes([_PAYLOAD_BYTE]) * spec.file_bytes
        for i in range(spec.files):
            path = f"{root}/{spec.name}/f{i}"
            if population_tier is not None:
                mux.close(mux.create(path))
                mux.set_placement(path, population_tier)
                mux.write_file(path, payload)
                mux.set_placement(path, None)
            else:
                mux.write_file(path, payload)
            handle = mux.open(path)
            if durable_population:
                mux.fsync(handle)
            if spec.qos_class is not None:
                qos.tag(handle, spec.qos_class.name)
            tenant_handles.append(handle)
        handles.append(tenant_handles)

    results = {spec.name: TenantResult(spec.name) for spec in specs}
    rings = [mux.open_ring(depth=ring_depth) for _ in specs]
    #: ring seq -> (intended arrival, op) per tenant
    outstanding: List[Dict[int, Tuple[int, str]]] = [{} for _ in specs]

    def harvest(idx: int, completions) -> None:
        tenant = results[specs[idx].name]
        book = outstanding[idx]
        for c in completions:
            arrival, op = book.pop(c.seq)
            if c.error is not None:
                tenant.errors += 1
                continue
            latency = c.completed_ns - arrival
            (tenant.reads if op == "read" else tenant.writes).record(latency)

    # -- measured open-loop schedule ------------------------------------
    migrations = 0
    start_ns = clock.now_ns
    for index, (arrival, idx, _seq, op, file_idx, offset) in enumerate(events):
        clock.advance_to(start_ns + arrival)
        harvest(idx, rings[idx].poll())
        if maintain_every:
            if index and index % maintain_every == 0:
                migrations += mux.maintain_async()
            # the background copier runs continuously: advance in-flight
            # migrations every event, otherwise one multi-chunk copy
            # spans many bursts and OCC-aborts on each (see tracereplay)
            mux.engine.tick()
        spec = specs[idx]
        handle = handles[idx][file_idx]
        if op == "read":
            sub = rings[idx].submit_read(handle, offset, spec.io_bytes)
        elif op == "write":
            payload = bytes([_PAYLOAD_BYTE]) * spec.io_bytes
            sub = rings[idx].submit_write(handle, offset, payload)
        else:
            sub = rings[idx].submit_fsync(handle)
        outstanding[idx][sub.seq] = (start_ns + arrival, op)
        results[spec.name].submitted += 1

    for idx, ring in enumerate(rings):
        harvest(idx, ring.drain())
        ring.close()
    if maintain_every:
        mux.engine.drain()
    for tenant_handles in handles:
        for handle in tenant_handles:
            mux.close(handle)

    return MultiTenantResult(
        tenants=results,
        offered_ops=len(events),
        duration_ns=duration_ns,
        ring_depth=ring_depth,
        migrations_submitted=migrations,
    )


# ---------------------------------------------------------------------------
# fairness: per-tenant slowdown versus an isolated run
# ---------------------------------------------------------------------------


def fairness_slowdowns(
    stack_factory,
    specs: List[TenantSpec],
    duration_ns: int,
    ring_depth: int = 8,
    seed: int = 2026,
    population_tier_name: Optional[str] = None,
    maintain_every: int = 0,
    durable_population: bool = False,
) -> Tuple[MultiTenantResult, Dict[str, Dict[str, int]]]:
    """Run the shared schedule, then each tenant alone; report slowdowns.

    :func:`generate_schedule` forks the rng per tenant *name*, so a
    single-tenant run replays exactly the arrivals, ops and offsets that
    tenant would have issued in the shared run — the isolated run is a
    true counterfactual, not a re-roll.  The per-tenant slowdown (shared
    tail latency over isolated tail latency) is the classic multi-tenant
    fairness metric: 1.0x means perfect isolation, and the *spread*
    between tenants shows who pays for whom.

    ``stack_factory`` must build identically-configured fresh stacks (one
    for the shared run, one per tenant), so the only variable is which
    tenants share the device channels.  Returns the shared run's result
    plus ``{tenant: {"shared_p99_ns", "isolated_p99_ns", ...}}`` with
    integer-ns read latencies (fingerprint-safe).
    """

    def _run(run_specs: List[TenantSpec]) -> MultiTenantResult:
        stack = stack_factory()
        tier = (
            stack.tier_ids[population_tier_name]
            if population_tier_name is not None
            else None
        )
        return run_multi_tenant(
            stack,
            run_specs,
            duration_ns,
            ring_depth=ring_depth,
            seed=seed,
            population_tier=tier,
            maintain_every=maintain_every,
            durable_population=durable_population,
        )

    shared = _run(specs)
    report: Dict[str, Dict[str, int]] = {}
    for spec in specs:
        isolated = _run([spec])
        shared_reads = shared.tenants[spec.name].reads
        isolated_reads = isolated.tenants[spec.name].reads
        report[spec.name] = {
            "shared_p50_ns": round(shared_reads.percentile(0.5)),
            "shared_p99_ns": round(shared_reads.percentile(0.99)),
            "isolated_p50_ns": round(isolated_reads.percentile(0.5)),
            "isolated_p99_ns": round(isolated_reads.percentile(0.99)),
        }
    return shared, report


def slowdown_x(entry: Dict[str, int], pct: str = "p99") -> float:
    """Shared/isolated ratio for one :func:`fairness_slowdowns` entry."""
    isolated = entry[f"isolated_{pct}_ns"]
    return entry[f"shared_{pct}_ns"] / isolated if isolated else 0.0
