"""Filebench-style macro workloads.

Three classic personalities, implemented against the VFS-facing
:class:`FileSystem` interface so the same workload runs unchanged on a
native file system, on Strata, or on Mux:

* **fileserver** — create/write/append/read/stat/delete over a directory
  tree of medium files (metadata + data mix);
* **webserver**  — whole-file reads of many small files with a skewed
  (hot-set) popularity distribution, plus a shared append-only log;
* **varmail**    — mail-spool pattern: create, append, fsync, read,
  delete in tight cycles (fsync-heavy).

Each run returns simulated ops/s and per-op latency, so the examples and
benches can compare storage stacks under identical request streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.vfs.interface import FileSystem, OpenFlags

KIB = 1024
MIB = 1024 * KIB


@dataclass
class MacroResult:
    name: str
    operations: int
    elapsed_s: float
    op_mix: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def mean_latency_us(self) -> float:
        if not self.operations:
            return 0.0
        return self.elapsed_s * 1e6 / self.operations

    def summary(self) -> str:
        return (
            f"{self.name}: {self.operations} ops in {self.elapsed_s * 1e3:.1f} ms "
            f"simulated -> {self.ops_per_sec:,.0f} ops/s "
            f"({self.mean_latency_us:.1f} us/op)"
        )


def _bump(mix: Dict[str, int], op: str) -> None:
    mix[op] = mix.get(op, 0) + 1


def fileserver(
    fs: FileSystem,
    clock: SimClock,
    files: int = 40,
    file_size: int = 256 * KIB,
    operations: int = 600,
    seed: int = 31,
) -> MacroResult:
    """Create/write/append/read/stat/delete mix over a directory tree."""
    rng = DeterministicRng(seed)
    if not fs.exists("/srv"):
        fs.mkdir("/srv")
    live: List[str] = []
    next_id = 0
    chunk = bytes(16 * KIB)
    mix: Dict[str, int] = {}

    def create_one() -> None:
        nonlocal next_id
        path = f"/srv/file{seed}_{next_id:05d}"
        next_id += 1
        handle = fs.create(path)
        written = 0
        while written < file_size:
            fs.write(handle, written, chunk)
            written += len(chunk)
        fs.close(handle)
        live.append(path)

    for _ in range(files):
        create_one()

    start_ns = clock.now_ns
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.25 or not live:
            create_one()
            _bump(mix, "create+write")
        elif roll < 0.50:
            path = rng.choice(live)
            handle = fs.open(path, OpenFlags.RDWR | OpenFlags.APPEND)
            fs.write(handle, 0, chunk)
            fs.close(handle)
            _bump(mix, "append")
        elif roll < 0.80:
            path = rng.choice(live)
            handle = fs.open(path, OpenFlags.RDONLY)
            size = fs.getattr(path).size
            fs.read(handle, 0, min(size, 64 * KIB))
            fs.close(handle)
            _bump(mix, "read")
        elif roll < 0.92:
            fs.getattr(rng.choice(live))
            _bump(mix, "stat")
        else:
            victim = live.pop(rng.randint(0, len(live) - 1))
            fs.unlink(victim)
            _bump(mix, "delete")
    elapsed = (clock.now_ns - start_ns) / 1e9
    return MacroResult("fileserver", operations, elapsed, mix)


def webserver(
    fs: FileSystem,
    clock: SimClock,
    files: int = 100,
    file_size: int = 32 * KIB,
    operations: int = 1000,
    hot_fraction: float = 0.1,
    seed: int = 37,
) -> MacroResult:
    """Skewed whole-file reads of small files + a shared access log."""
    rng = DeterministicRng(seed)
    if not fs.exists("/www"):
        fs.mkdir("/www")
    paths = []
    for i in range(files):
        path = f"/www/page{i:05d}.html"
        fs.write_file(path, bytes([i % 251]) * file_size)
        paths.append(path)
    log = fs.open("/www/access.log", OpenFlags.RDWR | OpenFlags.CREAT)
    log_offset = fs.getattr("/www/access.log").size
    hot = max(1, int(files * hot_fraction))
    mix: Dict[str, int] = {}

    start_ns = clock.now_ns
    for _ in range(operations):
        # 90% of requests hit the hot 10% of pages (Zipf-ish)
        if rng.random() < 0.9:
            path = paths[rng.randint(0, hot - 1)]
        else:
            path = paths[rng.randint(0, files - 1)]
        handle = fs.open(path, OpenFlags.RDONLY)
        fs.read(handle, 0, file_size)
        fs.close(handle)
        _bump(mix, "page-read")
        entry = b"GET " + path.encode() + b" 200\n"
        fs.write(log, log_offset, entry)
        log_offset += len(entry)
        _bump(mix, "log-append")
    elapsed = (clock.now_ns - start_ns) / 1e9
    fs.close(log)
    return MacroResult("webserver", operations * 2, elapsed, mix)


def varmail(
    fs: FileSystem,
    clock: SimClock,
    operations: int = 300,
    message_size: int = 8 * KIB,
    seed: int = 41,
) -> MacroResult:
    """Mail-spool cycles: create, append, fsync, read, delete."""
    rng = DeterministicRng(seed)
    if not fs.exists("/mail"):
        fs.mkdir("/mail")
    live: List[str] = []
    next_id = 0
    mix: Dict[str, int] = {}
    message = bytes(message_size)

    start_ns = clock.now_ns
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.4 or not live:
            path = f"/mail/msg{seed}_{next_id:06d}"
            next_id += 1
            handle = fs.create(path)
            fs.write(handle, 0, message)
            fs.fsync(handle)  # mail servers fsync before acking
            fs.close(handle)
            live.append(path)
            _bump(mix, "deliver")
        elif roll < 0.7:
            path = rng.choice(live)
            handle = fs.open(path, OpenFlags.RDWR | OpenFlags.APPEND)
            fs.write(handle, 0, b"X-Flag: seen\n")
            fs.fsync(handle)
            fs.close(handle)
            _bump(mix, "flag+fsync")
        elif roll < 0.9:
            path = rng.choice(live)
            handle = fs.open(path, OpenFlags.RDONLY)
            fs.read(handle, 0, message_size)
            fs.close(handle)
            _bump(mix, "read")
        else:
            victim = live.pop(rng.randint(0, len(live) - 1))
            fs.unlink(victim)
            _bump(mix, "expunge")
    elapsed = (clock.now_ns - start_ns) / 1e9
    return MacroResult("varmail", operations, elapsed, mix)


ALL_WORKLOADS = {
    "fileserver": fileserver,
    "webserver": webserver,
    "varmail": varmail,
}
