"""CLI entry point: ``python -m repro.bench`` reruns every paper experiment
and prints the paper-vs-measured tables recorded in EXPERIMENTS.md.

Subcommands: ``wallclock`` (host-CPU trajectory harness + ``--smoke`` CI
drift guard), ``profile`` (cProfile hotspot report for any registered
wall-clock workload), ``trace`` (record a mixed workload under fault
injection, print per-migration retry/backoff telemetry, replay against a
healthy stack) and ``crashexplore`` (enumerate every sync point of the
canonical workload, crash at each one, verify recovery; ``--smoke``
explores a strided subset for CI)."""

from __future__ import annotations

import sys

from repro.bench.experiments import run_all


def main() -> int:
    argv = sys.argv[1:]
    if argv and argv[0] == "wallclock":
        from repro.bench.wallclock import main as wallclock_main

        return wallclock_main(argv[1:])
    if argv and argv[0] == "profile":
        from repro.bench.profile import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.bench.trace import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "crashexplore":
        from repro.tools.crashexplore import main as crashexplore_main

        return crashexplore_main(argv[1:])
    fast = "--fast" in argv
    print(run_all(fast=fast))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
