"""I/O trace recording and replay.

The practical answer to §4's "Configuring Mux": capture what an
application actually does (a trace), then replay it against candidate
configurations and measure.  :class:`TraceRecorder` is a transparent
:class:`FileSystem` proxy that logs every operation; :func:`replay` runs a
recorded trace against any other file system, preserving the exact
operation sequence, offsets and sizes (data payloads are regenerated —
placement decisions depend on shape, not bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags
from repro.vfs.stat import FsStats, Stat

#: (op, handle_id, path, a, b)  — a/b are op-specific ints
TraceEntry = Tuple[str, int, str, int, int]


@dataclass
class Trace:
    """A recorded operation sequence."""

    entries: List[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def op_mix(self) -> Dict[str, int]:
        mix: Dict[str, int] = {}
        for op, *_ in self.entries:
            mix[op] = mix.get(op, 0) + 1
        return mix

    @property
    def bytes_written(self) -> int:
        return sum(b for op, _, _, _, b in self.entries if op == "write")

    @property
    def bytes_read(self) -> int:
        return sum(b for op, _, _, _, b in self.entries if op == "read")


class TraceRecorder(FileSystem):
    """Transparent proxy: forwards everything, records the op stream."""

    def __init__(self, inner: FileSystem) -> None:
        self.inner = inner
        self.fs_name = f"traced({inner.fs_name})"
        self.block_size = getattr(inner, "block_size", 4096)
        self.trace = Trace()
        self._next_handle_id = 1
        self._handle_ids: Dict[int, int] = {}  # id(handle) -> trace handle id

    def _note(self, op: str, handle_id: int = 0, path: str = "", a: int = 0, b: int = 0) -> None:
        self.trace.entries.append((op, handle_id, path, a, b))

    def _register(self, handle: FileHandle) -> int:
        handle_id = self._next_handle_id
        self._next_handle_id += 1
        self._handle_ids[id(handle)] = handle_id
        return handle_id

    def _id_of(self, handle: FileHandle) -> int:
        return self._handle_ids.get(id(handle), 0)

    # -- namespace ---------------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        handle = self.inner.create(path, mode)
        self._note("create", self._register(handle), path, mode)
        return handle

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        handle = self.inner.open(path, flags)
        self._note("open", self._register(handle), path, flags)
        return handle

    def close(self, handle: FileHandle) -> None:
        self._note("close", self._id_of(handle))
        self.inner.close(handle)

    def unlink(self, path: str) -> None:
        self._note("unlink", 0, path)
        self.inner.unlink(path)

    def rename(self, old_path: str, new_path: str) -> None:
        # two path fields don't fit the tuple; encode via two entries
        self._note("rename_from", 0, old_path)
        self._note("rename_to", 0, new_path)
        self.inner.rename(old_path, new_path)

    def link(self, existing_path: str, new_path: str) -> None:
        self._note("link_from", 0, existing_path)
        self._note("link_to", 0, new_path)
        self.inner.link(existing_path, new_path)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._note("mkdir", 0, path, mode)
        self.inner.mkdir(path, mode)

    def rmdir(self, path: str) -> None:
        self._note("rmdir", 0, path)
        self.inner.rmdir(path)

    def readdir(self, path: str) -> List[str]:
        self._note("readdir", 0, path)
        return self.inner.readdir(path)

    # -- data ---------------------------------------------------------------

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        self._note("read", self._id_of(handle), "", offset, length)
        return self.inner.read(handle, offset, length)

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        self._note("write", self._id_of(handle), "", offset, len(data))
        return self.inner.write(handle, offset, data)

    def truncate(self, handle: FileHandle, size: int) -> None:
        self._note("truncate", self._id_of(handle), "", size)
        self.inner.truncate(handle, size)

    def fsync(self, handle: FileHandle) -> None:
        self._note("fsync", self._id_of(handle))
        self.inner.fsync(handle)

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        self._note("punch_hole", self._id_of(handle), "", offset, length)
        self.inner.punch_hole(handle, offset, length)

    # -- metadata -------------------------------------------------------------

    def getattr(self, path: str) -> Stat:
        self._note("getattr", 0, path)
        return self.inner.getattr(path)

    def setattr(self, path: str, **attrs: object) -> Stat:
        self._note("setattr", 0, path)
        return self.inner.setattr(path, **attrs)

    def statfs(self) -> FsStats:
        return self.inner.statfs()

    def sync(self) -> None:
        self.inner.sync()



@dataclass
class ReplayResult:
    operations: int
    elapsed_s: float
    #: operations that raised during replay (traces legitimately contain
    #: failing probes, e.g. the getattr under an exists() check)
    failed_operations: int = 0

    @property
    def ops_per_sec(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s else 0.0


def replay(trace: Trace, fs: FileSystem, clock: SimClock) -> ReplayResult:
    """Re-execute a trace against ``fs``, measuring simulated time.

    Operations that raise :class:`~repro.errors.FsError` are counted in
    ``failed_operations`` and skipped — a faithful trace contains failing
    probes too (the getattr under an ``exists()`` check, races with
    deletions), and the original application survived them.
    """
    from repro.errors import FsError

    handles: Dict[int, FileHandle] = {}
    pending_rename: Optional[str] = None
    pending_link: Optional[str] = None
    failed = 0
    start_ns = clock.now_ns
    for op, handle_id, path, a, b in trace.entries:
        try:
            if op == "create":
                handles[handle_id] = fs.create(path, a or 0o644)
            elif op == "open":
                handles[handle_id] = fs.open(path, a)
            elif op == "close":
                handle = handles.pop(handle_id, None)
                if handle is not None:
                    fs.close(handle)
            elif op == "read":
                fs.read(handles[handle_id], a, b)
            elif op == "write":
                fs.write(handles[handle_id], a, bytes(b))
            elif op == "truncate":
                fs.truncate(handles[handle_id], a)
            elif op == "fsync":
                fs.fsync(handles[handle_id])
            elif op == "punch_hole":
                fs.punch_hole(handles[handle_id], a, b)
            elif op == "unlink":
                fs.unlink(path)
            elif op == "mkdir":
                fs.mkdir(path, a or 0o755)
            elif op == "rmdir":
                fs.rmdir(path)
            elif op == "readdir":
                fs.readdir(path)
            elif op == "getattr":
                fs.getattr(path)
            elif op == "setattr":
                fs.setattr(path, mtime=clock.now())
            elif op == "rename_from":
                pending_rename = path
            elif op == "rename_to":
                assert pending_rename is not None, "orphan rename_to in trace"
                fs.rename(pending_rename, path)
                pending_rename = None
            elif op == "link_from":
                pending_link = path
            elif op == "link_to":
                assert pending_link is not None, "orphan link_to in trace"
                fs.link(pending_link, path)
                pending_link = None
            else:  # pragma: no cover - future-proofing
                raise ValueError(f"unknown trace op {op!r}")
        except FsError:
            failed += 1
    elapsed = (clock.now_ns - start_ns) / 1e9
    return ReplayResult(len(trace), elapsed, failed)


# ---------------------------------------------------------------------------
# CLI: ``python -m repro.bench trace``
# ---------------------------------------------------------------------------
#
# Records a seeded mixed workload against a (optionally fault-injected)
# Mux stack, drives migrations through ``migrate_now``, and prints the
# retry/backoff telemetry each migration accumulated — then replays the
# same trace against a healthy stack so the cost of running degraded is a
# number, not an anecdote.


def _record_mixed(
    ops: int,
    seed: int,
    faulty: bool,
    write_back: bool = False,
    readahead_bg: bool = False,
):
    from repro.bench.workloads import metadata_churn, metadata_tree
    from repro.core.policy import MigrationOrder
    from repro.devices.faults import FaultConfig
    from repro.stack import build_stack

    faults = None
    if faulty:
        faults = {
            "ssd": FaultConfig(
                read_error_p=0.05, write_error_p=0.25, transient_fraction=1.0
            )
        }
    stack = build_stack(
        faults=faults,
        fault_seed=seed,
        cache_write_back=write_back,
        readahead_background=readahead_bg,
    )
    recorder = TraceRecorder(stack.mux)
    recorder.mkdir("/t")
    blob = b"\xa5" * 65536
    handles = []
    for i in range(6):
        handle = recorder.create(f"/t/f{i}")
        recorder.write(handle, 0, blob)
        handles.append(handle)
    live = metadata_tree(recorder, files=40)
    metadata_churn(recorder, stack.clock, files=40, operations=ops, live=live)
    blocks = len(blob) // stack.mux.block_size
    pm, ssd = stack.tier_ids["pm"], stack.tier_ids["ssd"]
    migrations = []
    for i, handle in enumerate(handles):
        result = stack.mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, blocks, pm, ssd, reason="trace")
        )
        migrations.append((f"/t/f{i}", result))
    for handle in handles:
        # read the migrated blocks back (fills the SCM cache), then
        # overwrite a slice — with --write-back those writes are absorbed
        # in place and the close destages them in coalesced runs
        recorder.read(handle, 0, len(blob))
        recorder.write(handle, 0, b"\x5a" * 8192)
        recorder.close(handle)
    if readahead_bg:
        # sequential single-block scan of an SSD-resident file: the demand
        # block stays on foreground time while the speculative tail
        # prefetches on background channels (readahead_bg_blocks)
        scan = recorder.create("/t/scan")
        scan_bytes = 4 * len(blob)
        recorder.write(scan, 0, b"\xc3" * scan_bytes)
        scan_blocks = scan_bytes // stack.mux.block_size
        result = stack.mux.engine.migrate_now(
            MigrationOrder(scan.ino, 0, scan_blocks, pm, ssd, reason="trace")
        )
        migrations.append(("/t/scan", result))
        for fs in stack.filesystems.values():
            cache = getattr(fs, "page_cache", None)
            if cache is not None:
                cache.drop_clean()
        bs = stack.mux.block_size
        for block in range(scan_blocks):
            recorder.read(scan, block * bs, bs)
        recorder.close(scan)
    return stack, recorder.trace, migrations


def _cluster_report(ops: int, seed: int) -> int:
    """``trace --cluster``: per-shard queue/backlog/ops + rebalance counters."""
    from repro.bench.multi_tenant import TenantSpec
    from repro.cluster.bench import run_cluster_load
    from repro.cluster.cluster import build_cluster

    cluster = build_cluster(shards=2).mux
    specs = [
        TenantSpec(
            name=f"t{i}",
            mean_interarrival_ns=30_000,
            files=4,
            file_bytes=256 * 1024,
            read_fraction=0.7,
        )
        for i in range(4)
    ]
    duration = max(1_000_000, ops * 30_000)
    result, makespan_ns = run_cluster_load(
        cluster, specs, duration_ns=duration, ring_depth=8, seed=seed
    )
    print(
        f"cluster: shards={len(cluster.shards)} "
        f"ops={result.completed_ops} makespan={makespan_ns / 1e9:.6f} sim-s"
    )
    for row in cluster.shard_report():
        print(
            f"  shard s{row['shard']}: ops={row['ops']} queued={row['queued']} "
            f"backlog={row['backlog']} load={row['load']} "
            f"wire_rpcs={row['wire_rpcs']} wire_bytes={row['wire_bytes']}"
        )
    moved = cluster.rebalance(max_moves=2, imbalance=1.0)
    counters = cluster.rebalance_counters()
    fields = " ".join(f"{k}={v}" for k, v in counters.items())
    print(f"rebalance: moves={moved['moves']} {fields}")
    return 0


def _drr_report(seed: int) -> int:
    """``trace --drr``: deficit round-robin per-stream counters."""
    from repro.core.qos import IoClass
    from repro.sim.rng import DeterministicRng
    from repro.stack import build_stack

    stack = build_stack()
    qos = stack.mux.enable_qos()
    qos.enable_fair_share(quantum_bytes=64 * 1024, rate_bytes_per_sec=1e9)
    qos.register(IoClass("batch"))
    qos.register(IoClass("latency", quota_bytes_per_sec=64 * 1024 * 1024))
    handles = {}
    for name in ("batch", "latency"):
        handle = stack.mux.create(f"/{name}")
        qos.tag(handle, name)
        handles[name] = handle
    rng = DeterministicRng(seed)
    big, small = b"\xa5" * (256 * 1024), b"\x5a" * 8192
    for i in range(32):
        stack.mux.write(handles["batch"], i * len(big), big)
        if rng.random() < 0.5:
            stack.mux.write(handles["latency"], i * len(small), small)
    for handle in handles.values():
        stack.mux.close(handle)
    print("drr streams:")
    for name, counters in qos.drr_snapshot().items():
        fields = " ".join(f"{k}={v}" for k, v in counters.items())
        print(f"  {name}: {fields}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import sys

    from repro.stack import build_stack

    argv = list(sys.argv[1:] if argv is None else argv)
    faulty = "--no-faults" not in argv
    write_back = "--write-back" in argv
    readahead_bg = "--readahead-bg" in argv
    show_pressure = "--pressure" in argv
    ops = 600
    if "--ops" in argv:
        ops = int(argv[argv.index("--ops") + 1])
    seed = 2025
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    if "--cluster" in argv:
        return _cluster_report(ops, seed)
    if "--drr" in argv:
        return _drr_report(seed)

    stack, trace, migrations = _record_mixed(
        ops, seed, faulty, write_back, readahead_bg
    )
    mix = ", ".join(f"{op}={n}" for op, n in sorted(trace.op_mix().items()))
    print(f"trace: recorded {len(trace)} ops ({mix})")
    print(f"trace: {trace.bytes_written} bytes written, {trace.bytes_read} read")
    if stack.mux.cache is not None:
        counters = stack.mux.cache.cache_counters()
        print(
            "cache: "
            f"hit={counters.get('hit', 0)} miss={counters.get('miss', 0)} "
            f"evict={counters.get('evict', 0)} "
            f"write_hit={counters.get('write_hit', 0)} "
            f"destage_runs={counters.get('destage_runs', 0)} "
            f"destaged_blocks={counters.get('destaged_blocks', 0)} "
            f"dirty_blocks={counters.get('dirty_blocks', 0)} "
            f"destage_lost={counters.get('destage_lost', 0)}"
        )

    label = "faulty ssd" if faulty else "no faults"
    print(f"migrations ({label}):")
    for path, result in migrations:
        print(
            f"  {path}: moved={result.moved_blocks} retries={result.retries} "
            f"backoff_ns={result.backoff_ns} gave_up={result.gave_up}"
        )
    engine = stack.mux.engine.stats
    print(
        f"engine totals: migrations={engine.get('migrations')} "
        f"retries={engine.get('retries')} backoff_ns={engine.get('backoff_ns')} "
        f"gave_up={engine.get('gave_up')}"
    )
    mirrors = stack.mux.mirrors.stats
    print(
        "fairness: "
        f"wb_deadline_destages={stack.mux.stats.get('wb_deadline_destages')} "
        f"mirror_defer_ticks={mirrors.get('defer_ticks')} "
        f"mirror_deadline_promotions={mirrors.get('deadline_promotions')} "
        f"mirror_blocks_synced={mirrors.get('blocks_synced')}"
    )

    sched = stack.mux.scheduler.snapshot()
    tiers = ", ".join(
        f"t{tid}:{n}" for tid, n in sched["tier_dispatches"].items()
    )
    print(
        f"scheduler: dispatches={sched['dispatches']} merges={sched['merges']} "
        f"batches={sched['batches']} per-tier=[{tiers}]"
    )
    now_ns = stack.clock.now_ns
    for name, device in sorted(stack.devices.items()):
        tl = device.timeline.snapshot()
        print(
            f"device {name}: channels={tl['channels']} fg_ops={tl['fg_ops']} "
            f"bg_ops={tl['bg_ops']} max_queued={tl['max_queued']} "
            f"wait_ns={tl['wait_ns']} "
            f"util={device.timeline.utilization(now_ns):.4f}"
        )
    ra_blocks = {
        name: fs.readahead_bg_blocks
        for name, fs in sorted(stack.filesystems.items())
        if getattr(fs, "readahead_bg_blocks", 0)
    }
    if readahead_bg or ra_blocks:
        per_fs = ", ".join(f"{n}:{v}" for n, v in ra_blocks.items()) or "none"
        print(
            f"readahead: bg_blocks={sum(ra_blocks.values())} per-fs=[{per_fs}]"
        )
    if show_pressure:
        monitor = stack.mux.pressure
        monitor.sample(now_ns, force=True)
        names = {tid: name for name, tid in stack.tier_ids.items()}
        print("pressure:")
        for tier_id, gauges in monitor.snapshot().items():
            fields = " ".join(f"{k}={v}" for k, v in gauges.items())
            print(f"  tier {names.get(tier_id, tier_id)}: {fields}")

    healthy = build_stack()
    result = replay(trace, healthy.mux, healthy.clock)
    print(
        f"replay on healthy stack: {result.operations} ops in "
        f"{result.elapsed_s:.6f} sim-s ({result.failed_operations} failed)"
    )
    return 0
