"""Building blocks shared by the native file systems."""

from repro.fscommon.allocator import AllocationGroups, BitmapAllocator
from repro.fscommon.basefs import NativeFileSystem
from repro.fscommon.extents import Extent, ExtentTree
from repro.fscommon.inode import Inode, InodeTable
from repro.fscommon.journal import Journal, JournalFull, Transaction
from repro.fscommon.journaledfs import JournaledFileSystem
from repro.fscommon.metastore import MetaStore
from repro.fscommon.pagecache import PageCache

__all__ = [
    "AllocationGroups",
    "BitmapAllocator",
    "NativeFileSystem",
    "Extent",
    "ExtentTree",
    "Inode",
    "InodeTable",
    "Journal",
    "JournalFull",
    "Transaction",
    "JournaledFileSystem",
    "MetaStore",
    "PageCache",
]
