"""Extent tree: sorted, non-overlapping runs mapping file blocks to targets.

This one structure backs both uses in the reproduction:

* native file systems (XFS/Ext4 style) map file-block ranges to *device*
  block ranges — the target value advances along the run
  (``value_is_offset=True``);
* Mux's Block Lookup Table (§2.2) maps file-block ranges to a *tier id* —
  the value is constant along the run (``value_is_offset=False``).

The tree is maintained sorted by starting file block with strictly
non-overlapping extents; adjacent compatible extents are coalesced.  Python
lists + ``bisect`` give O(log n) lookup and O(n) worst-case insert, which is
the right trade-off at simulation scale (the paper's point is the *design*,
not the constant factor of the kernel implementation).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


@dataclass
class Extent:
    """A run of ``count`` file blocks starting at ``start`` mapped to ``value``."""

    start: int
    count: int
    value: int

    @property
    def end(self) -> int:
        """One past the last file block of the run."""
        return self.start + self.count

    def value_at(self, block: int, value_is_offset: bool) -> int:
        """Mapped value for one file block inside this extent."""
        if not self.start <= block < self.end:
            raise ValueError(f"block {block} outside extent [{self.start},{self.end})")
        if value_is_offset:
            return self.value + (block - self.start)
        return self.value


class ExtentTree:
    """Sorted non-overlapping extent map with coalescing."""

    def __init__(self, value_is_offset: bool = True) -> None:
        self.value_is_offset = value_is_offset
        self._starts: List[int] = []
        self._extents: List[Extent] = []

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[Extent]:
        return iter(self._extents)

    @property
    def mapped_blocks(self) -> int:
        """Total number of mapped file blocks."""
        return sum(e.count for e in self._extents)

    def is_empty(self) -> bool:
        return not self._extents

    def end_block(self) -> int:
        """One past the highest mapped block (0 when empty)."""
        if not self._extents:
            return 0
        return self._extents[-1].end

    def _index_for(self, block: int) -> int:
        """Index of the extent containing ``block``, or -1."""
        i = bisect_right(self._starts, block) - 1
        if i >= 0 and self._extents[i].start <= block < self._extents[i].end:
            return i
        return -1

    def lookup(self, block: int) -> Optional[int]:
        """Mapped value of one file block, or None if it is a hole."""
        i = self._index_for(block)
        if i < 0:
            return None
        return self._extents[i].value_at(block, self.value_is_offset)

    def lookup_extent(self, block: int) -> Optional[Extent]:
        """The extent containing ``block``, or None."""
        i = self._index_for(block)
        return self._extents[i] if i >= 0 else None

    def runs(self, start: int, count: int) -> Iterator[Tuple[int, int, Optional[int]]]:
        """Decompose [start, start+count) into (block, run_len, value) runs.

        Holes are yielded with ``value=None``.  Mapped runs report the value
        of their first block; with ``value_is_offset`` the caller advances
        the value along the run itself.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        pos = start
        end = start + count
        i = bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        while pos < end:
            # advance to the extent that could contain pos
            while i < len(self._extents) and self._extents[i].end <= pos:
                i += 1
            if i >= len(self._extents) or self._extents[i].start >= end:
                yield pos, end - pos, None
                return
            ext = self._extents[i]
            if ext.start > pos:
                yield pos, ext.start - pos, None
                pos = ext.start
            take = min(end, ext.end) - pos
            yield pos, take, ext.value_at(pos, self.value_is_offset)
            pos += take

    # -- mutation ----------------------------------------------------------------

    def map_range(self, start: int, count: int, value: int) -> None:
        """Map [start, start+count) to ``value``, replacing prior mappings."""
        if count <= 0:
            raise ValueError("count must be positive")
        self.unmap_range(start, count)
        new = Extent(start, count, value)
        i = bisect_right(self._starts, start)
        self._extents.insert(i, new)
        self._starts.insert(i, start)
        self._coalesce_around(i)

    def unmap_range(self, start: int, count: int) -> int:
        """Remove mappings over [start, start+count); returns blocks removed."""
        if count <= 0:
            return 0
        end = start + count
        removed = 0
        i = bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        while i < len(self._extents):
            ext = self._extents[i]
            if ext.start >= end:
                break
            if ext.end <= start:
                i += 1
                continue
            # overlap exists; split as needed
            left = None
            right = None
            if ext.start < start:
                left = Extent(ext.start, start - ext.start, ext.value)
            if ext.end > end:
                off = end - ext.start
                rv = ext.value + off if self.value_is_offset else ext.value
                right = Extent(end, ext.end - end, rv)
            removed += min(ext.end, end) - max(ext.start, start)
            del self._extents[i]
            del self._starts[i]
            for piece in (left, right):
                if piece is not None:
                    self._extents.insert(i, piece)
                    self._starts.insert(i, piece.start)
                    i += 1
        return removed

    def _coalesce_around(self, i: int) -> None:
        """Merge extent at index ``i`` with compatible neighbours."""

        def compatible(a: Extent, b: Extent) -> bool:
            if a.end != b.start:
                return False
            if self.value_is_offset:
                return a.value + a.count == b.value
            return a.value == b.value

        # merge with predecessor
        if i > 0 and compatible(self._extents[i - 1], self._extents[i]):
            prev = self._extents[i - 1]
            cur = self._extents[i]
            prev.count += cur.count
            del self._extents[i]
            del self._starts[i]
            i -= 1
        # merge with successor
        if i + 1 < len(self._extents) and compatible(
            self._extents[i], self._extents[i + 1]
        ):
            cur = self._extents[i]
            nxt = self._extents[i + 1]
            cur.count += nxt.count
            del self._extents[i + 1]
            del self._starts[i + 1]

    def clear(self) -> None:
        self._starts.clear()
        self._extents.clear()

    def copy(self) -> "ExtentTree":
        clone = ExtentTree(self.value_is_offset)
        clone._starts = list(self._starts)
        clone._extents = [Extent(e.start, e.count, e.value) for e in self._extents]
        return clone

    # -- invariants (used by property tests) -----------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the tree's structural invariants fail."""
        assert self._starts == [e.start for e in self._extents]
        for ext in self._extents:
            assert ext.count > 0, f"empty extent {ext}"
        for a, b in zip(self._extents, self._extents[1:]):
            assert a.end <= b.start, f"overlap between {a} and {b}"
            if self.value_is_offset:
                assert not (
                    a.end == b.start and a.value + a.count == b.value
                ), f"uncoalesced neighbours {a}, {b}"
            else:
                assert not (
                    a.end == b.start and a.value == b.value
                ), f"uncoalesced neighbours {a}, {b}"
