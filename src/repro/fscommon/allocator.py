"""Bitmap block allocator with extent (contiguous-run) allocation.

Used by all three native file systems.  XFS builds several of these — one
per allocation group — to model its parallel allocators; Ext4 uses one per
block group; NOVA uses a single allocator over its data region.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DeviceError, NoSpace


class BitmapAllocator:
    """Allocates device blocks out of [base, base+count) using a bitmap."""

    def __init__(self, base: int, count: int) -> None:
        if count <= 0:
            raise ValueError("allocator needs a positive block count")
        self.base = base
        self.count = count
        self._bitmap = bytearray(count)  # 0 = free, 1 = allocated
        self._free = count
        self._cursor = 0  # next-fit scan position

    # -- queries -----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self._free

    @property
    def used_blocks(self) -> int:
        return self.count - self._free

    def is_allocated(self, block: int) -> bool:
        return bool(self._bitmap[self._index(block)])

    def _index(self, block: int) -> int:
        idx = block - self.base
        if not 0 <= idx < self.count:
            raise DeviceError(f"block {block} outside allocator range")
        return idx

    # -- allocation ----------------------------------------------------------

    def alloc_run(self, want: int, hint: Optional[int] = None) -> Tuple[int, int]:
        """Allocate up to ``want`` contiguous blocks; returns (start, got).

        Uses next-fit from an optional ``hint`` (or the rolling cursor) and
        returns the longest contiguous run available at the chosen spot, up
        to ``want``.  Raises :class:`NoSpace` when nothing is free.
        """
        if want <= 0:
            raise ValueError("want must be positive")
        if self._free == 0:
            raise NoSpace(f"allocator [{self.base},{self.base + self.count}) full")
        # a hint is advisory: "place near here".  Hints just past the end
        # (e.g. next-block hints derived from the last device block) are
        # simply ignored rather than rejected.
        if hint is not None and not self.base <= hint < self.base + self.count:
            hint = None
        start_idx = self._cursor if hint is None else self._index(hint)
        best: Optional[Tuple[int, int]] = None
        idx = start_idx
        scanned = 0
        while scanned < self.count:
            if not self._bitmap[idx]:
                run_len = self._run_length(idx, want)
                if run_len >= want:
                    best = (idx, want)
                    break
                if best is None or run_len > best[1]:
                    best = (idx, run_len)
                idx = (idx + run_len) % self.count
                scanned += run_len
            else:
                idx = (idx + 1) % self.count
                scanned += 1
        if best is None:
            raise NoSpace("no free run found")
        run_start, run_len = best
        for i in range(run_start, run_start + run_len):
            self._bitmap[i] = 1
        self._free -= run_len
        self._cursor = (run_start + run_len) % self.count
        return self.base + run_start, run_len

    def _run_length(self, idx: int, cap: int) -> int:
        """Length of the free run starting at bitmap index ``idx`` (<= cap)."""
        n = 0
        while idx + n < self.count and n < cap and not self._bitmap[idx + n]:
            n += 1
        return n

    def alloc_extent(self, count: int, hint: Optional[int] = None) -> List[Tuple[int, int]]:
        """Allocate exactly ``count`` blocks as a list of (start, len) runs.

        Prefers one contiguous run; falls back to multiple runs under
        fragmentation.  Raises :class:`NoSpace` (after rolling back partial
        allocations) if the allocator cannot satisfy the request.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if count > self._free:
            raise NoSpace(
                f"need {count} blocks, only {self._free} free in "
                f"[{self.base},{self.base + self.count})"
            )
        runs: List[Tuple[int, int]] = []
        remaining = count
        try:
            while remaining > 0:
                start, got = self.alloc_run(remaining, hint)
                hint = None
                runs.append((start, got))
                remaining -= got
        except NoSpace:
            for start, got in runs:
                self.free_run(start, got)
            raise
        return runs

    def alloc_block(self, hint: Optional[int] = None) -> int:
        """Allocate a single block."""
        start, _ = self.alloc_run(1, hint)
        return start

    def mark_allocated(self, start: int, count: int = 1) -> None:
        """Force-mark a run allocated (recovery scans rebuilding the bitmap
        from inode block maps; already-set bits are left alone)."""
        for block in range(start, start + count):
            idx = self._index(block)
            if not self._bitmap[idx]:
                self._bitmap[idx] = 1
                self._free -= 1

    # -- freeing ---------------------------------------------------------------

    def free_run(self, start: int, count: int = 1) -> None:
        """Free ``count`` blocks starting at ``start`` (must be allocated)."""
        for block in range(start, start + count):
            idx = self._index(block)
            if not self._bitmap[idx]:
                raise DeviceError(f"double free of block {block}")
            self._bitmap[idx] = 0
        self._free += count

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        assert self._free == self.count - sum(self._bitmap)
        assert 0 <= self._cursor < self.count


class AllocationGroups:
    """A set of independent allocators over one device (XFS-style AGs)."""

    def __init__(self, base: int, total_blocks: int, groups: int) -> None:
        if groups <= 0 or total_blocks < groups:
            raise ValueError("need at least one block per group")
        self.groups: List[BitmapAllocator] = []
        per_group = total_blocks // groups
        cursor = base
        for g in range(groups):
            size = per_group if g < groups - 1 else total_blocks - per_group * (groups - 1)
            self.groups.append(BitmapAllocator(cursor, size))
            cursor += size
        self._next_group = 0

    @property
    def free_blocks(self) -> int:
        return sum(g.free_blocks for g in self.groups)

    @property
    def used_blocks(self) -> int:
        return sum(g.used_blocks for g in self.groups)

    def alloc_extent(self, count: int, hint: Optional[int] = None) -> List[Tuple[int, int]]:
        """Allocate ``count`` blocks, preferring one group, spilling across."""
        if count > self.free_blocks:
            raise NoSpace(f"need {count} blocks, only {self.free_blocks} free")
        if hint is not None:
            order = sorted(
                range(len(self.groups)),
                key=lambda g: 0 if self._owns(g, hint) else 1,
            )
        else:
            order = [
                (self._next_group + i) % len(self.groups)
                for i in range(len(self.groups))
            ]
            self._next_group = (self._next_group + 1) % len(self.groups)
        runs: List[Tuple[int, int]] = []
        remaining = count
        for g in order:
            group = self.groups[g]
            if group.free_blocks == 0:
                continue
            take = min(remaining, group.free_blocks)
            got = group.alloc_extent(take, hint if self._owns(g, hint) else None)
            runs.extend(got)
            remaining -= take
            if remaining == 0:
                return runs
        # free_blocks said we had room; spill loop must have satisfied it
        for start, length in runs:
            self.free_run(start, length)
        raise NoSpace("fragmentation prevented allocation")

    def _owns(self, group_index: int, block: Optional[int]) -> bool:
        if block is None:
            return False
        group = self.groups[group_index]
        return group.base <= block < group.base + group.count

    def free_run(self, start: int, count: int = 1) -> None:
        """Free a run, routing each span to its owning group."""
        remaining = count
        block = start
        while remaining > 0:
            for group in self.groups:
                if group.base <= block < group.base + group.count:
                    span = min(remaining, group.base + group.count - block)
                    group.free_run(block, span)
                    block += span
                    remaining -= span
                    break
            else:
                raise DeviceError(f"block {block} outside all allocation groups")
