"""DRAM page cache used by the block-device file systems (XFS, Ext4).

The paper's §2.5 observes that "each file system may use DRAM as its page
cache [but] the cache cannot be shared across devices" — this class is that
per-file-system DRAM cache.  NOVA does not instantiate one (DAX bypasses
the page cache); Mux's *shared* SCM cache is a separate component built in
``repro.core.cache``.

Write-back semantics: dirty pages accumulate and are flushed on fsync or
when evicted by LRU pressure.  DRAM hits charge only a copy cost.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterable, List, Optional, Tuple

from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet

#: Cost of copying one 4 KiB page from DRAM (~10 GB/s effective + lookup).
DRAM_PAGE_COPY_NS = 400

PageKey = Tuple[int, int]  # (ino, file block index)
#: (ino, file_block, data) -> keep?  A ``False`` return means the write
#: failed under a keep-dirty policy and the page must stay cached; any
#: other return (including None) lets the cache dispose of the page.
WritebackFn = Callable[[int, int, bytes], Optional[bool]]


class Page:
    __slots__ = ("data", "dirty")

    def __init__(self, data: bytes, dirty: bool) -> None:
        self.data = data
        self.dirty = dirty


class PageCache:
    """Fixed-capacity LRU write-back page cache."""

    def __init__(
        self,
        clock: SimClock,
        capacity_pages: int,
        page_size: int,
        writeback: WritebackFn,
    ) -> None:
        if capacity_pages <= 0:
            raise ValueError("page cache needs positive capacity")
        self.clock = clock
        self.capacity_pages = capacity_pages
        self.page_size = page_size
        self._writeback = writeback
        self._pages: "OrderedDict[PageKey, Page]" = OrderedDict()
        self.stats = CounterSet()

    # -- lookup ------------------------------------------------------------

    def get(self, ino: int, file_block: int) -> Optional[bytes]:
        """Cached page contents or None; a hit charges the DRAM copy cost."""
        key = (ino, file_block)
        page = self._pages.get(key)
        if page is None:
            self.stats.add("miss")
            return None
        self._pages.move_to_end(key)
        self.clock.advance_ns(DRAM_PAGE_COPY_NS)
        self.stats.add("hit")
        return page.data

    def contains(self, ino: int, file_block: int) -> bool:
        return (ino, file_block) in self._pages

    def span_cached(self, ino: int, first_block: int, count: int) -> int:
        """Length of the contiguous cached prefix of the span (no charges)."""
        pages = self._pages
        n = 0
        while n < count and (ino, first_block + n) in pages:
            n += 1
        return n

    def get_span(
        self, ino: int, first_block: int, count: int, out: bytearray, out_off: int
    ) -> None:
        """Copy ``count`` consecutive cached pages into ``out``.

        Every page must be cached (check with :meth:`span_cached` first).
        Timing-equivalent to ``count`` :meth:`get` calls — same LRU touch
        order, same hit stats, same total copy cost — but one clock charge
        and one slice copy per page instead of per-call overhead.
        """
        if count <= 0:
            return
        pages = self._pages
        ps = self.page_size
        pos = out_off
        for i in range(count):
            key = (ino, first_block + i)
            page = pages[key]
            pages.move_to_end(key)
            out[pos : pos + ps] = page.data
            pos += ps
        self.clock.advance_ns(count * DRAM_PAGE_COPY_NS)
        self.stats.add("hit", count)

    # -- insert / update -------------------------------------------------------

    def put(self, ino: int, file_block: int, data: bytes, dirty: bool) -> None:
        """Insert or overwrite a page; may trigger LRU eviction."""
        if len(data) != self.page_size:
            raise ValueError(
                f"page must be exactly {self.page_size} bytes, got {len(data)}"
            )
        key = (ino, file_block)
        existing = self._pages.get(key)
        if existing is not None:
            existing.data = data
            existing.dirty = existing.dirty or dirty
            self._pages.move_to_end(key)
        else:
            self._pages[key] = Page(data, dirty)
            self.stats.add("insert")
        self.clock.advance_ns(DRAM_PAGE_COPY_NS)
        self._evict_to_capacity()

    def put_span(self, ino: int, first_block: int, data, dirty: bool) -> None:
        """Insert consecutive pages from block-aligned ``data``.

        Timing-equivalent to one :meth:`put` per page: inserts happen in
        ascending order with the eviction check after each insert (so LRU
        victim sequence is preserved exactly), but the copy cost is charged
        in one clock advance.
        """
        ps = self.page_size
        if len(data) == 0 or len(data) % ps:
            raise ValueError(
                f"span must be a positive multiple of {ps} bytes, got {len(data)}"
            )
        count = len(data) // ps
        src = memoryview(data)
        self.clock.advance_ns(count * DRAM_PAGE_COPY_NS)
        for i in range(count):
            key = (ino, first_block + i)
            block = bytes(src[i * ps : (i + 1) * ps])
            existing = self._pages.get(key)
            if existing is not None:
                existing.data = block
                existing.dirty = existing.dirty or dirty
                self._pages.move_to_end(key)
            else:
                self._pages[key] = Page(block, dirty)
                self.stats.add("insert")
            self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        # bound the scan so a cache full of unevictable pages (every
        # writeback refused under a keep-dirty policy) degrades to running
        # over capacity instead of livelocking
        attempts = len(self._pages)
        while len(self._pages) > self.capacity_pages and attempts > 0:
            attempts -= 1
            key, page = self._pages.popitem(last=False)
            self.stats.add("evict")
            if page.dirty:
                self.stats.add("evict_dirty")
                if self._writeback(key[0], key[1], page.data) is False:
                    # the FS kept the page dirty (failed write under a
                    # keep-dirty policy): reinsert at the MRU end and try
                    # the next victim
                    self.stats.add("evict_kept")
                    self._pages[key] = page

    # -- flushing ---------------------------------------------------------------

    def flush_inode(self, ino: int) -> int:
        """Write back all dirty pages of one inode; returns pages flushed."""
        flushed = 0
        for key, page in list(self._pages.items()):
            if key[0] == ino and page.dirty:
                if self._writeback(key[0], key[1], page.data) is False:
                    continue  # write refused; the page stays dirty
                page.dirty = False
                flushed += 1
        self.stats.add("fsync_pages", flushed)
        return flushed

    def flush_all(self) -> int:
        """Write back every dirty page."""
        flushed = 0
        for key, page in self._pages.items():
            if page.dirty:
                if self._writeback(key[0], key[1], page.data) is False:
                    continue  # write refused; the page stays dirty
                page.dirty = False
                flushed += 1
        return flushed

    def dirty_items(self, ino: int) -> List[Tuple[int, bytes]]:
        """(file_block, data) for every dirty page of ``ino``, sorted.

        Used by the journaled file systems to batch writeback into large
        contiguous device writes instead of page-at-a-time callbacks.
        """
        items = [
            (key[1], page.data)
            for key, page in self._pages.items()
            if key[0] == ino and page.dirty
        ]
        items.sort()
        return items

    def mark_clean(self, ino: int, file_blocks: Iterable[int]) -> None:
        """Clear the dirty bit on specific pages after a batched writeback."""
        for fb in file_blocks:
            page = self._pages.get((ino, fb))
            if page is not None:
                page.dirty = False

    def invalidate_inode(self, ino: int) -> None:
        """Drop all pages of an inode (unlink/truncate); dirty pages are lost."""
        for key in [k for k in self._pages if k[0] == ino]:
            del self._pages[key]

    def invalidate_range(self, ino: int, first_block: int, count: int) -> None:
        """Drop pages of ``ino`` in [first_block, first_block+count)."""
        if count >= len(self._pages):
            keys = [
                k
                for k in self._pages
                if k[0] == ino and first_block <= k[1] < first_block + count
            ]
        else:
            keys = [
                (ino, fb)
                for fb in range(first_block, first_block + count)
                if (ino, fb) in self._pages
            ]
        for key in keys:
            del self._pages[key]

    def invalidate_from(self, ino: int, first_block: int) -> None:
        """Drop pages of ``ino`` at or beyond ``first_block`` (truncate)."""
        for key in [k for k in self._pages if k[0] == ino and k[1] >= first_block]:
            del self._pages[key]

    def drop_clean(self) -> None:
        """Drop every clean page (crash simulation keeps nothing volatile)."""
        for key in [k for k, p in self._pages.items()]:
            del self._pages[key]

    # -- introspection ------------------------------------------------------------

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def dirty_pages(self) -> int:
        return sum(1 for p in self._pages.values() if p.dirty)

    def hit_ratio(self) -> float:
        hits = self.stats.get("hit")
        total = hits + self.stats.get("miss")
        return hits / total if total else 0.0
