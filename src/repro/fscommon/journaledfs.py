"""Base class for the journaled block-device file systems (XFS, Ext4).

Implements ordered-mode write-ahead journaling over the shared
:class:`~repro.fscommon.basefs.NativeFileSystem` skeleton:

* namespace changes (create/unlink/rename/mkdir/...) commit a journal
  transaction immediately;
* data-path metadata (extent mappings, size, mtime) is buffered per inode
  and committed at ``fsync`` — *after* the data pages have been written to
  the device (the "ordered" contract);
* the durable :class:`~repro.fscommon.metastore.MetaStore` only advances at
  journal checkpoint or crash recovery, so crash tests exercise the real
  write-ahead semantics.

Subclasses choose the allocator (single bitmap vs allocation groups) and
whether allocation is delayed to writeback (XFS) or performed at write time
(Ext4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.devices.base import Device
from repro.errors import DeviceIoError, NoSpace
from repro.fscommon.basefs import MetaRecord, NativeFileSystem
from repro.fscommon.inode import Inode, InodeTable
from repro.fscommon.journal import Journal, JournalFull
from repro.fscommon.metastore import MetaStore
from repro.fscommon.pagecache import PageCache
from repro.sim.clock import SimClock
from repro.vfs.stat import FileType


def _block_runs(blocks: List[int]) -> List[Tuple[int, int]]:
    """Compress a sorted block list into ``(start, count)`` runs."""
    runs: List[Tuple[int, int]] = []
    for fb in blocks:
        if runs and fb == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((fb, 1))
    return runs


class Allocator(Protocol):
    """What the journaled FS needs from its block allocator."""

    free_blocks: int

    def alloc_extent(self, count: int, hint: Optional[int] = None) -> List[Tuple[int, int]]: ...

    def free_run(self, start: int, count: int = 1) -> None: ...


class JournaledFileSystem(NativeFileSystem):
    """Ordered-mode journaling file system over a block device."""

    #: fraction of the device reserved for the journal
    journal_fraction: float = 0.01
    #: minimum journal size in blocks
    journal_min_blocks: int = 64
    #: does allocation wait until writeback (XFS delayed allocation)?
    delayed_allocation: bool = False
    #: page cache capacity as a fraction of device blocks
    page_cache_fraction: float = 0.1
    #: hard cap on page-cache pages (models limited DRAM per FS)
    page_cache_max_pages: int = 16384
    #: what happens to dirty pages when writeback hits a *persistent*
    #: device error (transient faults keep propagating so the tier-level
    #: retry machinery handles them): "clean" marks the pages clean and
    #: forgets them — ext4's infamous failed-fsync behavior, the data is
    #: silently gone and only the errseq/fsck record remains; "keep"
    #: leaves them dirty so later fsyncs retry, bounded by
    #: ``wb_retry_limit`` (XFS), after which they too are dropped
    wb_failure_policy: str = "clean"
    #: failed-writeback retries per inode under the "keep" policy
    wb_retry_limit: int = 3

    def __init__(self, fs_name: str, device: Device, clock: SimClock) -> None:
        super().__init__(fs_name, device, clock)
        journal_blocks = max(
            self.journal_min_blocks, int(device.num_blocks * self.journal_fraction)
        )
        if journal_blocks >= device.num_blocks:
            raise ValueError("device too small for its journal")
        self.journal = Journal(device, 0, journal_blocks)
        self._data_base = journal_blocks
        self._data_blocks = device.num_blocks - journal_blocks
        self.allocator: Allocator = self._make_allocator(
            self._data_base, self._data_blocks
        )
        cache_pages = min(
            self.page_cache_max_pages,
            max(64, int(device.num_blocks * self.page_cache_fraction)),
        )
        self.page_cache = PageCache(
            clock, cache_pages, self.block_size, self._writeback_page
        )
        #: durable metadata (advances only at checkpoint/recovery)
        self._meta = MetaStore()
        self._meta.format(clock.now())
        #: data-path records not yet committed, per inode
        self._pending_data: Dict[int, List[MetaRecord]] = {}
        #: delayed-allocation blocks: ino -> set of unmapped dirty file blocks
        self._delalloc: Dict[int, set] = {}
        #: sequential-read detector: ino -> (last file block read, window)
        self._readahead: Dict[int, Tuple[int, int]] = {}
        #: speculative blocks fetched on background time (gauge for traces)
        self.readahead_bg_blocks = 0
        #: failed-writeback retry counts per inode (the "keep" policy bound)
        self._wb_retries: Dict[int, int] = {}

    #: maximum readahead window in blocks (Linux default: 128 KiB)
    readahead_max_blocks: int = 32

    #: issue the speculative readahead tail on a background clock frame
    #: (reserved device channels) so it overlaps the demand read instead
    #: of serializing after it.  Off by default: the foreground window
    #: model stays bit-identical unless a stack opts in.
    readahead_background: bool = False

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------

    def _make_allocator(self, base: int, count: int) -> Allocator:
        raise NotImplementedError

    def _total_data_blocks(self) -> int:
        return self._data_blocks

    def _free_data_blocks(self) -> int:
        return self.allocator.free_blocks

    # ------------------------------------------------------------------
    # metadata durability
    # ------------------------------------------------------------------

    def _commit_txn(self, records: List[MetaRecord]) -> None:
        if not records:
            return
        txn = self.journal.begin()
        for kind, fields in records:
            txn.add(kind, **fields)
        try:
            txn.commit()
        except JournalFull:
            self.checkpoint()
            retry = self.journal.begin()
            for kind, fields in records:
                retry.add(kind, **fields)
            retry.commit()

    def _record_namespace(self, records: List[MetaRecord]) -> None:
        # an inode being freed must not leave buffered data-path records
        # behind: they would commit *after* its free_inode record and
        # corrupt checkpoint replay (and its cached pages are dead weight)
        for kind, fields in records:
            if kind == "free_inode":
                ino = int(fields["ino"])  # type: ignore[arg-type]
                self._pending_data.pop(ino, None)
                self._delalloc.pop(ino, None)
                self._readahead.pop(ino, None)
                self._wb_retries.pop(ino, None)
                self._wb_errseq.pop(ino, None)
                self._wb_lost.pop(ino, None)
                self.page_cache.invalidate_inode(ino)
        self._commit_txn(records)

    def _record_data_meta(self, inode: Inode, records: List[MetaRecord]) -> None:
        self._pending_data.setdefault(inode.ino, []).extend(records)

    def checkpoint(self) -> int:
        """Apply committed journal transactions to the durable metadata."""
        return self.journal.checkpoint(self._meta.apply)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _readahead_window(self, ino: int, file_block: int) -> int:
        """Sequential-pattern detector: double the window on consecutive
        reads (like the kernel's readahead ramp-up), reset on random ones."""
        last, window = self._readahead.get(ino, (-2, 0))
        if file_block == last + 1:
            window = min(self.readahead_max_blocks, max(4, window * 2))
        else:
            window = 1
        self._readahead[ino] = (file_block, window)
        return window

    def _read_block(self, inode: Inode, file_block: int) -> Optional[bytes]:
        window = self._readahead_window(inode.ino, file_block)
        cached = self.page_cache.get(inode.ino, file_block)
        if cached is not None:
            return cached
        dev_block = inode.blockmap.lookup(file_block)
        if dev_block is None:
            return None
        # extend the read over device-contiguous, uncached blocks up to the
        # readahead window: one large device access instead of many small
        count = 1
        while (
            count < window
            and inode.blockmap.lookup(file_block + count) == dev_block + count
            and not self.page_cache.contains(inode.ino, file_block + count)
        ):
            count += 1
        if self.readahead_background and count > 1:
            # demand block foreground; the speculative tail rides a
            # background frame against the device's reserved channels, so
            # the user op completes without paying for the prefetch.  The
            # frame cursor is discarded — speculation meets the foreground
            # only through device-channel contention, like any background
            # work — but the pages land in the cache immediately (state
            # mutations stay in program order).
            bs = self.block_size
            data = self.device.read_blocks(dev_block, 1)
            self.page_cache.put(inode.ino, file_block, data[:bs], dirty=False)
            self.clock.push_frame(background=True)
            try:
                tail = self.device.read_blocks(dev_block + 1, count - 1)
                for i in range(count - 1):
                    chunk = tail[i * bs : (i + 1) * bs]
                    self.page_cache.put(
                        inode.ino, file_block + 1 + i, chunk, dirty=False
                    )
            finally:
                self.clock.pop_frame()
            self.readahead_bg_blocks += count - 1
            return data[:bs]
        data = self.device.read_blocks(dev_block, count)
        for i in range(count):
            chunk = data[i * self.block_size : (i + 1) * self.block_size]
            self.page_cache.put(inode.ino, file_block + i, chunk, dirty=False)
        return data[: self.block_size]

    def _read_span_into(
        self, inode: Inode, offset: int, length: int, out: bytearray, out_off: int
    ) -> None:
        """Span read: runs of whole-block page-cache hits copy out in one
        :meth:`PageCache.get_span`; everything else (misses, which go
        through the readahead ramp, and partial edge blocks) falls back to
        the per-block path.  The readahead window still advances once per
        file block, exactly as the scalar loop would."""
        bs = self.block_size
        pos = offset
        end = offset + length
        dst = out_off
        while pos < end:
            fb, block_off = divmod(pos, bs)
            take = min(end - pos, bs - block_off)
            if block_off == 0 and take == bs:
                span = self.page_cache.span_cached(inode.ino, fb, (end - pos) // bs)
                if span:
                    for i in range(span):
                        self._readahead_window(inode.ino, fb + i)
                    self.page_cache.get_span(inode.ino, fb, span, out, dst)
                    pos += span * bs
                    dst += span * bs
                    continue
            block = self._read_block(inode, fb)
            if block is None:
                out[dst : dst + take] = bytes(take)
            else:
                out[dst : dst + take] = block[block_off : block_off + take]
            pos += take
            dst += take

    def _write_span(self, inode: Inode, offset: int, data: bytes) -> None:
        bs = self.block_size
        pos = offset
        idx = 0
        n = len(data)
        src = memoryview(data)
        dirtied: List[int] = []
        while idx < n:
            fb, block_off = divmod(pos, bs)
            take = min(n - idx, bs - block_off)
            if block_off == 0 and take == bs:
                # run of whole-block overwrites: batch into the page cache
                run = (n - idx) // bs
                self.page_cache.put_span(
                    inode.ino, fb, src[idx : idx + run * bs], dirty=True
                )
                dirtied.extend(range(fb, fb + run))
                pos += run * bs
                idx += run * bs
                continue
            base = self._read_block(inode, fb)
            page = bytearray(base if base is not None else bytes(bs))
            page[block_off : block_off + take] = src[idx : idx + take]
            self.page_cache.put(inode.ino, fb, bytes(page), dirty=True)
            dirtied.append(fb)
            pos += take
            idx += take
        if self.delayed_allocation:
            marks = self._delalloc.setdefault(inode.ino, set())
            for fb in dirtied:
                if inode.blockmap.lookup(fb) is None:
                    marks.add(fb)
        else:
            self._allocate_for(inode, dirtied)

    def _allocate_for(self, inode: Inode, file_blocks: List[int]) -> None:
        """Map any unmapped blocks in ``file_blocks``, preferring contiguity."""
        unmapped = [fb for fb in file_blocks if inode.blockmap.lookup(fb) is None]
        if not unmapped:
            return
        # group consecutive file blocks into spans, allocate per span
        spans: List[Tuple[int, int]] = []
        start = unmapped[0]
        run = 1
        for fb in unmapped[1:]:
            if fb == start + run:
                run += 1
            else:
                spans.append((start, run))
                start, run = fb, 1
        spans.append((start, run))
        for span_start, span_len in spans:
            hint = self._alloc_hint(inode, span_start)
            runs = self.allocator.alloc_extent(span_len, hint)
            fb = span_start
            for dev_start, got in runs:
                inode.blockmap.map_range(fb, got, dev_start)
                inode.allocated_blocks += got
                self._record_data_meta(
                    inode,
                    [
                        (
                            "map_extent",
                            {
                                "ino": inode.ino,
                                "start": fb,
                                "count": got,
                                "dev": dev_start,
                            },
                        )
                    ],
                )
                fb += got

    def _alloc_hint(self, inode: Inode, file_block: int) -> Optional[int]:
        """Hint: place new blocks right after the previous file block's home."""
        if file_block == 0:
            return None
        prev = inode.blockmap.lookup(file_block - 1)
        return None if prev is None else prev + 1

    def _writeback_page(self, ino: int, file_block: int, data: bytes) -> Optional[bool]:
        """Eviction-path writeback of one dirty page.

        Returns ``False`` when the page must stay cached (persistent write
        failure under the keep-dirty policy); any other return lets the
        eviction proceed.  Transient errors propagate — the caller's retry
        machinery owns those.
        """
        inode = self.inodes.maybe_get(ino)
        if inode is None:
            return None  # inode went away; the page is stale
        self._allocate_for(inode, [file_block])
        dev_block = inode.blockmap.lookup(file_block)
        try:
            self.device.write_blocks(dev_block, data)
        except DeviceIoError as exc:
            if exc.transient:
                raise
            if self._apply_wb_failure_policy(ino, [file_block]):
                return False  # page kept dirty; evict a different victim
            return None  # policy dropped it; the loss is on record
        self._delalloc.get(ino, set()).discard(file_block)
        return None

    def _apply_wb_failure_policy(self, ino: int, failed_blocks: List[int]) -> bool:
        """Dispose of dirty pages a persistent write error left behind.

        Returns True when the pages were kept dirty for a bounded retry
        (XFS), False when they were marked clean and forgotten (ext4, or
        XFS past its retry bound) — in which case the lost intervals are
        latched for fsck alongside the errseq bump.
        """
        if self.wb_failure_policy == "keep":
            tries = self._wb_retries.get(ino, 0) + 1
            self._wb_retries[ino] = tries
            if tries <= self.wb_retry_limit:
                self._note_writeback_error(ino)
                self.stats.add("wb_kept_dirty", len(failed_blocks))
                return True
            self._wb_retries.pop(ino, None)
        self.page_cache.mark_clean(ino, failed_blocks)
        self._note_writeback_error(ino, lost=_block_runs(failed_blocks))
        self.stats.add("wb_dropped", len(failed_blocks))
        return False

    def _flush_inode_data(self, inode: Inode) -> None:
        """Write every dirty page of ``inode`` with batched device writes.

        Writeback is elevator-ordered: pages are sorted by *device* block
        (not file offset) and adjacent device blocks are merged into one
        write, modeling the kernel's request-queue sorting.  This is what
        lets a page cache turn random small writes into near-sequential
        disk I/O.
        """
        dirty = self.page_cache.dirty_items(inode.ino)
        if not dirty:
            return
        self._allocate_for(inode, [fb for fb, _ in dirty])
        self._delalloc.pop(inode.ino, None)
        by_dev = sorted(
            (inode.blockmap.lookup(fb), fb, data) for fb, data in dirty
        )
        batch_start_dev: Optional[int] = None
        batch: List[bytes] = []
        batch_fbs: List[int] = []
        flushed: List[int] = []

        def emit() -> None:
            if batch:
                self.device.write_blocks(batch_start_dev, b"".join(batch))
                flushed.extend(batch_fbs)
                batch.clear()
                batch_fbs.clear()

        prev_dev = None
        try:
            for dev_block, fb, data in by_dev:
                if prev_dev is not None and dev_block == prev_dev + 1:
                    batch.append(data)
                else:
                    emit()
                    batch_start_dev = dev_block
                    batch.append(data)
                prev_dev = dev_block
                batch_fbs.append(fb)
            emit()
        except DeviceIoError as exc:
            # transient errors leave every page dirty and propagate, so
            # the tier-level retry loop re-drives the whole flush exactly
            # as before; a persistent error is final — batches that landed
            # are clean, the rest go to the per-FS failure policy
            if not exc.transient:
                self.page_cache.mark_clean(inode.ino, flushed)
                landed = set(flushed)
                failed = [fb for fb, _ in dirty if fb not in landed]
                self._apply_wb_failure_policy(inode.ino, failed)
            raise
        self.page_cache.mark_clean(inode.ino, flushed)
        self._wb_retries.pop(inode.ino, None)

    def _fsync_inode(self, inode: Inode) -> None:
        # ordered mode: data reaches the device before metadata commits
        self._flush_inode_data(inode)
        records = self._pending_data.pop(inode.ino, [])
        try:
            self._commit_txn(records)
        except Exception:
            # a failed commit (injected device error) must not lose the
            # records: restore them so a later fsync/sync can retry
            if records:
                existing = self._pending_data.setdefault(inode.ino, [])
                existing[:0] = records
            raise
        self.device.flush()

    def _punch_blocks(self, inode: Inode, from_block: int) -> None:
        """Tail punch (truncate): must also drop delalloc pages, which have
        dirty page-cache state but no blockmap entry yet."""
        self.page_cache.invalidate_from(inode.ino, from_block)
        if inode.ino in self._delalloc:
            self._delalloc[inode.ino] = {
                fb for fb in self._delalloc[inode.ino] if fb < from_block
            }
        super()._punch_blocks(inode, from_block)

    def _punch_range(self, inode: Inode, start_block: int, count: int) -> None:
        # drop cached pages over the punched range (stale, not just dirty)
        self.page_cache.invalidate_range(inode.ino, start_block, count)
        for start, run_len, value in list(inode.blockmap.runs(start_block, count)):
            if value is None:
                continue
            self.allocator.free_run(value, run_len)
            inode.allocated_blocks -= run_len
        inode.blockmap.unmap_range(start_block, count)
        self._record_data_meta(
            inode,
            [
                (
                    "unmap_extent",
                    {"ino": inode.ino, "start": start_block, "count": count},
                )
            ],
        )
        if inode.ino in self._delalloc:
            self._delalloc[inode.ino] = {
                fb
                for fb in self._delalloc[inode.ino]
                if not start_block <= fb < start_block + count
            }

    # ------------------------------------------------------------------
    # sync / crash / recovery
    # ------------------------------------------------------------------

    def sync(self) -> None:
        """Flush all dirty data, commit all metadata, checkpoint the journal."""
        for inode in list(self.inodes):
            if not inode.is_dir:
                self._flush_inode_data(inode)
        for ino in list(self._pending_data):
            records = self._pending_data.pop(ino)
            try:
                self._commit_txn(records)
            except Exception:
                if records:
                    existing = self._pending_data.setdefault(ino, [])
                    existing[:0] = records
                raise
        self.device.flush()
        self.checkpoint()

    def crash(self) -> None:
        """Simulate power loss: all volatile state disappears."""
        self.page_cache.drop_clean()
        self._pending_data.clear()
        self._delalloc.clear()
        self._readahead.clear()
        self._open_handles.clear()
        # the errseq ledger is volatile: after a crash every dirty page is
        # gone anyway (expected crash semantics, not a writeback failure)
        self._wb_errseq.clear()
        self._wb_lost.clear()
        self._wb_retries.clear()

    def recover(self) -> None:
        """Mount-time recovery: durable metadata + journal replay."""
        store = self._meta.clone()
        for records in self.journal.recover():
            for kind, fields in records:
                store.apply(kind, fields)
        self._meta = store
        self._rebuild_from_meta()

    def _rebuild_from_meta(self) -> None:
        self.inodes = InodeTable()
        table = self.inodes
        # root first so NativeFileSystem invariants hold
        for ino in sorted(self._meta.inodes):
            desc = self._meta.inodes[ino]
            file_type = (
                FileType.DIRECTORY
                if desc["type"] == FileType.DIRECTORY.value
                else FileType.REGULAR
            )
            inode = table.restore(ino, file_type, float(desc["ctime"]), int(desc["mode"]))
            inode.size = int(desc["size"])
            inode.atime = float(desc["atime"])
            inode.mtime = float(desc["mtime"])
            inode.nlink = int(desc["nlink"])
            inode.entries = dict(desc["entries"])
            for start, count, dev in desc["extents"]:
                inode.blockmap.map_range(start, count, dev)
                inode.allocated_blocks += count
        self._root = table.get(InodeTable.ROOT_INO)
        # rebuild the allocator from the recovered extent ownership
        self.allocator = self._make_allocator(self._data_base, self._data_blocks)
        for dev_start, count in self._meta.allocated_runs():
            self._claim_allocated(dev_start, count)

    def _claim_allocated(self, dev_start: int, count: int) -> None:
        """Mark a recovered run as allocated in a fresh allocator."""
        remaining = count
        block = dev_start
        # BitmapAllocator and AllocationGroups both expose free_run; claiming
        # needs allocator-specific access, done via duck typing on groups.
        groups = getattr(self.allocator, "groups", None)
        allocators = groups if groups is not None else [self.allocator]
        while remaining > 0:
            for alloc in allocators:
                if alloc.base <= block < alloc.base + alloc.count:
                    span = min(remaining, alloc.base + alloc.count - block)
                    for b in range(block, block + span):
                        idx = b - alloc.base
                        if not alloc._bitmap[idx]:
                            alloc._bitmap[idx] = 1
                            alloc._free -= 1
                    block += span
                    remaining -= span
                    break
            else:
                raise NoSpace(f"recovered block {block} outside data region")
