"""Shared skeleton for the native file systems (NOVA, XFS, Ext4).

The skeleton owns everything the VFS interface needs that is *not*
device-specific: the inode table, path resolution, directory operations,
handle bookkeeping and the generic read/write/truncate loops.  Each
concrete file system supplies the data path (how blocks reach the device)
and the metadata-durability path (log vs journal) through a small set of
hooks — mirroring how real file systems differ below a common VFS surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.devices.base import Device
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    ReproError,
    WritebackError,
)
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs import path as vpath
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags, attrs_for_update
from repro.vfs.stat import FileType, FsStats, Stat
from repro.fscommon.inode import Inode, InodeTable

MetaRecord = Tuple[str, Dict[str, object]]


class NativeFileSystem(FileSystem):
    """Common namespace + generic data loops; subclasses own the device path."""

    #: per-operation software cost (path walk, inode lock, ...) in ns
    op_cost_ns: int = 2000

    #: timestamp granularity in seconds (0.0 = full precision).  §4 of the
    #: Mux paper calls out feature imparity between file systems: "even for
    #: the same metadata attribute, its semantics can vary (e.g., FAT
    #: records timestamps with a two-second granularity)".  File systems
    #: with coarse clocks round every reported timestamp down.
    timestamp_granularity: float = 0.0

    def __init__(self, fs_name: str, device: Device, clock: SimClock) -> None:
        self.fs_name = fs_name
        self.device = device
        self.clock = clock
        self.block_size = device.block_size
        self.inodes = InodeTable()
        self.stats = CounterSet()
        self._root = self.inodes.alloc(FileType.DIRECTORY, clock.now(), 0o755)
        self._open_handles: Dict[int, int] = {}  # ino -> open count
        #: errseq_t: per-inode writeback-error sequence, bumped whenever
        #: writeback gives up on dirty data; fds sample it at open time
        self._wb_errseq: Dict[int, int] = {}
        #: dirty intervals writeback dropped: ino -> [(file_block, count)]
        #: — fsck reads these to flag silently-lost data
        self._wb_lost: Dict[int, List[Tuple[int, int]]] = {}

    # ------------------------------------------------------------------
    # hooks for subclasses
    # ------------------------------------------------------------------

    def _charge_op(self) -> None:
        self.clock.advance_ns(self.op_cost_ns)

    def _record_namespace(self, records: List[MetaRecord]) -> None:
        """Durably record a namespace change (create/unlink/rename/...)."""
        raise NotImplementedError

    def _record_data_meta(self, inode: Inode, records: List[MetaRecord]) -> None:
        """Record data-path metadata (size, extents); durability semantics
        are FS-specific (NOVA: immediate; journaled: buffered until fsync)."""
        raise NotImplementedError

    def _read_block(self, inode: Inode, file_block: int) -> Optional[bytes]:
        """Return the contents of one file block, or None for a hole."""
        raise NotImplementedError

    def _write_span(self, inode: Inode, offset: int, data: bytes) -> None:
        """Persist (or buffer) ``data`` at byte ``offset`` of the file."""
        raise NotImplementedError

    def _punch_range(self, inode: Inode, start_block: int, count: int) -> None:
        """Release the device blocks backing [start_block, start_block+count)."""
        raise NotImplementedError

    def _punch_blocks(self, inode: Inode, from_block: int) -> None:
        """Release all blocks at or beyond ``from_block`` (shrink truncate)."""
        end = inode.blockmap.end_block()
        if end > from_block:
            self._punch_range(inode, from_block, end - from_block)

    def _fsync_inode(self, inode: Inode) -> None:
        """Make one inode's data + metadata durable."""
        raise NotImplementedError

    def _free_data_blocks(self) -> int:
        """Free device blocks available for data."""
        raise NotImplementedError

    def _total_data_blocks(self) -> int:
        """Total device blocks available for data."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # path resolution
    # ------------------------------------------------------------------

    def _resolve_dir(self, path: str) -> Inode:
        """Resolve ``path`` to a directory inode."""
        inode = self._resolve(path)
        if not inode.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        return inode

    def _resolve(self, path: str) -> Inode:
        """Resolve ``path`` to an inode or raise FileNotFound."""
        inode = self._root
        for name in vpath.components(path):
            if not inode.is_dir:
                raise NotADirectory(f"component of {path!r} is not a directory")
            try:
                ino = inode.entries[name]
            except KeyError:
                raise FileNotFound(f"{self.fs_name}: {path!r} does not exist")
            inode = self.inodes.get(ino)
        return inode

    def _resolve_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve the parent directory of ``path``; returns (dir, name)."""
        parent_path, name = vpath.split(path)
        if not name:
            raise InvalidArgument("operation on root directory")
        return self._resolve_dir(parent_path), name

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        self._charge_op()
        path = vpath.normalize(path)
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise FileExists(f"{self.fs_name}: {path!r} exists")
        now = self.clock.now()
        inode = self.inodes.alloc(FileType.REGULAR, now, mode)
        parent.entries[name] = inode.ino
        parent.mtime = parent.ctime = now
        self._record_namespace(
            [
                (
                    "alloc_inode",
                    {
                        "ino": inode.ino,
                        "file_type": FileType.REGULAR.value,
                        "now": now,
                        "mode": mode,
                    },
                ),
                ("link", {"parent": parent.ino, "name": name, "ino": inode.ino}),
            ]
        )
        self.stats.add("create")
        return self._make_handle(inode, path, OpenFlags.RDWR)

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        self._charge_op()
        path = vpath.normalize(path)
        self.check_flags(flags)
        try:
            inode = self._resolve(path)
        except FileNotFound:
            if not flags & OpenFlags.CREAT:
                raise
            handle = self.create(path)
            handle.flags = flags
            return handle
        if inode.is_dir:
            raise IsADirectory(f"{self.fs_name}: {path!r} is a directory")
        handle = self._make_handle(inode, path, flags)
        if flags & OpenFlags.TRUNC and OpenFlags.writable(flags):
            self.truncate(handle, 0)
        self.stats.add("open")
        return handle

    def _make_handle(self, inode: Inode, path: str, flags: int) -> FileHandle:
        # create/open hand us canonical paths; don't re-normalize
        handle = FileHandle(self, inode.ino, path, flags)
        handle.wb_err = self._wb_errseq.get(inode.ino, 0)
        self._open_handles[inode.ino] = self._open_handles.get(inode.ino, 0) + 1
        return handle

    # ------------------------------------------------------------------
    # writeback-error tracking (errseq_t)
    # ------------------------------------------------------------------

    def _note_writeback_error(
        self, ino: int, lost: Optional[List[Tuple[int, int]]] = None
    ) -> None:
        """Latch a writeback failure on the inode (errseq bump).

        ``lost`` names dirty (file_block, count) intervals the failure
        policy dropped; fsck surfaces them as silently-lost data.
        """
        self._wb_errseq[ino] = self._wb_errseq.get(ino, 0) + 1
        if lost:
            self._wb_lost.setdefault(ino, []).extend(lost)
        self.stats.add("wb_errors")

    def _check_wb_error(self, handle: FileHandle) -> None:
        """errseq check-and-advance: each fd sees the error at most once."""
        seq = self._wb_errseq.get(handle.ino, 0)
        if handle.wb_err < seq:
            handle.wb_err = seq
            raise WritebackError(
                f"{self.fs_name}: earlier writeback of ino {handle.ino} failed"
            )

    def _consume_wb_error(self, handle: FileHandle) -> None:
        """Advance the fd's sample without raising (the fd is observing the
        failure right now, through the original exception)."""
        handle.wb_err = self._wb_errseq.get(handle.ino, 0)

    def lost_intervals(self, ino: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """Dirty ``(ino, file_block, count)`` intervals writeback dropped."""
        if ino is not None:
            return [(ino, fb, n) for fb, n in self._wb_lost.get(ino, [])]
        return [
            (i, fb, n)
            for i in sorted(self._wb_lost)
            for fb, n in self._wb_lost[i]
        ]

    def close(self, handle: FileHandle) -> None:
        handle.ensure_open()
        handle.mark_closed()
        count = self._open_handles.get(handle.ino, 0) - 1
        if count <= 0:
            self._open_handles.pop(handle.ino, None)
        else:
            self._open_handles[handle.ino] = count
        self.stats.add("close")

    def unlink(self, path: str) -> None:
        self._charge_op()
        parent, name = self._resolve_parent(path)
        try:
            ino = parent.entries[name]
        except KeyError:
            raise FileNotFound(f"{self.fs_name}: {path!r} does not exist")
        inode = self.inodes.get(ino)
        if inode.is_dir:
            raise IsADirectory(f"{self.fs_name}: {path!r} is a directory")
        del parent.entries[name]
        inode.nlink -= 1
        now = self.clock.now()
        parent.mtime = parent.ctime = now
        records: List[MetaRecord] = [
            ("unlink", {"parent": parent.ino, "name": name})
        ]
        if inode.nlink == 0:
            self._punch_blocks(inode, 0)
            self.inodes.free(ino)
            records.append(("free_inode", {"ino": ino}))
        else:
            # other hard links remain; persist the decremented link count
            records.append(("set_attr", {"ino": ino, "nlink": inode.nlink}))
        self._record_namespace(records)
        self.stats.add("unlink")

    def rename(self, old_path: str, new_path: str) -> None:
        self._charge_op()
        old_path = vpath.normalize(old_path)
        new_path = vpath.normalize(new_path)
        if old_path == new_path:
            self._resolve(old_path)  # must exist; then a successful no-op
            return
        if vpath.is_under(new_path, old_path):
            raise InvalidArgument(
                f"cannot move {old_path!r} into itself ({new_path!r})"
            )
        old_parent, old_name = self._resolve_parent(old_path)
        new_parent, new_name = self._resolve_parent(new_path)
        try:
            ino = old_parent.entries[old_name]
        except KeyError:
            raise FileNotFound(f"{self.fs_name}: {old_path!r} does not exist")
        moving = self.inodes.get(ino)
        records: List[MetaRecord] = []
        if new_name in new_parent.entries:
            existing = self.inodes.get(new_parent.entries[new_name])
            if existing.is_dir:
                if not moving.is_dir:
                    raise IsADirectory(f"{new_path!r} is a directory")
                if existing.entries:
                    raise DirectoryNotEmpty(f"{new_path!r} is not empty")
            elif moving.is_dir:
                raise NotADirectory(f"{new_path!r} is not a directory")
            if not existing.is_dir:
                existing.nlink -= 1
                if existing.nlink == 0:
                    self._punch_blocks(existing, 0)
                    self.inodes.free(existing.ino)
                    records.append(("free_inode", {"ino": existing.ino}))
                else:
                    records.append(
                        ("set_attr", {"ino": existing.ino, "nlink": existing.nlink})
                    )
            else:
                self.inodes.free(existing.ino)
                records.append(("free_inode", {"ino": existing.ino}))
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = ino
        now = self.clock.now()
        old_parent.mtime = old_parent.ctime = now
        new_parent.mtime = new_parent.ctime = now
        moving.ctime = now
        records.extend(
            [
                ("unlink", {"parent": old_parent.ino, "name": old_name}),
                ("link", {"parent": new_parent.ino, "name": new_name, "ino": ino}),
            ]
        )
        self._record_namespace(records)
        self.stats.add("rename")

    def link(self, existing_path: str, new_path: str) -> None:
        """Hard link: a second directory entry for the same inode."""
        self._charge_op()
        inode = self._resolve(existing_path)
        if inode.is_dir:
            raise IsADirectory(f"cannot hard-link directory {existing_path!r}")
        parent, name = self._resolve_parent(new_path)
        if name in parent.entries:
            raise FileExists(f"{self.fs_name}: {new_path!r} exists")
        now = self.clock.now()
        parent.entries[name] = inode.ino
        inode.nlink += 1
        inode.ctime = now
        parent.mtime = parent.ctime = now
        self._record_namespace(
            [
                ("link", {"parent": parent.ino, "name": name, "ino": inode.ino}),
                ("set_attr", {"ino": inode.ino, "nlink": inode.nlink, "ctime": now}),
            ]
        )
        self.stats.add("link")

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._charge_op()
        parent, name = self._resolve_parent(path)
        if name in parent.entries:
            raise FileExists(f"{self.fs_name}: {path!r} exists")
        now = self.clock.now()
        inode = self.inodes.alloc(FileType.DIRECTORY, now, mode)
        parent.entries[name] = inode.ino
        parent.nlink += 1
        parent.mtime = parent.ctime = now
        self._record_namespace(
            [
                (
                    "alloc_inode",
                    {
                        "ino": inode.ino,
                        "file_type": FileType.DIRECTORY.value,
                        "now": now,
                        "mode": mode,
                    },
                ),
                ("link", {"parent": parent.ino, "name": name, "ino": inode.ino}),
            ]
        )
        self.stats.add("mkdir")

    def rmdir(self, path: str) -> None:
        self._charge_op()
        parent, name = self._resolve_parent(path)
        try:
            ino = parent.entries[name]
        except KeyError:
            raise FileNotFound(f"{self.fs_name}: {path!r} does not exist")
        inode = self.inodes.get(ino)
        if not inode.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        if inode.entries:
            raise DirectoryNotEmpty(f"{path!r} is not empty")
        del parent.entries[name]
        parent.nlink -= 1
        now = self.clock.now()
        parent.mtime = parent.ctime = now
        self.inodes.free(ino)
        self._record_namespace(
            [
                ("unlink", {"parent": parent.ino, "name": name}),
                ("free_inode", {"ino": ino}),
            ]
        )
        self.stats.add("rmdir")

    def readdir(self, path: str) -> List[str]:
        self._charge_op()
        inode = self._resolve_dir(path)
        self.stats.add("readdir")
        return sorted(inode.entries)

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        handle.ensure_open()
        if not OpenFlags.readable(handle.flags):
            raise InvalidArgument("handle not open for reading")
        if offset < 0 or length < 0:
            raise InvalidArgument("negative offset/length")
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"read from directory {handle.path!r}")
        if offset >= inode.size:
            return b""
        length = min(length, inode.size - offset)
        if length == 0:
            return b""
        out = bytearray(length)
        self._read_span_into(inode, offset, length, out, 0)
        inode.atime = self.clock.now()
        self.stats.add("read")
        self.stats.add("bytes_read", length)
        return bytes(out)

    def read_into(
        self, handle: FileHandle, offset: int, length: int, out: bytearray, out_off: int = 0
    ) -> int:
        """Like :meth:`read`, but assembles straight into ``out`` at
        ``out_off`` and returns the byte count — no intermediate ``bytes``
        object on the cross-layer read path."""
        handle.ensure_open()
        if not OpenFlags.readable(handle.flags):
            raise InvalidArgument("handle not open for reading")
        if offset < 0 or length < 0:
            raise InvalidArgument("negative offset/length")
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"read from directory {handle.path!r}")
        if offset >= inode.size:
            return 0
        length = min(length, inode.size - offset)
        if length == 0:
            return 0
        self._read_span_into(inode, offset, length, out, out_off)
        inode.atime = self.clock.now()
        self.stats.add("read")
        self.stats.add("bytes_read", length)
        return length

    def _read_span_into(
        self, inode: Inode, offset: int, length: int, out: bytearray, out_off: int
    ) -> None:
        """Copy ``[offset, offset+length)`` of ``inode`` into ``out``.

        Default implementation walks file blocks one at a time through
        :meth:`_read_block`; file systems with run-aware indexes override
        this to turn a span into a handful of device accesses.  Holes are
        written as explicit zeros, so ``out`` need not be pre-zeroed.
        """
        pos = offset
        end = offset + length
        dst = out_off
        while pos < end:
            fb, block_off = divmod(pos, self.block_size)
            take = min(end - pos, self.block_size - block_off)
            block = self._read_block(inode, fb)
            if block is None:
                out[dst : dst + take] = bytes(take)
            else:
                out[dst : dst + take] = block[block_off : block_off + take]
            pos += take
            dst += take

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        handle.ensure_open()
        if not OpenFlags.writable(handle.flags):
            raise InvalidArgument("handle not open for writing")
        if offset < 0:
            raise InvalidArgument("negative offset")
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"write to directory {handle.path!r}")
        if not data:
            return 0
        if handle.flags & OpenFlags.APPEND:
            offset = inode.size
        self._write_span(inode, offset, data)
        now = self.clock.now()
        records: List[MetaRecord] = []
        new_size = max(inode.size, offset + len(data))
        if new_size != inode.size:
            inode.size = new_size
            records.append(("set_size", {"ino": inode.ino, "size": new_size}))
        inode.mtime = inode.ctime = now
        records.append(
            ("set_attr", {"ino": inode.ino, "mtime": now, "ctime": now})
        )
        self._record_data_meta(inode, records)
        if handle.flags & OpenFlags.SYNC:
            # O_SYNC promises durability before returning, so it reports
            # writeback failures exactly like fsync does
            try:
                self._fsync_inode(inode)
            except ReproError:
                self._consume_wb_error(handle)
                raise
            self._check_wb_error(handle)
        self.stats.add("write")
        self.stats.add("bytes_written", len(data))
        return len(data)

    def truncate(self, handle: FileHandle, size: int) -> None:
        handle.ensure_open()
        if size < 0:
            raise InvalidArgument("negative size")
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"truncate of directory {handle.path!r}")
        if size < inode.size:
            first_dead = -(-size // self.block_size)
            # zero the tail of the (possibly partial) last kept block
            if size % self.block_size:
                fb = size // self.block_size
                block = self._read_block(inode, fb)
                if block is not None:
                    keep = size % self.block_size
                    self._write_span(
                        inode, fb * self.block_size, block[:keep] + bytes(self.block_size - keep)
                    )
            self._punch_blocks(inode, first_dead)
        now = self.clock.now()
        inode.size = size
        inode.mtime = inode.ctime = now
        self._record_data_meta(
            inode,
            [
                ("set_size", {"ino": inode.ino, "size": size}),
                ("set_attr", {"ino": inode.ino, "mtime": now, "ctime": now}),
            ],
        )
        self.stats.add("truncate")

    def fsync(self, handle: FileHandle) -> None:
        handle.ensure_open()
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        try:
            self._fsync_inode(inode)
        except ReproError:
            # the failure (if writeback-related) is latched on the inode;
            # this fd is observing it through the raised error itself
            self._consume_wb_error(handle)
            raise
        self.stats.add("fsync")
        self._check_wb_error(handle)

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        handle.ensure_open()
        if offset % self.block_size or length % self.block_size:
            raise InvalidArgument("punch_hole requires block-aligned arguments")
        if length <= 0:
            return
        self._charge_op()
        inode = self.inodes.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"punch_hole on directory {handle.path!r}")
        self._punch_range(inode, offset // self.block_size, length // self.block_size)
        self.stats.add("punch_hole")

    # ------------------------------------------------------------------
    # metadata operations
    # ------------------------------------------------------------------

    def _quantize_stat(self, stat: Stat) -> Stat:
        """Round timestamps down to this file system's clock granularity."""
        gran = self.timestamp_granularity
        if gran > 0:
            stat.atime = (stat.atime // gran) * gran
            stat.mtime = (stat.mtime // gran) * gran
            stat.ctime = (stat.ctime // gran) * gran
        return stat

    def getattr(self, path: str) -> Stat:
        self._charge_op()
        inode = self._resolve(path)
        self.stats.add("getattr")
        return self._quantize_stat(inode.stat(self.block_size))

    def setattr(self, path: str, **attrs: object) -> Stat:
        self._charge_op()
        clean = attrs_for_update(attrs)
        inode = self._resolve(path)
        inode.apply_attrs(clean)
        self._record_namespace([("set_attr", {"ino": inode.ino, **clean})])
        self.stats.add("setattr")
        return self._quantize_stat(inode.stat(self.block_size))

    def statfs(self) -> FsStats:
        return FsStats(
            block_size=self.block_size,
            total_blocks=self._total_data_blocks(),
            free_blocks=self._free_data_blocks(),
        )

    # ------------------------------------------------------------------
    # crash / recovery (overridden by journaled file systems)
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Drop volatile state (default: nothing is volatile)."""

    def recover(self) -> None:
        """Rebuild state after a crash (default: nothing to do)."""
