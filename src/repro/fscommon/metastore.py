"""Durable metadata state for the journaled file systems.

A :class:`MetaStore` is the reproduction's model of "what the on-disk
metadata structures say": inode records, directory entries and extent
mappings.  The journaled file systems (XFS, Ext4, Strata's digest area)
keep their fast in-memory state separately and only move the MetaStore
forward in two places:

* ``checkpoint`` — the journal applies committed transactions, and
* ``recover`` — after a simulated crash, the journal is re-scanned and the
  same records are re-applied (idempotently).

Because *only* journal records ever mutate the MetaStore, crash-consistency
tests get the real write-ahead contract: anything that never made it into a
committed transaction does not survive.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Tuple

from repro.errors import FsError
from repro.vfs.stat import FileType

ROOT_INO = 1

ExtentTuple = Tuple[int, int, int]  # (file_block_start, count, device_block_start)


def new_inode_desc(file_type: str, now: float, mode: int) -> Dict[str, object]:
    """A fresh serializable inode description."""
    return {
        "type": file_type,  # "reg" | "dir"
        "size": 0,
        "atime": now,
        "mtime": now,
        "ctime": now,
        "mode": mode,
        "nlink": 2 if file_type == FileType.DIRECTORY.value else 1,
        "entries": {},  # name -> ino (directories)
        "extents": [],  # list of ExtentTuple (regular files)
    }


class MetaStore:
    """Serializable inode/directory/extent state keyed by inode number."""

    def __init__(self) -> None:
        self.inodes: Dict[int, Dict[str, object]] = {}
        self.next_ino = ROOT_INO

    def format(self, now: float) -> None:
        """Create the root directory (mkfs)."""
        self.inodes = {ROOT_INO: new_inode_desc(FileType.DIRECTORY.value, now, 0o755)}
        self.next_ino = ROOT_INO + 1

    def clone(self) -> "MetaStore":
        dup = MetaStore()
        dup.inodes = copy.deepcopy(self.inodes)
        dup.next_ino = self.next_ino
        return dup

    # -- record application ---------------------------------------------------

    def apply(self, kind: str, fields: Dict[str, object]) -> None:
        """Apply one journal record.  Must stay idempotent-friendly: records
        are replayed in order after recovery, and a replayed prefix may have
        been applied already by an earlier checkpoint."""
        handler = getattr(self, f"_apply_{kind}", None)
        if handler is None:
            raise FsError(f"unknown journal record kind {kind!r}")
        handler(**fields)

    def _apply_alloc_inode(
        self, ino: int, file_type: str, now: float, mode: int
    ) -> None:
        self.inodes.setdefault(ino, new_inode_desc(file_type, now, mode))
        self.next_ino = max(self.next_ino, ino + 1)

    def _apply_free_inode(self, ino: int) -> None:
        self.inodes.pop(ino, None)

    def _apply_link(self, parent: int, name: str, ino: int) -> None:
        entries = self._entries(parent)
        entries[name] = ino
        if self.inodes.get(ino, {}).get("type") == FileType.DIRECTORY.value:
            self.inodes[parent]["nlink"] = int(self.inodes[parent]["nlink"])

    def _apply_unlink(self, parent: int, name: str) -> None:
        self._entries(parent).pop(name, None)

    def _apply_set_size(self, ino: int, size: int) -> None:
        self._inode(ino)["size"] = size

    def _apply_set_attr(self, ino: int, **attrs: object) -> None:
        desc = self._inode(ino)
        for key, value in attrs.items():
            if key not in ("atime", "mtime", "ctime", "mode", "nlink"):
                raise FsError(f"bad attribute {key!r} in set_attr record")
            desc[key] = value

    def _apply_map_extent(self, ino: int, start: int, count: int, dev: int) -> None:
        extents = self._extents(ino)
        _remove_range(extents, start, count)
        extents.append((start, count, dev))
        extents.sort()

    def _apply_unmap_extent(self, ino: int, start: int, count: int) -> None:
        _remove_range(self._extents(ino), start, count)

    # -- accessors --------------------------------------------------------------

    def _inode(self, ino: int) -> Dict[str, object]:
        try:
            return self.inodes[ino]
        except KeyError:
            raise FsError(f"metastore has no inode {ino}")

    def _entries(self, ino: int) -> Dict[str, int]:
        return self._inode(ino)["entries"]  # type: ignore[return-value]

    def _extents(self, ino: int) -> List[ExtentTuple]:
        return self._inode(ino)["extents"]  # type: ignore[return-value]

    def allocated_runs(self) -> Iterable[Tuple[int, int]]:
        """All (device_block, count) runs owned by any inode — used to
        rebuild the block allocator after recovery."""
        for desc in self.inodes.values():
            for _start, count, dev in desc["extents"]:  # type: ignore[union-attr]
                yield dev, count


def _remove_range(extents: List[ExtentTuple], start: int, count: int) -> None:
    """Remove [start, start+count) from a serialized extent list, splitting."""
    end = start + count
    result: List[ExtentTuple] = []
    for ext_start, ext_count, dev in extents:
        ext_end = ext_start + ext_count
        if ext_end <= start or ext_start >= end:
            result.append((ext_start, ext_count, dev))
            continue
        if ext_start < start:
            result.append((ext_start, start - ext_start, dev))
        if ext_end > end:
            off = end - ext_start
            result.append((end, ext_end - end, dev + off))
    extents[:] = sorted(result)
