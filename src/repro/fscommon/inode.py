"""Inodes and the inode table shared by the native file systems."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import FsError, InvalidArgument
from repro.fscommon.extents import ExtentTree
from repro.vfs.stat import FileType, Stat


class Inode:
    """One file or directory inside a native file system."""

    __slots__ = (
        "ino",
        "file_type",
        "size",
        "atime",
        "mtime",
        "ctime",
        "mode",
        "nlink",
        "blockmap",
        "entries",
        "allocated_blocks",
        "private",
    )

    def __init__(
        self, ino: int, file_type: FileType, now: float, mode: int
    ) -> None:
        self.ino = ino
        self.file_type = file_type
        self.size = 0
        self.atime = now
        self.mtime = now
        self.ctime = now
        self.mode = mode
        self.nlink = 2 if file_type is FileType.DIRECTORY else 1
        #: file-block -> device-block mapping (regular files only)
        self.blockmap: ExtentTree = ExtentTree(value_is_offset=True)
        #: name -> ino (directories only)
        self.entries: Dict[str, int] = {}
        #: device blocks owned by this inode (space accounting)
        self.allocated_blocks = 0
        #: per-FS private state (e.g. NOVA's per-inode log)
        self.private: Optional[object] = None

    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    def stat(self, block_size: int) -> Stat:
        return Stat(
            ino=self.ino,
            file_type=self.file_type,
            size=self.size,
            blocks=self.allocated_blocks * (block_size // 512),
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
            mode=self.mode,
            nlink=self.nlink,
        )

    def apply_attrs(self, attrs: Dict[str, object]) -> None:
        """Apply a validated setattr dict to this inode."""
        for name, value in attrs.items():
            if name in ("atime", "mtime", "ctime"):
                if not isinstance(value, (int, float)):
                    raise InvalidArgument(f"{name} must be a number")
                setattr(self, name, float(value))
            elif name == "mode":
                if not isinstance(value, int):
                    raise InvalidArgument("mode must be an int")
                self.mode = value
            else:
                raise InvalidArgument(f"unknown attribute {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "dir" if self.is_dir else "file"
        return f"Inode({self.ino}, {kind}, size={self.size})"


class InodeTable:
    """Allocates inode numbers and stores live inodes."""

    ROOT_INO = 1

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = self.ROOT_INO

    def alloc(self, file_type: FileType, now: float, mode: int) -> Inode:
        inode = Inode(self._next_ino, file_type, now, mode)
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    def restore(self, ino: int, file_type: FileType, now: float, mode: int) -> Inode:
        """Recreate an inode with a specific number (crash recovery path)."""
        if ino in self._inodes:
            raise FsError(f"inode {ino} already present")
        inode = Inode(ino, file_type, now, mode)
        self._inodes[ino] = inode
        self._next_ino = max(self._next_ino, ino + 1)
        return inode

    def get(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise FsError(f"stale inode number {ino}")

    def maybe_get(self, ino: int) -> Optional[Inode]:
        return self._inodes.get(ino)

    def free(self, ino: int) -> Inode:
        try:
            return self._inodes.pop(ino)
        except KeyError:
            raise FsError(f"freeing unknown inode {ino}")

    def __len__(self) -> int:
        return len(self._inodes)

    def __iter__(self):
        return iter(self._inodes.values())
