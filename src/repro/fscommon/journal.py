"""Write-ahead metadata journal (JBD2-style) over a device region.

Used by the Ext4 and XFS models (and by Strata's digest path).  The journal
is a linear log of committed transactions inside a reserved block range of
the device.  A transaction becomes durable exactly when its commit block
write returns; crash simulation therefore re-reads the region and replays
only transactions whose commit record made it out — the standard
write-ahead contract, testable end-to-end.

Record framing (per transaction)::

    block 0..n-1:  [MAGIC][seq][payload_len][pickled records...]
    last block:    includes COMMIT_MAGIC trailer after the payload

A transaction always occupies whole blocks; the payload is pickled Python
tuples ``(kind, fields_dict)``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Callable, Dict, List, Tuple

from repro.devices.base import Device
from repro.errors import FsError
from repro.sim.stats import CounterSet

MAGIC = 0x4A524E4C  # "JRNL"
COMMIT_MAGIC = 0x434D5421  # "CMT!"
_HEADER = struct.Struct("<IQI")  # magic, seq, payload_len
_TRAILER = struct.Struct("<I")

JournalRecord = Tuple[str, Dict[str, object]]
ApplyFn = Callable[[str, Dict[str, object]], None]


class JournalFull(FsError):
    """The journal region is out of space; checkpoint and retry."""


class Transaction:
    """An open transaction accumulating records until commit."""

    def __init__(self, journal: "Journal") -> None:
        self._journal = journal
        self._records: List[JournalRecord] = []
        self._committed = False

    def add(self, kind: str, **fields: object) -> None:
        if self._committed:
            raise FsError("transaction already committed")
        self._records.append((kind, fields))

    @property
    def records(self) -> List[JournalRecord]:
        return list(self._records)

    def commit(self) -> None:
        """Write the transaction to the journal region; durable on return."""
        if self._committed:
            raise FsError("transaction already committed")
        self._committed = True
        if self._records:
            self._journal._write_txn(self._records)


class Journal:
    """Linear write-ahead log in ``device`` blocks [start, start+length)."""

    def __init__(self, device: Device, start_block: int, num_blocks: int) -> None:
        if num_blocks < 2:
            raise ValueError("journal needs at least 2 blocks")
        self.device = device
        self.start_block = start_block
        self.num_blocks = num_blocks
        self.block_size = device.block_size
        self._head = 0  # next free block offset within the region
        self._seq = 1
        #: committed but not yet checkpointed transactions, in order
        self._pending: List[Tuple[int, List[JournalRecord]]] = []
        self.stats = CounterSet()

    # -- write path ------------------------------------------------------------

    def begin(self) -> Transaction:
        return Transaction(self)

    def _write_txn(self, records: List[JournalRecord]) -> None:
        payload = pickle.dumps(records)
        body_len = _HEADER.size + len(payload) + _TRAILER.size
        blocks_needed = -(-body_len // self.block_size)
        if self._head + blocks_needed > self.num_blocks:
            raise JournalFull(
                f"journal full: need {blocks_needed} blocks, "
                f"{self.num_blocks - self._head} free"
            )
        frame = bytearray(blocks_needed * self.block_size)
        _HEADER.pack_into(frame, 0, MAGIC, self._seq, len(payload))
        frame[_HEADER.size : _HEADER.size + len(payload)] = payload
        _TRAILER.pack_into(frame, _HEADER.size + len(payload), COMMIT_MAGIC)
        self.device.write_blocks(self.start_block + self._head, bytes(frame))
        self._pending.append((self._seq, records))
        self._head += blocks_needed
        self._seq += 1
        self.stats.add("commits")
        self.stats.add("journal_blocks", blocks_needed)

    # -- checkpoint -------------------------------------------------------------

    @property
    def pending_transactions(self) -> int:
        return len(self._pending)

    @property
    def free_blocks(self) -> int:
        return self.num_blocks - self._head

    def checkpoint(self, apply_fn: ApplyFn) -> int:
        """Apply all pending transactions in order and reset the log.

        Returns the number of transactions applied.  ``apply_fn`` is called
        once per record; it must be idempotent (replays happen after crash).
        """
        applied = 0
        for _, records in self._pending:
            for kind, fields in records:
                apply_fn(kind, fields)
            applied += 1
        self._pending.clear()
        # Logically truncate the log.  A real journal writes a new superblock;
        # we model that as one block write.
        reset = bytes(self.block_size)
        self.device.write_blocks(self.start_block, reset)
        self._head = 0
        self.stats.add("checkpoints")
        return applied

    # -- recovery ---------------------------------------------------------------

    @staticmethod
    def _valid_records(records: object) -> bool:
        """Structural check on an unpickled payload: list of (str, dict)."""
        if not isinstance(records, list):
            return False
        for record in records:
            if not (isinstance(record, tuple) and len(record) == 2):
                return False
            kind, fields = record
            if not isinstance(kind, str) or not isinstance(fields, dict):
                return False
        return True

    def recover(self) -> List[List[JournalRecord]]:
        """Scan the journal region and return committed transactions in order.

        Used after a simulated crash: volatile state is gone, so the scan
        trusts only what the device holds.  The scan stops at the first
        malformed or missing frame (torn transaction = never committed).
        """
        recovered: List[List[JournalRecord]] = []
        offset = 0
        prev_seq = None
        while offset < self.num_blocks:
            header_block = self.device.read_blocks(self.start_block + offset, 1)
            magic, seq, payload_len = _HEADER.unpack_from(header_block, 0)
            if magic != MAGIC:
                break
            # sequence numbers are strictly consecutive within one log
            # generation; a jump means we ran into stale frames left over
            # from before the last checkpoint reset
            if prev_seq is not None and seq != prev_seq + 1:
                break
            body_len = _HEADER.size + payload_len + _TRAILER.size
            blocks = -(-body_len // self.block_size)
            if offset + blocks > self.num_blocks:
                break
            if blocks > 1:
                rest = self.device.read_blocks(self.start_block + offset + 1, blocks - 1)
                frame = header_block + rest
            else:
                frame = header_block
            (trailer,) = _TRAILER.unpack_from(frame, _HEADER.size + payload_len)
            if trailer != COMMIT_MAGIC:
                break  # torn write: commit record missing
            payload = bytes(frame[_HEADER.size : _HEADER.size + payload_len])
            try:
                records = pickle.loads(payload)
            except Exception:
                break
            # garbage bytes can unpickle into *something* (torn write that
            # preserved the framing but scrambled the payload); anything
            # that is not a well-formed record list is end-of-log
            if not self._valid_records(records):
                break
            recovered.append(records)
            prev_seq = seq
            offset += blocks
        self._head = offset
        self._pending = [(i + 1, recs) for i, recs in enumerate(recovered)]
        if prev_seq is not None:
            self._seq = prev_seq + 1  # never reuse sequence numbers
        self.stats.add("recoveries")
        return recovered
