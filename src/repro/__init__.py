"""repro — reproduction of "Rethinking Tiered Storage: Talk to File
Systems, Not Device Drivers" (HotOS '25): the Mux tiered file system, its
native-file-system substrates (NOVA/XFS/Ext4 models over simulated PM,
SSD and HDD devices), and the Strata baseline.

Quick start::

    from repro import build_stack

    stack = build_stack()            # PM + SSD + HDD, LRU tiering policy
    mux = stack.mux
    h = mux.create("/data.bin")
    mux.write(h, 0, b"hello tiered world")
    print(mux.read(h, 0, 18))
"""

from repro.stack import Stack, build_stack

__version__ = "1.0.0"

__all__ = ["Stack", "build_stack", "__version__"]
