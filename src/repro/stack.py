"""One-call assembly of the paper's storage stack.

The evaluation hierarchy (§3.1) is PM + SSD + HDD running NOVA, XFS and
Ext4 respectively, with Mux multiplexing over them.  Building that stack
by hand takes ~20 lines of setup; :func:`build_stack` does it in one call
and returns every piece so tests, benchmarks and examples can poke at any
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Union

from repro.core.mux import MuxFileSystem
from repro.core.policy import Policy, make_policy
from repro.core.scheduler import IoScheduler
from repro.devices.faults import FaultConfig, FaultInjector
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import (
    DEFAULT_SPIKE_MULT,
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
    DeviceProfile,
)
from repro.sim.rng import DeterministicRng
from repro.devices.ssd import SolidStateDrive
from repro.errors import InvalidArgument
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.vfs.vfs import VFS

MIB = 1024 * 1024
GIB = 1024 * MIB

#: capacity defaults, scaled down from the paper's testbed so simulations
#: stay fast; ratios between tiers are preserved (PM < SSD < HDD)
DEFAULT_CAPACITIES = {
    "pm": 64 * MIB,
    "ssd": 256 * MIB,
    "hdd": 1 * GIB,
}

MOUNTS = {"pm": "/tiers/pm", "ssd": "/tiers/ssd", "hdd": "/tiers/hdd"}


@dataclass
class Stack:
    """Everything :func:`build_stack` assembled."""

    clock: SimClock
    vfs: VFS
    mux: MuxFileSystem
    devices: Dict[str, object] = field(default_factory=dict)
    filesystems: Dict[str, object] = field(default_factory=dict)
    tier_ids: Dict[str, int] = field(default_factory=dict)
    #: per-tier fault injectors (empty unless ``build_stack(faults=...)``)
    injectors: Dict[str, FaultInjector] = field(default_factory=dict)

    def tier_id(self, name: str) -> int:
        return self.tier_ids[name]


def build_stack(
    tiers: Optional[List[str]] = None,
    capacities: Optional[Dict[str, int]] = None,
    policy: Optional[Union[Policy, str]] = None,
    enable_cache: bool = True,
    cache_write_back: bool = False,
    cache_scan_resist: bool = False,
    scheduler: Optional[IoScheduler] = None,
    blt_factory=None,
    clock: Optional[SimClock] = None,
    faults: Optional[Dict[str, FaultConfig]] = None,
    fault_seed: int = 2025,
    profiles: Optional[Dict[str, "DeviceProfile"]] = None,
    readahead_background: bool = False,
    pressure_interval_ns: Optional[int] = None,
) -> Stack:
    """Assemble devices, native file systems, the VFS and Mux.

    ``tiers`` selects a subset of ``["pm", "ssd", "hdd"]`` (default: all
    three, the paper's hierarchy).  Each tier gets its paper-matched
    device and file system: NOVA on PM, XFS on SSD, Ext4 on HDD.

    ``policy`` accepts either a :class:`Policy` instance or a registered
    policy name (``make_policy`` shorthand, used by the head-to-head
    benchmarks that sweep the registry).

    ``pressure_interval_ns`` overrides the PressureMonitor's sampling
    interval — shorter means placement reacts to a burst sooner, at a
    little more host CPU per operation.

    ``faults`` maps tier names to :class:`FaultConfig`s; each named tier's
    device gets a :class:`FaultInjector` with an independent rng substream
    derived from ``fault_seed`` and the tier name, so schedules are
    reproducible per device regardless of which other tiers are faulted.
    A tier absent from the map (or a ``None`` map — the default) has no
    injector and charges not one extra nanosecond.

    ``profiles`` maps tier names to replacement :class:`DeviceProfile`s —
    typically ``dataclasses.replace(CATALOG[name], knee_depth=..., ...)``
    to enable the queue-depth saturation knee for an overload experiment
    without disturbing the catalog defaults every other workload pins.

    ``readahead_background=True`` moves each native file system's
    speculative readahead tail onto background clock frames (reserved
    device channels), so prefetch overlaps the demand read instead of
    serializing after it.  Off by default — the timing model is
    bit-identical unless a stack opts in.
    """
    tiers = list(tiers) if tiers is not None else ["pm", "ssd", "hdd"]
    caps = dict(DEFAULT_CAPACITIES)
    if capacities:
        caps.update(capacities)
    clock = clock if clock is not None else SimClock()
    vfs = VFS(clock)

    if isinstance(policy, str):
        policy = make_policy(policy)
    kwargs = {}
    if blt_factory is not None:
        kwargs["blt_factory"] = blt_factory
    mux = MuxFileSystem(
        vfs,
        clock,
        policy=policy,
        enable_cache=enable_cache,
        cache_write_back=cache_write_back,
        cache_scan_resist=cache_scan_resist,
        scheduler=scheduler,
        **kwargs,
    )
    if pressure_interval_ns is not None:
        mux.pressure.sample_interval_ns = pressure_interval_ns

    devices: Dict[str, object] = {}
    filesystems: Dict[str, object] = {}
    tier_ids: Dict[str, int] = {}
    overrides = profiles or {}
    for override in overrides:
        if override not in tiers:
            raise InvalidArgument(f"profile override for unknown tier {override!r}")
    for name in tiers:
        if name == "pm":
            profile = overrides.get("pm", OPTANE_PMEM_200)
            device = PersistentMemoryDevice("pm0", caps["pm"], clock, profile)
            fs = NovaFileSystem("nova", device, clock)
        elif name == "ssd":
            profile = overrides.get("ssd", OPTANE_SSD_P4800X)
            device = SolidStateDrive("ssd0", caps["ssd"], clock, profile)
            fs = XfsFileSystem("xfs", device, clock)
        elif name == "hdd":
            profile = overrides.get("hdd", SEAGATE_EXOS_X18)
            device = HardDiskDrive("hdd0", caps["hdd"], clock, profile)
            fs = Ext4FileSystem("ext4", device, clock)
        else:
            raise InvalidArgument(f"unknown tier {name!r}")
        if readahead_background and hasattr(type(fs), "readahead_background"):
            fs.readahead_background = True
        vfs.mount(MOUNTS[name], fs)
        tier = mux.add_tier(name, fs, MOUNTS[name], profile)
        devices[name] = device
        filesystems[name] = fs
        tier_ids[name] = tier.tier_id

    injectors: Dict[str, FaultInjector] = {}
    if faults:
        fault_rng = DeterministicRng(fault_seed)
        for name, config in faults.items():
            if name not in devices:
                raise InvalidArgument(f"faults for unknown tier {name!r}")
            device = devices[name]
            if config.latency_spike_p and config.latency_spike_mult is None:
                # tier-appropriate default: a PM spike is mild, an HDD
                # seek storm is not
                kind = mux.registry.by_name(name).kind
                config = replace(
                    config,
                    latency_spike_mult=DEFAULT_SPIKE_MULT.get(kind, 8.0),
                )
            injector = FaultInjector(name, config, fault_rng.fork(name))
            device.set_fault_injector(injector)  # type: ignore[attr-defined]
            injectors[name] = injector

    vfs.mount("/mux", mux)
    return Stack(
        clock=clock,
        vfs=vfs,
        mux=mux,
        devices=devices,
        filesystems=filesystems,
        tier_ids=tier_ids,
        injectors=injectors,
    )


def build_cluster(shards: int = 2, **kwargs):
    """Assemble ``shards`` full stacks on one SimClock behind a ClusterMux.

    Convenience re-export of :func:`repro.cluster.cluster.build_cluster`
    (imported lazily — the cluster package imports this module for
    :func:`build_stack`); cluster-level knobs (``vnodes``, ``rtt_us``,
    ``bandwidth``) and per-shard ``build_stack`` knobs all pass through.
    """
    from repro.cluster.cluster import build_cluster as _build

    return _build(shards=shards, **kwargs)
