"""One-call assembly of the paper's storage stack.

The evaluation hierarchy (§3.1) is PM + SSD + HDD running NOVA, XFS and
Ext4 respectively, with Mux multiplexing over them.  Building that stack
by hand takes ~20 lines of setup; :func:`build_stack` does it in one call
and returns every piece so tests, benchmarks and examples can poke at any
layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.mux import MuxFileSystem
from repro.core.policy import Policy
from repro.core.scheduler import IoScheduler
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import (
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
)
from repro.devices.ssd import SolidStateDrive
from repro.errors import InvalidArgument
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.vfs.vfs import VFS

MIB = 1024 * 1024
GIB = 1024 * MIB

#: capacity defaults, scaled down from the paper's testbed so simulations
#: stay fast; ratios between tiers are preserved (PM < SSD < HDD)
DEFAULT_CAPACITIES = {
    "pm": 64 * MIB,
    "ssd": 256 * MIB,
    "hdd": 1 * GIB,
}

MOUNTS = {"pm": "/tiers/pm", "ssd": "/tiers/ssd", "hdd": "/tiers/hdd"}


@dataclass
class Stack:
    """Everything :func:`build_stack` assembled."""

    clock: SimClock
    vfs: VFS
    mux: MuxFileSystem
    devices: Dict[str, object] = field(default_factory=dict)
    filesystems: Dict[str, object] = field(default_factory=dict)
    tier_ids: Dict[str, int] = field(default_factory=dict)

    def tier_id(self, name: str) -> int:
        return self.tier_ids[name]


def build_stack(
    tiers: Optional[List[str]] = None,
    capacities: Optional[Dict[str, int]] = None,
    policy: Optional[Policy] = None,
    enable_cache: bool = True,
    scheduler: Optional[IoScheduler] = None,
    blt_factory=None,
    clock: Optional[SimClock] = None,
) -> Stack:
    """Assemble devices, native file systems, the VFS and Mux.

    ``tiers`` selects a subset of ``["pm", "ssd", "hdd"]`` (default: all
    three, the paper's hierarchy).  Each tier gets its paper-matched
    device and file system: NOVA on PM, XFS on SSD, Ext4 on HDD.
    """
    tiers = list(tiers) if tiers is not None else ["pm", "ssd", "hdd"]
    caps = dict(DEFAULT_CAPACITIES)
    if capacities:
        caps.update(capacities)
    clock = clock if clock is not None else SimClock()
    vfs = VFS(clock)

    kwargs = {}
    if blt_factory is not None:
        kwargs["blt_factory"] = blt_factory
    mux = MuxFileSystem(
        vfs,
        clock,
        policy=policy,
        enable_cache=enable_cache,
        scheduler=scheduler,
        **kwargs,
    )

    devices: Dict[str, object] = {}
    filesystems: Dict[str, object] = {}
    tier_ids: Dict[str, int] = {}
    for name in tiers:
        if name == "pm":
            device = PersistentMemoryDevice("pm0", caps["pm"], clock)
            fs = NovaFileSystem("nova", device, clock)
            profile = OPTANE_PMEM_200
        elif name == "ssd":
            device = SolidStateDrive("ssd0", caps["ssd"], clock)
            fs = XfsFileSystem("xfs", device, clock)
            profile = OPTANE_SSD_P4800X
        elif name == "hdd":
            device = HardDiskDrive("hdd0", caps["hdd"], clock)
            fs = Ext4FileSystem("ext4", device, clock)
            profile = SEAGATE_EXOS_X18
        else:
            raise InvalidArgument(f"unknown tier {name!r}")
        vfs.mount(MOUNTS[name], fs)
        tier = mux.add_tier(name, fs, MOUNTS[name], profile)
        devices[name] = device
        filesystems[name] = fs
        tier_ids[name] = tier.tier_id

    vfs.mount("/mux", mux)
    return Stack(
        clock=clock,
        vfs=vfs,
        mux=mux,
        devices=devices,
        filesystems=filesystems,
        tier_ids=tier_ids,
    )
