"""Exhaustive crash-state explorer for the Mux stack.

``test_crash_injection`` samples crash points on a *single* native file
system with hypothesis; this tool enumerates **every** media-write
boundary of a canonical workload on the *full* PM+SSD+HDD Mux stack and
crashes at each one — plus torn-prefix variants for multi-block writes —
then recovers and checks the whole stack:

* every native file system passes fsck (``check_native_fs``);
* the Mux cross-FS invariants hold (``check_mux``, deep);
* ``reconcile_cache`` drains crash-surviving dirty SCM blocks, and a
  second deep check passes afterwards;
* the one-sided durability contract holds: bytes fsync'd before the
  crash (and stable since) read back exactly; un-fsynced bytes may hold
  old, new, or zero — never garbage;
* the recovered stack stays usable (create/write/fsync/read round-trip).

Each media write is labeled with the highest-level sync point that issued
it — journal commit, checkpoint, destage batch, BLT commit/migration
two-phase step, mirror-sync copy — so the report says not just *where*
the stack survives power loss but *during what*.

The mirror extension additionally asserts that recovery never leaves a
mirror interval *clean*: a crash invalidates every replica (they are
re-synced lazily), so a recovered stack can never serve a stale mirror
as if it were the authoritative copy.

Run via ``python -m repro.bench crashexplore [--smoke]`` or
``python -m repro.tools.crashexplore``.  ``--smoke`` explores a strided
subset (every label represented) for CI; the full sweep visits every
state.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.mux import MuxFileSystem
from repro.core.policy import MigrationOrder
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import (
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
)
from repro.devices.ssd import SolidStateDrive
from repro.errors import CrashTriggered, ReproError
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.tools import fsck
from repro.vfs.vfs import VFS

MIB = 1024 * 1024
BS = 4096

#: states explored by ``--smoke`` (full mode visits every state)
SMOKE_STATES = 16


# ---------------------------------------------------------------------------
# tapped devices: every media write reports to the explorer before landing
# ---------------------------------------------------------------------------


class TappedPm(PersistentMemoryDevice):
    """PM device whose stores are crash points (no torn variant: a single
    store is a cache-line-granular operation, atomic in the NOVA model)."""

    explorer: Optional["CrashExplorer"] = None

    def store(self, addr: int, data) -> None:
        if self.explorer is not None:
            self.explorer.on_media_write(self.name, 1)
        super().store(addr, data)


class _TappedBlockDevice:
    """Mixin for block devices: multi-block writes get torn variants."""

    explorer: Optional["CrashExplorer"] = None

    def write_blocks(self, block_no: int, data) -> None:
        if self.explorer is not None:
            count = len(data) // self.block_size
            prefix = self.explorer.on_media_write(self.name, count)
            if prefix:
                # torn write: a prefix of the payload reached media before
                # the power failed
                self._write_span_raw(
                    block_no, data[: prefix * self.block_size]
                )
                raise CrashTriggered(
                    f"power lost mid-write on {self.name}: "
                    f"{prefix}/{count} blocks landed"
                )
        super().write_blocks(block_no, data)  # type: ignore[misc]


class TappedSsd(_TappedBlockDevice, SolidStateDrive):
    pass


class TappedHdd(_TappedBlockDevice, HardDiskDrive):
    pass


# ---------------------------------------------------------------------------
# sync points
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashPoint:
    """One media-write boundary of the recorded workload."""

    index: int  # global write-op index across all devices
    label: str  # enclosing sync point ("journal_commit", "destage", ...)
    device: str
    blocks: int  # payload size; > 1 enables the torn variant


@dataclass
class StateResult:
    """Outcome of crashing at one point (one variant) and recovering."""

    point: CrashPoint
    variant: str  # "cut" (nothing landed) or "torn" (prefix landed)
    problems: List[str] = field(default_factory=list)
    lost_reported: List[str] = field(default_factory=list)
    recovered_now_ns: int = 0

    @property
    def ok(self) -> bool:
        return not self.problems


# ---------------------------------------------------------------------------
# durability oracle (crash-safe bookkeeping: writes recorded as *issued*)
# ---------------------------------------------------------------------------


class DurabilityOracle:
    """One-sided durability contract over the Mux.

    ``written`` is updated *before* the write is issued, so a crash in the
    middle of the operation still knows both the old and the new value a
    byte may legally hold.  ``synced`` snapshots only after fsync returns.
    """

    def __init__(self, mux: MuxFileSystem) -> None:
        self.mux = mux
        self.written: Dict[str, bytes] = {}
        self.synced: Dict[str, bytes] = {}
        self.deleted: set = set()

    def write(self, handle, path: str, offset: int, data: bytes) -> None:
        buf = bytearray(self.written.get(path, b""))
        if len(buf) < offset + len(data):
            buf.extend(bytes(offset + len(data) - len(buf)))
        buf[offset : offset + len(data)] = data
        self.written[path] = bytes(buf)
        self.mux.write(handle, offset, data)

    def fsync(self, handle, path: str) -> None:
        self.mux.fsync(handle)
        self.synced[path] = self.written[path]

    def unlink(self, path: str) -> None:
        self.written.pop(path, None)
        self.synced.pop(path, None)
        self.deleted.add(path)
        self.mux.unlink(path)

    def verify(self) -> List[str]:
        """Check every fsync'd file; returns problem strings (empty=ok)."""
        problems: List[str] = []
        for path, old in sorted(self.synced.items()):
            new = self.written.get(path)
            if not self.mux.exists(path):
                if path not in self.deleted:
                    problems.append(f"{path}: vanished without an unlink")
                continue
            got = self.mux.read_file(path)
            lengths = {len(old)}
            if new is not None:
                lengths.add(len(new))
            if len(got) not in lengths:
                problems.append(
                    f"{path}: size {len(got)} not in {sorted(lengths)}"
                )
                continue
            for i, byte in enumerate(got):
                allowed = {0}  # uncommitted size growth reads as holes
                if i < len(old):
                    allowed.add(old[i])
                if new is not None and i < len(new):
                    allowed.add(new[i])
                if byte not in allowed:
                    problems.append(
                        f"{path}: byte {i} = {byte} not in {sorted(allowed)}"
                    )
                    break
                # the hard guarantee: stable fsync'd bytes must match
                if i < len(old) and (
                    new is None or (i < len(new) and new[i] == old[i])
                ):
                    if byte != old[i]:
                        problems.append(f"{path}: fsync'd byte {i} lost")
                        break
        return problems


# ---------------------------------------------------------------------------
# the explorer
# ---------------------------------------------------------------------------


@dataclass
class _Stack:
    clock: SimClock
    vfs: VFS
    mux: MuxFileSystem
    devices: Dict[str, object]
    filesystems: Dict[str, object]
    tier_ids: Dict[str, int]


class CrashExplorer:
    """Census + replay harness over the canonical workload."""

    def __init__(self) -> None:
        self.mode = "census"  # "census" | "armed"
        self.points: List[CrashPoint] = []
        self.op_index = 0
        self.target: Optional[int] = None
        self.torn_prefix = 0
        self.fired = False
        self._labels: List[str] = []

    # -- device callback -------------------------------------------------

    def on_media_write(self, device: str, blocks: int) -> int:
        """Called before each media write.  Returns a torn prefix (blocks)
        to land before dying, or raises :class:`CrashTriggered` for a
        clean cut; 0 means the write proceeds normally."""
        if self.fired:
            raise CrashTriggered("power is off")
        idx = self.op_index
        self.op_index += 1
        if self.mode == "census":
            label = self._labels[-1] if self._labels else "data_write"
            self.points.append(CrashPoint(idx, label, device, blocks))
            return 0
        if self.target is not None and idx == self.target:
            self.fired = True
            if self.torn_prefix and blocks > 1:
                return min(self.torn_prefix, blocks - 1)
            raise CrashTriggered(f"power lost at media write #{idx}")
        return 0

    def checkpoint(self) -> None:
        """Workload-level backstop: some layers legally absorb I/O errors
        (a ring CQE, a destage retry), so after each workload op we stop
        the world ourselves if the power has gone out."""
        if self.fired:
            raise CrashTriggered("power is off")

    # -- sync-point labeling ---------------------------------------------

    def _wrap_label(self, obj, method_name: str, label: str) -> None:
        inner = getattr(obj, method_name)

        def wrapper(*args, **kwargs):
            self._labels.append(label)
            try:
                return inner(*args, **kwargs)
            finally:
                self._labels.pop()

        setattr(obj, method_name, wrapper)

    def _wrap_label_gen(self, obj, method_name: str, label: str) -> None:
        """Generator-function variant: the label must cover *iteration*,
        not just the call that builds the generator object."""
        inner = getattr(obj, method_name)

        def wrapper(*args, **kwargs):
            def run():
                self._labels.append(label)
                try:
                    yield from inner(*args, **kwargs)
                finally:
                    self._labels.pop()

            return run()

        setattr(obj, method_name, wrapper)

    # -- stack assembly ---------------------------------------------------

    def build_stack(self) -> _Stack:
        """PM+SSD+HDD write-back stack on tapped devices.

        Devices are attached to the explorer only *after* assembly, so
        setup traffic (cache-file preallocation, mkfs-equivalents) is not
        part of the explored workload.
        """
        clock = SimClock()
        vfs = VFS(clock)
        mux = MuxFileSystem(vfs, clock, cache_write_back=True)
        pm = TappedPm("pm", 16 * MIB, clock, OPTANE_PMEM_200)
        ssd = TappedSsd("ssd", 32 * MIB, clock, OPTANE_SSD_P4800X)
        hdd = TappedHdd("hdd", 64 * MIB, clock, SEAGATE_EXOS_X18)
        nova = NovaFileSystem("nova", pm, clock)
        xfs = XfsFileSystem("xfs", ssd, clock)
        ext4 = Ext4FileSystem("ext4", hdd, clock)
        mounts = {"pm": "/tiers/pm", "ssd": "/tiers/ssd", "hdd": "/tiers/hdd"}
        profiles = {
            "pm": OPTANE_PMEM_200,
            "ssd": OPTANE_SSD_P4800X,
            "hdd": SEAGATE_EXOS_X18,
        }
        filesystems = {"pm": nova, "ssd": xfs, "hdd": ext4}
        devices = {"pm": pm, "ssd": ssd, "hdd": hdd}
        tier_ids = {}
        for name in ("pm", "ssd", "hdd"):
            vfs.mount(mounts[name], filesystems[name])
            tier = mux.add_tier(
                name, filesystems[name], mounts[name], profiles[name]
            )
            tier_ids[name] = tier.tier_id
        vfs.mount("/mux", mux)
        # power taps on
        for device in devices.values():
            device.explorer = self
        # sync-point labels (instance-level wrappers; census + replay see
        # the same call structure, so indices line up run to run)
        self._wrap_label(mux, "_destage_blocks", "destage")
        self._wrap_label(mux.mirrors, "_media_write", "mirror_sync")
        self._wrap_label(mux, "blt_commit_move", "blt_commit")
        self._wrap_label_gen(mux.engine.occ, "_copy_runs", "migration_copy")
        self._wrap_label(mux.engine.occ, "_commit", "migration_commit")
        for fs in (xfs, ext4):
            self._wrap_label(fs.journal, "_write_txn", "journal_commit")
            self._wrap_label(fs.journal, "checkpoint", "checkpoint")
        return _Stack(clock, vfs, mux, devices, filesystems, tier_ids)

    @staticmethod
    def detach(stack: _Stack) -> None:
        """Power restored: recovery and verification I/O is not explored."""
        for device in stack.devices.values():
            device.explorer = None

    # -- canonical workload -----------------------------------------------

    def workload(self, stack: _Stack, oracle: DurabilityOracle) -> None:
        """The recorded workload: covers data writes, fsyncs, migrations
        (two-phase copy + BLT commit), cache absorption + destaging,
        journal commits/checkpoints, and an unlink window."""
        mux = stack.mux
        ck = self.checkpoint
        pm, ssd, hdd = (stack.tier_ids[n] for n in ("pm", "ssd", "hdd"))

        a = mux.create("/a"); ck()
        oracle.write(a, "/a", 0, b"A" * (8 * BS)); ck()
        oracle.fsync(a, "/a"); ck()
        b = mux.create("/b"); ck()
        oracle.write(b, "/b", 0, b"C" * (4 * BS)); ck()
        oracle.fsync(b, "/b"); ck()

        # two-phase migrations: PM -> HDD (ext4 journal) and PM -> SSD
        # (XFS delayed allocation), each ending in a BLT commit
        mux.engine.migrate_now(MigrationOrder(a.ino, 0, 8, pm, hdd)); ck()
        mux.engine.migrate_now(MigrationOrder(b.ino, 0, 4, pm, ssd)); ck()

        # warm the SCM cache, then absorb writes and destage via fsync
        mux.read(a, 0, 8 * BS); ck()
        mux.read(b, 0, 4 * BS); ck()
        oracle.write(a, "/a", 2 * BS, b"B" * BS); ck()
        oracle.fsync(a, "/a"); ck()
        oracle.write(a, "/a", 5 * BS, b"D" * (2 * BS)); ck()
        oracle.fsync(a, "/a"); ck()
        oracle.write(b, "/b", 1 * BS, b"E" * BS); ck()
        oracle.fsync(b, "/b"); ck()

        # mirror the HDD-resident /a onto SSD and PM: the sync engine's
        # copies are their own labeled sync points ("mirror_sync"), with
        # torn variants on the SSD's multi-block writes; the second sync
        # covers the stale-interval re-convergence path
        ia = mux.ns.resolve("/a")
        mux.mirrors.add_mirror(ia, ssd); ck()
        mux.mirrors.add_mirror(ia, pm); ck()
        mux.mirrors.sync_file(ia); ck()
        oracle.write(a, "/a", 3 * BS, b"G" * BS); ck()
        oracle.fsync(a, "/a"); ck()
        mux.mirrors.sync_file(ia); ck()

        # an un-fsynced file plus its unlink: crashes inside the unlink
        # window exercise the mount-time orphan reconciliation
        t = mux.create("/tmp"); ck()
        oracle.write(t, "/tmp", 0, b"T" * (2 * BS)); ck()
        mux.close(t); ck()
        oracle.unlink("/tmp"); ck()

        oracle.write(a, "/a", 0, b"F" * BS); ck()
        oracle.fsync(a, "/a"); ck()
        mux.close(a); ck()
        mux.close(b); ck()
        mux.sync(); ck()

    # -- passes ------------------------------------------------------------

    def census(self) -> List[CrashPoint]:
        """Pass 1: run the workload once, recording every sync point."""
        self.mode = "census"
        self.points = []
        self.op_index = 0
        self.fired = False
        stack = self.build_stack()
        oracle = DurabilityOracle(stack.mux)
        self.workload(stack, oracle)
        # healthy-path sanity: the uncrashed end state must be clean
        self.detach(stack)
        for name, fs in stack.filesystems.items():
            problems = fsck.check_native_fs(fs)
            if problems:
                raise ReproError(
                    f"census: fsck[{name}] dirty without a crash: {problems[0]}"
                )
        return list(self.points)

    def explore_state(self, point: CrashPoint, variant: str) -> StateResult:
        """Pass 2, one state: fresh stack, crash at ``point``, recover,
        check everything."""
        self.mode = "armed"
        self.op_index = 0
        self.target = point.index
        self.torn_prefix = point.blocks // 2 if variant == "torn" else 0
        self.fired = False
        result = StateResult(point=point, variant=variant)
        stack = self.build_stack()
        oracle = DurabilityOracle(stack.mux)
        try:
            self.workload(stack, oracle)
        except CrashTriggered:
            pass
        if not self.fired:
            result.problems.append(
                f"crash point #{point.index} never reached on replay"
            )
            return result
        self.detach(stack)
        self._verify(stack, oracle, result)
        return result

    def _verify(
        self, stack: _Stack, oracle: DurabilityOracle, result: StateResult
    ) -> None:
        mux = stack.mux
        try:
            mux.crash()
            mux.recover()
        except ReproError as exc:
            result.problems.append(f"recovery: {exc!r}")
            return
        # a crash invalidates every mirror: no replica interval may come
        # back clean, or a stale mirror could be read as authoritative
        for inode in mux.ns.files():
            if inode.replicas is not None and inode.replicas.clean_blocks():
                result.problems.append(
                    f"mirror: ino {inode.ino} recovered with "
                    f"{inode.replicas.clean_blocks()} clean replica "
                    f"block(s) — stale mirror could shadow the "
                    f"authoritative copy"
                )
        for name, fs in stack.filesystems.items():
            for p in fsck.check_native_fs(fs):
                result.problems.append(f"fsck[{name}]: {p}")
        for p in fsck.check_mux(mux, deep=True):
            result.problems.append(f"fsck[mux]: {p}")
        try:
            fsck.reconcile_cache(mux, result.lost_reported)
        except ReproError as exc:
            result.problems.append(f"reconcile: {exc!r}")
        for p in fsck.check_mux(mux, deep=True):
            result.problems.append(f"fsck[mux,post-reconcile]: {p}")
        result.problems.extend(
            f"durability: {p}" for p in oracle.verify()
        )
        try:
            handle = mux.create("/postcrash")
            mux.write(handle, 0, b"alive")
            mux.fsync(handle)
            alive = mux.read(handle, 0, 5)
            mux.close(handle)
            if alive != b"alive":
                result.problems.append("usability: post-crash readback mismatch")
        except ReproError as exc:
            result.problems.append(f"usability: {exc!r}")
        result.recovered_now_ns = stack.clock.now_ns


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def _select_states(
    points: List[CrashPoint], smoke: bool
) -> List[Tuple[CrashPoint, str]]:
    """Full mode: every point (+ torn variants).  Smoke: a strided subset
    with every label represented and at least one torn state."""
    full: List[Tuple[CrashPoint, str]] = []
    for point in points:
        full.append((point, "cut"))
        if point.blocks > 1:
            full.append((point, "torn"))
    if not smoke:
        return full
    chosen: List[Tuple[CrashPoint, str]] = []
    seen_labels = set()
    for point in points:  # first occurrence of each label
        if point.label not in seen_labels:
            seen_labels.add(point.label)
            chosen.append((point, "cut"))
    torn = next((p for p in points if p.blocks > 1), None)
    if torn is not None:
        chosen.append((torn, "torn"))
    stride = max(1, len(points) // max(1, SMOKE_STATES - len(chosen)))
    have = {(p.index, v) for p, v in chosen}
    for point in points[::stride]:
        if len(chosen) >= SMOKE_STATES:
            break
        if (point.index, "cut") not in have:
            have.add((point.index, "cut"))
            chosen.append((point, "cut"))
    chosen.sort(key=lambda pv: (pv[0].index, pv[1]))
    return chosen


def explore(smoke: bool = False, verbose: bool = False) -> Dict[str, object]:
    """Run the census + the selected crash states; return the report."""
    explorer = CrashExplorer()
    points = explorer.census()
    by_label: Dict[str, int] = {}
    for point in points:
        by_label[point.label] = by_label.get(point.label, 0) + 1
    states = _select_states(points, smoke)
    failures: List[Dict[str, object]] = []
    lost_total = 0
    clock_sum_ns = 0
    for point, variant in states:
        result = explorer.explore_state(point, variant)
        clock_sum_ns += result.recovered_now_ns
        lost_total += len(result.lost_reported)
        if not result.ok:
            failures.append(
                {
                    "index": point.index,
                    "label": point.label,
                    "device": point.device,
                    "variant": variant,
                    "problems": result.problems,
                }
            )
            if verbose:
                print(f"  FAIL #{point.index} {point.label} ({variant}):")
                for p in result.problems:
                    print(f"    - {p}")
        elif verbose:
            print(f"  ok   #{point.index} {point.label} ({variant})")
    return {
        "sync_points": len(points),
        "by_label": dict(sorted(by_label.items())),
        "states_explored": len(states),
        "failures": failures,
        "lost_intervals_reported": lost_total,
        "clock_sum_ns": clock_sum_ns,
    }


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    smoke = "--smoke" in argv
    verbose = "--verbose" in argv or "-v" in argv
    mode = "smoke subset" if smoke else "full sweep"
    print(f"crashexplore: {mode} of the canonical workload...")
    report = explore(smoke=smoke, verbose=verbose)
    print(
        f"crashexplore: {report['sync_points']} sync points "
        f"({', '.join(f'{k}={v}' for k, v in report['by_label'].items())})"
    )
    print(
        f"crashexplore: {report['states_explored']} crash states explored, "
        f"{len(report['failures'])} failed, "
        f"{report['lost_intervals_reported']} lost interval(s) reported"
    )
    if report["failures"]:
        for failure in report["failures"][:10]:
            print(
                f"  FAIL #{failure['index']} {failure['label']} "
                f"({failure['variant']}) on {failure['device']}:"
            )
            for p in failure["problems"][:4]:
                print(f"    - {p}")
        print("crashexplore: FAILED")
        return 1
    print("crashexplore: every crash state recovered cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
