"""Operational tooling: consistency checkers (fsck)."""

from repro.tools.fsck import check_mux, check_native_fs, report

__all__ = ["check_mux", "check_native_fs", "report"]
