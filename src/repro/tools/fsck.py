"""fsck: offline consistency checkers for the native file systems and Mux.

A production file system ships a checker; so does this reproduction.  The
checkers validate the cross-structure invariants that no single component
can see on its own:

* ``check_native_fs`` — allocator bitmap vs. the union of all inode block
  maps (no leaks, no double ownership, no out-of-range blocks), directory
  tree connectivity, link counts, size vs. mapped blocks.
* ``check_mux`` — the Block Lookup Table vs. reality: every BLT-mapped
  block's tier actually holds that block in the backing sparse file; the
  per-tier block accounting matches; affinity owners are registered
  tiers; no file is stuck in a migration state; dirty write-back cache
  blocks reference live files, resident slots and registered destage
  targets.
* ``reconcile_cache`` — post-crash repair: the SCM cache file lives on
  PM, so absorbed-but-not-destaged writes legally survive a crash as
  dirty slots.  Recovery must push them to their owning tiers (or drop
  marks whose file died) before the cache can serve write-back traffic
  again.

Each checker returns a list of human-readable problem strings (empty =
clean), so tests can assert emptiness and operators can print reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.mux import MuxFileSystem
from repro.errors import FileNotFound
from repro.fscommon.basefs import NativeFileSystem
from repro.fscommon.journaledfs import JournaledFileSystem
from repro.vfs import path as vpath
from repro.vfs.stat import FileType


def check_native_fs(fs: NativeFileSystem) -> List[str]:
    """Validate one native file system's internal consistency."""
    problems: List[str] = []
    problems += _check_block_ownership(fs)
    problems += _check_directory_tree(fs)
    problems += _check_sizes(fs)
    problems += _check_writeback_losses(fs)
    if isinstance(fs, JournaledFileSystem):
        problems += _check_delalloc(fs)
    return problems


def _check_writeback_losses(fs: NativeFileSystem) -> List[str]:
    """Report dirty intervals silently dropped by failed writeback.

    The ext4-style ``clean`` policy marks pages clean on a persistent
    writeback error, so the *next* fsync succeeds even though the bytes
    never reached the disk; the ``keep`` policy drops them once the retry
    budget is exhausted.  Either way the errseq ledger remembers exactly
    which intervals vanished — fsck surfaces them so the loss is an
    operator-visible finding, not a silent hole in the file.
    """
    return [
        f"ino {ino}: writeback of blocks [{fb},+{count}) failed; "
        f"data was never persisted (reported via errseq at fsync)"
        for ino, fb, count in fs.lost_intervals()
    ]


def _allocator_views(fs: NativeFileSystem):
    allocator = getattr(fs, "allocator", None)
    if allocator is None:
        return []
    groups = getattr(allocator, "groups", None)
    return list(groups) if groups is not None else [allocator]


def _check_block_ownership(fs: NativeFileSystem) -> List[str]:
    problems: List[str] = []
    owned: Dict[int, int] = {}  # device block -> owning ino
    for inode in fs.inodes:
        if inode.is_dir:
            continue
        for extent in inode.blockmap:
            for i in range(extent.count):
                block = extent.value + i
                if block in owned:
                    problems.append(
                        f"block {block} owned by both ino {owned[block]} "
                        f"and ino {inode.ino}"
                    )
                owned[block] = inode.ino
    for alloc in _allocator_views(fs):
        for block in range(alloc.base, alloc.base + alloc.count):
            allocated = alloc.is_allocated(block)
            if allocated and block not in owned:
                # delalloc-less file systems must not leak blocks; the SCM
                # cache file and the journal live outside the data range
                problems.append(f"leaked block {block}: allocated but unowned")
            if not allocated and block in owned:
                problems.append(
                    f"block {block} owned by ino {owned[block]} but marked free"
                )
    for block, ino in owned.items():
        if not any(
            alloc.base <= block < alloc.base + alloc.count
            for alloc in _allocator_views(fs)
        ):
            problems.append(f"ino {ino} maps out-of-range block {block}")
    return problems


def _check_directory_tree(fs: NativeFileSystem) -> List[str]:
    problems: List[str] = []
    reachable: Set[int] = set()

    def walk(inode, depth=0):
        if depth > 256:
            problems.append("directory tree deeper than 256 (cycle?)")
            return
        if inode.ino in reachable:
            problems.append(f"ino {inode.ino} reachable via two paths")
            return
        reachable.add(inode.ino)
        if inode.is_dir:
            for name, child_ino in inode.entries.items():
                child = fs.inodes.maybe_get(child_ino)
                if child is None:
                    problems.append(
                        f"dangling entry {name!r} -> ino {child_ino} "
                        f"in dir {inode.ino}"
                    )
                    continue
                walk(child, depth + 1)

    walk(fs._root)
    for inode in fs.inodes:
        if inode.ino not in reachable:
            problems.append(f"orphan inode {inode.ino} (unreachable from root)")
    return problems


def _check_sizes(fs: NativeFileSystem) -> List[str]:
    problems: List[str] = []
    bs = fs.block_size
    for inode in fs.inodes:
        if inode.is_dir:
            continue
        end = inode.blockmap.end_block()
        max_needed = -(-inode.size // bs) if inode.size else 0
        if end > max_needed:
            problems.append(
                f"ino {inode.ino}: blocks mapped beyond EOF "
                f"(end_block {end} > {max_needed} for size {inode.size})"
            )
        mapped = inode.blockmap.mapped_blocks
        if inode.allocated_blocks != mapped:
            problems.append(
                f"ino {inode.ino}: allocated_blocks {inode.allocated_blocks} "
                f"!= mapped {mapped}"
            )
    return problems


def _check_delalloc(fs: JournaledFileSystem) -> List[str]:
    problems: List[str] = []
    for ino, marks in fs._delalloc.items():
        inode = fs.inodes.maybe_get(ino)
        if inode is None:
            if marks:
                problems.append(f"delalloc marks for dead inode {ino}")
            continue
        for fb in marks:
            if inode.blockmap.lookup(fb) is not None:
                problems.append(
                    f"ino {ino} block {fb} marked delalloc but already mapped"
                )
    return problems


# ---------------------------------------------------------------------------
# Mux-level checks
# ---------------------------------------------------------------------------


def check_mux(mux: MuxFileSystem, deep: bool = True) -> List[str]:
    """Validate Mux's cross-file-system invariants.

    ``deep=True`` additionally verifies that every BLT-mapped block is
    materialized in the owning tier's backing file (reads device state;
    charges simulated time).
    """
    problems: List[str] = []
    tier_ids = set(mux.tier_ids())
    for inode in mux.ns.files():
        label = inode.rel_path or f"ino {inode.ino}"
        # structural BLT invariants
        check = getattr(inode.blt, "check_invariants", None)
        if check is not None:
            try:
                check()
            except AssertionError as exc:
                problems.append(f"{label}: BLT invariant violated: {exc}")
        # tiers in the BLT must be registered and have backing files
        for tier_id in inode.blt.tiers_used():
            if tier_id not in tier_ids:
                problems.append(f"{label}: BLT references unknown tier {tier_id}")
                continue
            if tier_id not in inode.tiers_present:
                problems.append(
                    f"{label}: tier {tier_id} holds blocks but is not marked present"
                )
        # no stuck migration state
        if inode.migration_active:
            problems.append(f"{label}: migration flag stuck on")
        if inode.locked:
            problems.append(f"{label}: fallback lock stuck on")
        # affinity owners must be registered tiers
        for attr, owner in inode.affinity.owners().items():
            if owner is not None and owner not in tier_ids:
                problems.append(f"{label}: {attr} affinitive to unknown tier {owner}")
        # size must cover the mapped range
        end = inode.blt.end_block()
        if end * mux.block_size > _round_up(inode.size, mux.block_size):
            problems.append(
                f"{label}: BLT maps past EOF (end_block {end}, size {inode.size})"
            )
        problems += _check_tier_health(mux, inode, label)
        problems += _check_replicas(mux, inode, label)
        if deep:
            problems += _check_backing_blocks(mux, inode, label)
    problems += _check_cache_dirty(mux)
    return problems


def _check_cache_dirty(mux: MuxFileSystem) -> List[str]:
    """Dirty write-back blocks must be destageable.

    A crash with dirty SCM blocks is *legal* — the cache file is on PM,
    so the data is durable — but each dirty mark must still point at a
    live file, a resident cache slot, and a registered owning tier, or
    the eventual destage has nowhere sound to go.
    """
    cache = mux.cache
    if cache is None:
        return []
    problems: List[str] = []
    try:
        cache.check_invariants()
    except AssertionError as exc:
        problems.append(f"cache: invariant violated: {exc}")
    tier_ids = set(mux.tier_ids())
    for ino in cache.dirty_files():
        if not cache.write_back:
            problems.append(
                f"cache: ino {ino} has dirty blocks but write-back is off"
            )
        try:
            inode = mux.ns.get(ino)
        except FileNotFound:
            stranded = sum(count for _, count in cache.dirty_runs(ino))
            problems.append(
                f"cache: {stranded} dirty block(s) for dead ino {ino}"
            )
            continue
        label = inode.rel_path or f"ino {ino}"
        for start, count in cache.dirty_runs(ino):
            for run_start, run_len, tier_id in inode.blt.runs(start, count):
                if tier_id is None:
                    problems.append(
                        f"{label}: dirty run [{run_start},+{run_len}) has "
                        f"no owning tier to destage to"
                    )
                elif tier_id not in tier_ids:
                    problems.append(
                        f"{label}: dirty run [{run_start},+{run_len}) owned "
                        f"by unknown tier {tier_id}"
                    )
            for fb in range(start, start + count):
                if not cache.contains(ino, fb):
                    problems.append(
                        f"{label}: dirty block {fb} has no resident cache slot"
                    )
    for ino, fb, count in cache.lost_intervals():
        problems.append(
            f"cache: ino {ino} blocks [{fb},+{count}) absorbed but lost "
            f"to a failed destage (data never reached the owning tier)"
        )
    return problems


def reconcile_cache(
    mux: MuxFileSystem, report: Optional[List[str]] = None
) -> int:
    """Destage every dirty block that survived a crash; returns blocks handled.

    Dirty marks whose file no longer exists are dropped (the unlink won);
    everything else is written back to its owning tier and flushed, so the
    recovered stack starts with a clean cache.  Offline tiers keep their
    blocks dirty for a later evacuation or reattach cycle.

    When ``report`` is given, intervals previously *lost* to failed
    destages are appended to it (and acknowledged): reconcile repairs
    what it can, but it must also tell the operator what it cannot —
    those bytes are gone and no amount of destaging brings them back.
    """
    cache = mux.cache
    if cache is None or not cache.write_back:
        return 0
    if report is not None:
        for ino, fb, count in cache.lost_intervals():
            report.append(
                f"ino {ino}: blocks [{fb},+{count}) were lost to a failed "
                f"destage before the crash; unrecoverable"
            )
        cache.clear_lost()
    reconciled = 0
    for ino in cache.dirty_files():
        try:
            inode = mux.ns.get(ino)
        except FileNotFound:
            reconciled += sum(count for _, count in cache.dirty_runs(ino))
            cache.invalidate_file(ino)
            continue
        reconciled += mux._destage_file(inode, durable=True)
    return reconciled


def _check_tier_health(mux: MuxFileSystem, inode, label: str) -> List[str]:
    """Degraded-mode findings: data or metadata stranded on a dead tier.

    A block mapped to an OFFLINE tier is unreadable (every read raises
    ``EIO``) until the tier is evacuated or brought back; an affinitive
    attribute owned by an OFFLINE tier forces getattr to serve the
    collective-inode cached value flagged stale.  Both are operator-visible
    conditions fsck must report, not silently tolerate.
    """
    problems: List[str] = []
    for tier_id in inode.blt.tiers_used():
        tier = mux.registry.maybe_get(tier_id)
        if tier is None:
            continue  # unknown tier already reported above
        if tier.health.is_offline:
            stranded = inode.blt.blocks_on(tier_id)
            problems.append(
                f"{label}: {stranded} block(s) stranded on offline "
                f"tier {tier.name} (reads will raise EIO)"
            )
    for attr, owner in inode.affinity.owners().items():
        if owner is None:
            continue
        tier = mux.registry.maybe_get(owner)
        if tier is not None and tier.health.is_offline:
            problems.append(
                f"{label}: {attr} affinitive to offline tier {tier.name} "
                f"(getattr serves stale cached value)"
            )
    return problems


def _check_replicas(mux: MuxFileSystem, inode, label: str) -> List[str]:
    """Replica-divergence audit (MOST).

    A mirror's sync state is a *claim* about another tier's bytes; fsck
    cross-checks every claim against the BLT, which stays the single
    source of authority.  Flags: mirror state on an unregistered tier,
    clean∩stale overlap (an interval cannot be both), clean intervals
    over holes or past EOF (claiming bytes nothing authoritatively owns),
    and a tier claiming to mirror blocks it actually owns — a replica set
    degenerating into double-counted authority.
    """
    replicas = inode.replicas
    if replicas is None:
        return []
    problems: List[str] = []
    tier_ids = set(mux.tier_ids())
    try:
        replicas.check_invariants()
    except AssertionError as exc:
        problems.append(f"{label}: replica invariant violated: {exc}")
    end = inode.blt.end_block()
    for tier_id in replicas.tiers():
        if tier_id not in tier_ids:
            problems.append(
                f"{label}: mirror state references unknown tier {tier_id}"
            )
            continue
        stale = replicas.stale_runs(tier_id)
        for start, count in replicas.clean_runs(tier_id):
            if any(s < start + count and start < s + n for s, n in stale):
                problems.append(
                    f"{label}: mirror on tier {tier_id} marks "
                    f"[{start},+{count}) both clean and stale"
                )
        for start, count in replicas.clean_runs(tier_id):
            if start + count > end:
                problems.append(
                    f"{label}: mirror on tier {tier_id} claims clean blocks "
                    f"[{start},+{count}) beyond the mapped range (end {end})"
                )
                continue
            for run_start, run_len, owner in inode.blt.runs(start, count):
                if owner is None:
                    problems.append(
                        f"{label}: mirror on tier {tier_id} claims clean "
                        f"blocks [{run_start},+{run_len}) over a hole"
                    )
                elif owner == tier_id:
                    problems.append(
                        f"{label}: tier {tier_id} claims to mirror blocks "
                        f"[{run_start},+{run_len}) it owns authoritatively"
                    )
    return problems


def _round_up(value: int, unit: int) -> int:
    return -(-value // unit) * unit


def _check_backing_blocks(mux: MuxFileSystem, inode, label: str) -> List[str]:
    """Every BLT-mapped block must be materialized on its owning tier."""
    problems: List[str] = []
    end = inode.blt.end_block()
    for start, count, tier_id in inode.blt.runs(0, end):
        if tier_id is None:
            continue
        tier = mux.registry.get(tier_id)
        full = vpath.join(tier.mount, inode.rel_path.lstrip("/"))
        try:
            backing_fs, inner = mux.vfs.resolve(full)
            backing_inode = backing_fs._resolve(inner)  # type: ignore[attr-defined]
        except Exception:
            problems.append(f"{label}: no backing file on tier {tier.name}")
            continue
        for fb in range(start, start + count):
            mapped = backing_inode.blockmap.lookup(fb)
            cached = False
            page_cache = getattr(backing_fs, "page_cache", None)
            if page_cache is not None:
                cached = page_cache.contains(backing_inode.ino, fb)
            delalloc = getattr(backing_fs, "_delalloc", {})
            pending = fb in delalloc.get(backing_inode.ino, set())
            if mapped is None and not cached and not pending:
                problems.append(
                    f"{label}: block {fb} assigned to {tier.name} "
                    f"but not materialized there"
                )
    return problems


def report(problems: List[str], subject: str = "file system") -> str:
    """Format a checker result as a human-readable report."""
    if not problems:
        return f"{subject}: clean"
    lines = [f"{subject}: {len(problems)} problem(s)"]
    lines.extend(f"  - {p}" for p in problems)
    return "\n".join(lines)
