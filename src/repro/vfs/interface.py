"""The ``FileSystem`` abstract base class — our stand-in for the Linux VFS
interface.

Every file system in the reproduction (NOVA, XFS, Ext4, Mux itself, and the
Strata baseline) implements this interface.  That is the paper's central
architectural bet: because Mux both *implements* the VFS interface upward
and *consumes* it downward, any file system that speaks VFS can be plugged
in as a tier without modification (§2.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import BadFileHandle, InvalidArgument
from repro.vfs.stat import FsStats, Stat


class OpenFlags:
    """Subset of POSIX open(2) flags the simulation models."""

    RDONLY = 0x0
    WRONLY = 0x1
    RDWR = 0x2
    CREAT = 0x40
    TRUNC = 0x200
    APPEND = 0x400
    #: synchronous I/O: every write is durable before it returns
    SYNC = 0x1000

    ACCESS_MASK = 0x3

    @staticmethod
    def readable(flags: int) -> bool:
        return (flags & OpenFlags.ACCESS_MASK) in (OpenFlags.RDONLY, OpenFlags.RDWR)

    @staticmethod
    def writable(flags: int) -> bool:
        return (flags & OpenFlags.ACCESS_MASK) in (OpenFlags.WRONLY, OpenFlags.RDWR)


class FileHandle:
    """An open file description returned by :meth:`FileSystem.open`."""

    __slots__ = ("fs", "ino", "path", "flags", "_open", "private", "wb_err")

    def __init__(self, fs: "FileSystem", ino: int, path: str, flags: int) -> None:
        self.fs = fs
        self.ino = ino
        self.path = path
        self.flags = flags
        self._open = True
        #: per-FS private state (e.g. Mux stores the per-tier handles here)
        self.private: Optional[object] = None
        #: errseq_t-style sample of the inode's writeback-error sequence at
        #: open time; fsync compares-and-advances so each fd reports a
        #: writeback failure at most once
        self.wb_err: int = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def ensure_open(self) -> None:
        if not self._open:
            raise BadFileHandle(f"handle for {self.path!r} is closed")

    def mark_closed(self) -> None:
        self._open = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self._open else "closed"
        return f"FileHandle({self.fs.fs_name}:{self.path!r}, ino={self.ino}, {state})"


class FileSystem(ABC):
    """Abstract file system: the VFS-facing operations Mux depends on.

    Paths given to a ``FileSystem`` are *internal* absolute paths (relative
    to that file system's root); mount-point translation happens in the
    :class:`~repro.vfs.vfs.VFS` layer.
    """

    #: short identifier used in stats, logs and Mux bookkeeping
    fs_name: str = "fs"

    # -- namespace ---------------------------------------------------------

    @abstractmethod
    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        """Create a regular file and return a read-write handle."""

    @abstractmethod
    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        """Open an existing file (or create with ``OpenFlags.CREAT``)."""

    @abstractmethod
    def close(self, handle: FileHandle) -> None:
        """Release an open handle."""

    @abstractmethod
    def unlink(self, path: str) -> None:
        """Remove a regular file."""

    @abstractmethod
    def rename(self, old_path: str, new_path: str) -> None:
        """Atomically rename within this file system."""

    def link(self, existing_path: str, new_path: str) -> None:
        """Create a hard link (optional: default ENOTSUP)."""
        from repro.errors import NotSupported

        raise NotSupported(f"{self.fs_name} does not support hard links")

    @abstractmethod
    def mkdir(self, path: str, mode: int = 0o755) -> None:
        """Create a directory (parent must exist)."""

    @abstractmethod
    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""

    @abstractmethod
    def readdir(self, path: str) -> List[str]:
        """Sorted names of entries in a directory."""

    # -- data --------------------------------------------------------------

    @abstractmethod
    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        """Read up to ``length`` bytes at ``offset``; short only at EOF."""

    def read_into(
        self, handle: FileHandle, offset: int, length: int, out: bytearray, out_off: int = 0
    ) -> int:
        """Read up to ``length`` bytes at ``offset`` into ``out`` at
        ``out_off``; returns the byte count.  File systems override this to
        assemble straight into the caller's buffer (one copy end to end);
        the default funnels through :meth:`read`."""
        data = self.read(handle, offset, length)
        out[out_off : out_off + len(data)] = data
        return len(data)

    @abstractmethod
    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        """Write ``data`` at ``offset`` (sparse writes allowed); returns n."""

    @abstractmethod
    def truncate(self, handle: FileHandle, size: int) -> None:
        """Grow (sparse) or shrink the file to ``size`` bytes."""

    @abstractmethod
    def fsync(self, handle: FileHandle) -> None:
        """Make the file's data and metadata durable."""

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        """Deallocate [offset, offset+length) so it reads as zeros.

        Mux uses this to release a tier's copy after migration commits.
        Offsets must be block aligned.  Optional: default ENOTSUP.
        """
        from repro.errors import NotSupported

        raise NotSupported(f"{self.fs_name} does not support hole punching")

    # -- metadata -----------------------------------------------------------

    @abstractmethod
    def getattr(self, path: str) -> Stat:
        """Stat a path."""

    @abstractmethod
    def setattr(self, path: str, **attrs: object) -> Stat:
        """Update metadata attributes (atime/mtime/ctime/mode); returns new Stat."""

    @abstractmethod
    def statfs(self) -> FsStats:
        """Space accounting for the whole file system."""

    # -- conveniences (shared implementations) -------------------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` resolves to a file or directory."""
        from repro.errors import FsError

        try:
            self.getattr(path)
            return True
        except FsError:
            return False

    def append(self, handle: FileHandle, data: bytes) -> int:
        """Write ``data`` at the current end of file."""
        size = self.getattr(handle.path).size
        return self.write(handle, size, data)

    def read_file(self, path: str) -> bytes:
        """Whole-file read convenience (tests/examples)."""
        handle = self.open(path, OpenFlags.RDONLY)
        try:
            size = self.getattr(path).size
            return self.read(handle, 0, size)
        finally:
            self.close(handle)

    def write_file(self, path: str, data: bytes) -> None:
        """Whole-file create-or-replace convenience (tests/examples)."""
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        handle = self.open(path, flags)
        try:
            self.write(handle, 0, data)
        finally:
            self.close(handle)

    # -- housekeeping ---------------------------------------------------------

    def sync(self) -> None:
        """Flush all dirty state (default: nothing buffered)."""

    def check_flags(self, flags: int) -> None:
        access = flags & OpenFlags.ACCESS_MASK
        if access not in (OpenFlags.RDONLY, OpenFlags.WRONLY, OpenFlags.RDWR):
            raise InvalidArgument(f"bad access mode in flags {flags:#x}")


def attrs_for_update(attrs: Dict[str, object]) -> Dict[str, object]:
    """Validate a setattr attribute dict, returning only known attributes."""
    allowed = {"atime", "mtime", "ctime", "mode"}
    unknown = set(attrs) - allowed
    if unknown:
        raise InvalidArgument(f"setattr does not support {sorted(unknown)}")
    return dict(attrs)
