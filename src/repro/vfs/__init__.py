"""VFS layer: the interface Mux implements upward and consumes downward."""

from repro.vfs.interface import FileHandle, FileSystem, OpenFlags
from repro.vfs.stat import (
    AGGREGATED_ATTRS,
    SINGLE_OWNER_ATTRS,
    FileType,
    FsStats,
    Stat,
)
from repro.vfs.vfs import DEFAULT_DISPATCH_COST_NS, VFS

__all__ = [
    "FileHandle",
    "FileSystem",
    "OpenFlags",
    "AGGREGATED_ATTRS",
    "SINGLE_OWNER_ATTRS",
    "FileType",
    "FsStats",
    "Stat",
    "DEFAULT_DISPATCH_COST_NS",
    "VFS",
]
