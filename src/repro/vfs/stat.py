"""File metadata structures shared across the VFS boundary."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, Tuple


class FileType(Enum):
    REGULAR = "reg"
    DIRECTORY = "dir"


#: The metadata attributes Mux tracks affinity for (§2.3).  ``size`` and the
#: three timestamps are the ones the paper walks through; ``mode``/``nlink``
#: follow the same single-owner rule; ``blocks`` (disk consumption) is the
#: paper's example of an attribute that *cannot* have a single owner and is
#: aggregated across all participating file systems instead.
SINGLE_OWNER_ATTRS: Tuple[str, ...] = ("size", "atime", "mtime", "ctime", "mode")
AGGREGATED_ATTRS: Tuple[str, ...] = ("blocks",)


@dataclass
class Stat:
    """Result of a ``getattr`` call; mirrors ``struct stat`` fields we model."""

    ino: int
    file_type: FileType
    size: int = 0
    blocks: int = 0  # allocated 512-byte units, like st_blocks
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    mode: int = 0o644
    nlink: int = 1
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    def copy(self) -> "Stat":
        return replace(self, extra=dict(self.extra))


@dataclass(frozen=True)
class FsStats:
    """Result of ``statfs``: space accounting for one file system."""

    block_size: int
    total_blocks: int
    free_blocks: int

    @property
    def used_blocks(self) -> int:
        return self.total_blocks - self.free_blocks

    @property
    def total_bytes(self) -> int:
        return self.total_blocks * self.block_size

    @property
    def free_bytes(self) -> int:
        return self.free_blocks * self.block_size

    @property
    def used_bytes(self) -> int:
        return self.used_blocks * self.block_size

    @property
    def utilization(self) -> float:
        if self.total_blocks == 0:
            return 0.0
        return self.used_blocks / self.total_blocks
