"""Path normalization and manipulation for the simulated VFS.

All paths in the reproduction are absolute, ``/``-separated and normalized
(``//``, ``.`` and ``..`` resolved).  Keeping one canonical form makes the
mount-table lookups and the Mux union namespace straightforward.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidArgument

SEP = "/"
ROOT = "/"


def is_canonical(path: str) -> bool:
    """True if ``path`` is already in canonical form.

    Canonical paths are absolute, have no empty / ``.`` / ``..``
    components and no trailing separator (except the root itself).  The
    check is a handful of substring scans, far cheaper than a split +
    rejoin, so hot paths that mostly see already-normalized strings can
    skip re-normalizing (paths are re-normalized 2-3x per operation as
    they cross the VFS, Mux and native-FS layers).
    """
    if path == ROOT:
        return True
    if not path or path[0] != SEP or path[-1] == SEP:
        return False
    if "//" in path or "/./" in path or "/../" in path:
        return False
    if path.endswith("/.") or path.endswith("/.."):
        return False
    return True


def normalize(path: str) -> str:
    """Return the canonical absolute form of ``path``.

    Already-canonical strings are returned unchanged (identity, no
    allocation).  Raises :class:`InvalidArgument` for relative paths or
    ``..`` escaping the root.
    """
    if is_canonical(path):
        return path
    if not path or not path.startswith(SEP):
        raise InvalidArgument(f"path must be absolute: {path!r}")
    parts: List[str] = []
    for piece in path.split(SEP):
        if piece in ("", "."):
            continue
        if piece == "..":
            if not parts:
                raise InvalidArgument(f"path escapes root: {path!r}")
            parts.pop()
        else:
            parts.append(piece)
    return ROOT + SEP.join(parts)


def split(path: str) -> Tuple[str, str]:
    """Split a normalized path into (parent, name).  Root has no name."""
    path = normalize(path)
    if path == ROOT:
        return ROOT, ""
    parent, _, name = path.rpartition(SEP)
    return (parent or ROOT), name


def join(base: str, *names: str) -> str:
    """Join path components onto ``base`` and normalize."""
    pieces = [base]
    pieces.extend(names)
    return normalize(SEP.join(pieces))


def basename(path: str) -> str:
    return split(path)[1]


def dirname(path: str) -> str:
    return split(path)[0]


def components(path: str) -> List[str]:
    """The name components of a normalized path (root -> [])."""
    path = normalize(path)
    if path == ROOT:
        return []
    return path[1:].split(SEP)


def is_under(path: str, prefix: str) -> bool:
    """True if ``path`` equals or lies beneath ``prefix``."""
    path = normalize(path)
    prefix = normalize(prefix)
    if prefix == ROOT:
        return True
    return path == prefix or path.startswith(prefix + SEP)


def relative_to(path: str, prefix: str) -> str:
    """``path`` rewritten relative to ``prefix``, as an absolute path.

    ``relative_to('/mnt/pm/a/b', '/mnt/pm') == '/a/b'``
    """
    path = normalize(path)
    prefix = normalize(prefix)
    if not is_under(path, prefix):
        raise InvalidArgument(f"{path!r} is not under {prefix!r}")
    if prefix == ROOT:
        return path
    rest = path[len(prefix) :]
    return rest or ROOT


def ancestors(path: str) -> List[str]:
    """All proper ancestors of ``path``, root first.

    ``ancestors('/a/b/c') == ['/', '/a', '/a/b']``
    """
    comps = components(path)
    result = [ROOT]
    for i in range(len(comps) - 1):
        result.append(ROOT + SEP.join(comps[: i + 1]))
    return result if comps else []
