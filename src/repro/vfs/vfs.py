"""The VFS layer: a mount table plus call dispatch.

Mux is "presented to the VFS layer as a standalone file system, making the
OS send file operations to Mux through the existing VFS interface" (§2.1);
Mux then "sends the split requests to device-specific file systems by
calling the same VFS function that invokes it".  This module is that shared
entry point: native file systems are mounted at their own mount points,
Mux is mounted at another, and both applications and Mux itself route
operations through :class:`VFS`.

Every dispatched call charges a small CPU cost to the simulated clock —
the per-call software overhead of the VFS path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.errors import CrossDevice, FileNotFound, InvalidArgument, NotADirectory
from repro.sim.clock import SimClock
from repro.vfs import path as vpath
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags
from repro.vfs.stat import FsStats, Stat

#: Default CPU cost of one VFS dispatch (path lookup in the mount table,
#: permission checks, fd table work).  Roughly the syscall+VFS overhead of
#: a warm Linux path, in nanoseconds.
DEFAULT_DISPATCH_COST_NS = 300


class VFS:
    """Mount table and uniform entry point for all file operations."""

    #: bound on the resolve memo (mount-table lookups are pure functions of
    #: the mount table, so entries only die on mount/unmount)
    RESOLVE_CACHE_SIZE = 4096

    def __init__(
        self, clock: SimClock, dispatch_cost_ns: int = DEFAULT_DISPATCH_COST_NS
    ) -> None:
        self.clock = clock
        self.dispatch_cost_ns = dispatch_cost_ns
        self._mounts: Dict[str, FileSystem] = {}
        #: canonical path -> (fs, inner path); a memo of resolve() results.
        #: Purely host-side: no simulated cost depends on it.
        self._resolve_cache: "OrderedDict[str, Tuple[FileSystem, str]]" = OrderedDict()

    # -- mount management --------------------------------------------------

    def mount(self, mountpoint: str, fs: FileSystem) -> None:
        """Attach ``fs`` at ``mountpoint`` (must not nest inside another)."""
        mountpoint = vpath.normalize(mountpoint)
        if mountpoint in self._mounts:
            raise InvalidArgument(f"{mountpoint!r} is already a mount point")
        for existing in self._mounts:
            if vpath.is_under(mountpoint, existing) or vpath.is_under(
                existing, mountpoint
            ):
                raise InvalidArgument(
                    f"mount {mountpoint!r} overlaps existing mount {existing!r}"
                )
        self._mounts[mountpoint] = fs
        self._resolve_cache.clear()

    def unmount(self, mountpoint: str) -> FileSystem:
        """Detach and return the file system at ``mountpoint``."""
        mountpoint = vpath.normalize(mountpoint)
        try:
            fs = self._mounts.pop(mountpoint)
        except KeyError:
            raise FileNotFound(f"no file system mounted at {mountpoint!r}")
        self._resolve_cache.clear()
        return fs

    def mounts(self) -> Dict[str, FileSystem]:
        """Snapshot of the mount table."""
        return dict(self._mounts)

    def resolve(self, path: str) -> Tuple[FileSystem, str]:
        """Map a global path to (file system, fs-internal path).

        Longest-prefix match against the mount table by walking the
        path's own ancestor chain (O(depth) dict probes instead of a
        linear scan over every mount point), memoized per canonical path.
        """
        path = vpath.normalize(path)
        cached = self._resolve_cache.get(path)
        if cached is not None:
            return cached
        # mount points cannot nest, so the first hit walking *up* from the
        # deepest prefix is the unique (and longest) match
        probe = path
        while True:
            fs = self._mounts.get(probe)
            if fs is not None:
                break
            if probe == vpath.ROOT:
                raise FileNotFound(f"{path!r} is not under any mount point")
            probe = probe.rsplit(vpath.SEP, 1)[0] or vpath.ROOT
        if probe == vpath.ROOT:
            inner = path
        else:
            inner = path[len(probe):] or vpath.ROOT
        result = (fs, inner)
        if len(self._resolve_cache) >= self.RESOLVE_CACHE_SIZE:
            self._resolve_cache.popitem(last=False)
        self._resolve_cache[path] = result
        return result

    # -- dispatch helpers -----------------------------------------------------

    def _charge(self) -> None:
        self.clock.advance_ns(self.dispatch_cost_ns)

    # -- path-based operations ---------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        self._charge()
        fs, inner = self.resolve(path)
        return fs.create(inner, mode)

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        self._charge()
        fs, inner = self.resolve(path)
        return fs.open(inner, flags)

    def unlink(self, path: str) -> None:
        self._charge()
        fs, inner = self.resolve(path)
        fs.unlink(inner)

    def rename(self, old_path: str, new_path: str) -> None:
        self._charge()
        old_fs, old_inner = self.resolve(old_path)
        new_fs, new_inner = self.resolve(new_path)
        if old_fs is not new_fs:
            raise CrossDevice(
                f"rename {old_path!r} -> {new_path!r} crosses file systems"
            )
        old_fs.rename(old_inner, new_inner)

    def link(self, existing_path: str, new_path: str) -> None:
        self._charge()
        old_fs, old_inner = self.resolve(existing_path)
        new_fs, new_inner = self.resolve(new_path)
        if old_fs is not new_fs:
            raise CrossDevice(
                f"link {existing_path!r} -> {new_path!r} crosses file systems"
            )
        old_fs.link(old_inner, new_inner)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._charge()
        fs, inner = self.resolve(path)
        fs.mkdir(inner, mode)

    def rmdir(self, path: str) -> None:
        self._charge()
        fs, inner = self.resolve(path)
        fs.rmdir(inner)

    def readdir(self, path: str) -> List[str]:
        self._charge()
        fs, inner = self.resolve(path)
        return fs.readdir(inner)

    def getattr(self, path: str) -> Stat:
        self._charge()
        fs, inner = self.resolve(path)
        return fs.getattr(inner)

    def setattr(self, path: str, **attrs: object) -> Stat:
        self._charge()
        fs, inner = self.resolve(path)
        return fs.setattr(inner, **attrs)

    def statfs(self, path: str) -> FsStats:
        self._charge()
        fs, _ = self.resolve(path)
        return fs.statfs()

    def exists(self, path: str) -> bool:
        # NotADirectory means a path component resolved to a regular file
        # (seen mid-evacuation when a tier's namespace is partially drained);
        # for existence purposes that is the same answer as "not there"
        try:
            self.getattr(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    # -- handle-based operations ---------------------------------------------------

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        self._charge()
        return handle.fs.read(handle, offset, length)

    def read_into(
        self, handle: FileHandle, offset: int, length: int, out: bytearray, out_off: int = 0
    ) -> int:
        self._charge()
        return handle.fs.read_into(handle, offset, length, out, out_off)

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        self._charge()
        return handle.fs.write(handle, offset, data)

    def truncate(self, handle: FileHandle, size: int) -> None:
        self._charge()
        handle.fs.truncate(handle, size)

    def fsync(self, handle: FileHandle) -> None:
        self._charge()
        handle.fs.fsync(handle)

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        self._charge()
        handle.fs.punch_hole(handle, offset, length)

    def close(self, handle: FileHandle) -> None:
        self._charge()
        handle.fs.close(handle)

    # -- conveniences -------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        fs, inner = self.resolve(path)
        self._charge()
        return fs.read_file(inner)

    def write_file(self, path: str, data: bytes) -> None:
        fs, inner = self.resolve(path)
        self._charge()
        fs.write_file(inner, data)
