"""Lazy mirror-sync engine for mirror-optimized tiering (MOST).

The MOST model keeps *mirrors* of hot, read-mostly files across tiers:
reads route to the fastest tier holding a clean replica, writes absorb on
the fastest (authoritative) copy and mark the mirrors stale, and this
engine re-converges the stale intervals in the background — the same
"talk to file systems" discipline as destages and migrations, driven on
reserved background device channels and paced by the pressure gauges so
a foreground burst defers sync instead of contending with user I/O.

Fairness: deferral is bounded.  A mirror whose stale set has aged past
:data:`MirrorEngine.MAX_STALENESS_NS` of simulated time is *deadline
promoted* — synced despite device load — so a foreground flood can cap
sync freshness but never starve it forever (counted in
``deadline_promotions``).

All replica bookkeeping lives in :class:`repro.core.blt.ReplicaSet`
(host-side interval algebra); this module only moves bytes.  Files
without mirrors never reach this engine, so the unmirrored hot paths
keep bit-identical simulated fingerprints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.blt import ReplicaSet
from repro.core.metadata import CollectiveInode
from repro.errors import FileNotFound, TierUnavailable
from repro.sim.stats import CounterSet


class MirrorEngine:
    """Copies stale mirror intervals back into sync, lazily."""

    #: per-channel load at source or mirror above which a sync defers
    #: (same threshold the migration engine uses for paced copies)
    DEFER_LOAD = 1.0
    #: default per-tick copy budget, in blocks — a tick rides on a user
    #: op, so one tick must never book an unbounded copy into the
    #: device's background future
    MAX_SYNC_BLOCKS_PER_TICK = 64
    #: staleness deadline, in simulated ns: a mirror stale for longer is
    #: synced even into a loaded device (deadline promotion), so
    #: foreground floods bound sync freshness instead of starving it
    MAX_STALENESS_NS = 2_000_000

    def __init__(self, mux) -> None:  # mux: MuxFileSystem (circular type)
        self._mux = mux
        self.stats = CounterSet()
        #: inos that have (or recently had) mirrors; insertion-ordered so
        #: ticks rotate through files instead of re-serving the first
        self._mirrored: Dict[int, None] = {}

    # -- membership --------------------------------------------------------

    def mirrored_inos(self) -> List[int]:
        return list(self._mirrored)

    def add_mirror(self, inode: CollectiveInode, tier_id: int) -> None:
        """Start mirroring ``inode`` onto ``tier_id``.

        Every currently-mapped block not already owned by the mirror tier
        starts *stale*: the mirror serves nothing until the sync engine
        has copied it, so a half-built mirror can never shadow the
        authoritative bytes.
        """
        self._mux.registry.get(tier_id)  # validates the tier exists
        if inode.replicas is None:
            inode.replicas = ReplicaSet()
        if inode.replicas.has_tier(tier_id):
            return
        inode.replicas.add_tier(tier_id)
        now_ns = self._mux.clock.now_ns
        end = inode.blt.end_block()
        for start, count, tid in inode.blt.runs(0, end) if end else ():
            if tid is not None and tid != tier_id:
                inode.replicas.mark_stale(tier_id, start, count, now_ns)
        self._mirrored[inode.ino] = None
        self.stats.add("mirrors_added")

    def drop_mirror(
        self, inode: CollectiveInode, tier_id: int, punch: bool = True
    ) -> None:
        """Stop mirroring ``inode`` on ``tier_id`` and reclaim its blocks."""
        if inode.replicas is None or not inode.replicas.has_tier(tier_id):
            return
        runs = inode.replicas.retire_tier(tier_id)
        if punch and runs and tier_id in inode.tiers_present:
            for start, count in runs:
                # only mirror copies are reclaimed; blocks the tier owns
                # authoritatively (it absorbed a write there) must survive
                owned = [
                    (s, n)
                    for s, n, tid in inode.blt.runs(start, count)
                    if tid == tier_id
                ]
                for s, n in _subtract(start, count, owned):
                    try:
                        self._mux.tier_punch(inode, tier_id, s, n)
                    except TierUnavailable:
                        break  # unreachable tier: fsck reclaims later
        if not inode.replicas.tiers():
            inode.replicas = None
            self._mirrored.pop(inode.ino, None)
        self.stats.add("mirrors_dropped")

    def note_stale(self, ino: int) -> None:
        """A write dirtied a mirrored file; make sure ticks revisit it."""
        self._mirrored[ino] = None

    def forget(self, ino: int) -> None:
        self._mirrored.pop(ino, None)

    def drop_tier(self, tier_id: int, punch: bool = True) -> None:
        """A tier is leaving (evacuate/remove): retire all its mirrors."""
        for ino in list(self._mirrored):
            try:
                inode = self._mux.inode_by_ino(ino)
            except FileNotFound:
                self._mirrored.pop(ino, None)
                continue
            self.drop_mirror(inode, tier_id, punch=punch)

    # -- sync --------------------------------------------------------------

    def stale_backlog(self) -> int:
        """Blocks awaiting sync across every mirrored file."""
        total = 0
        for ino in self._mirrored:
            try:
                inode = self._mux.inode_by_ino(ino)
            except FileNotFound:
                continue
            if inode.replicas is not None:
                total += inode.replicas.stale_blocks()
        return total

    def tick(self, max_blocks: Optional[int] = None) -> int:
        """Advance mirror convergence by one bounded, paced step.

        Called like ``MigrationEngine.tick`` from maintenance paths:
        copies at most ``max_blocks`` (default
        :data:`MAX_SYNC_BLOCKS_PER_TICK`) stale blocks, skipping tiers
        whose channels are loaded — unless a mirror has been stale past
        the deadline, which promotes it over the load gate.  Returns
        blocks synced; zero-cost when nothing is mirrored.
        """
        if not self._mirrored:
            return 0
        budget = max_blocks if max_blocks is not None else self.MAX_SYNC_BLOCKS_PER_TICK
        synced = 0
        for ino in list(self._mirrored):
            if budget <= 0:
                break
            try:
                inode = self._mux.inode_by_ino(ino)
            except FileNotFound:
                self._mirrored.pop(ino, None)
                continue
            replicas = inode.replicas
            if replicas is None:
                self._mirrored.pop(ino, None)
                continue
            if not replicas.has_stale():
                continue
            if inode.migration_active or inode.locked:
                continue  # OCC owns the file's placement right now
            moved = self._sync_inode(inode, replicas, budget, paced=True)
            if moved:
                # rotate: the file we just serviced goes to the back so
                # the next tick reaches the others first
                self._mirrored.pop(ino, None)
                self._mirrored[ino] = None
            budget -= moved
            synced += moved
        return synced

    def sync_file(self, inode: CollectiveInode) -> int:
        """Converge one file completely, ignoring pacing (tests/benchmarks)."""
        if inode.replicas is None:
            return 0
        total = 0
        while inode.replicas is not None and inode.replicas.has_stale():
            moved = self._sync_inode(
                inode, inode.replicas, budget=1 << 30, paced=False
            )
            if moved == 0:
                break  # every remaining stale tier is unreachable
            total += moved
        return total

    def drain(self) -> int:
        """Converge every mirrored file (benchmark epilogues)."""
        total = 0
        for ino in list(self._mirrored):
            try:
                inode = self._mux.inode_by_ino(ino)
            except FileNotFound:
                self._mirrored.pop(ino, None)
                continue
            if inode.migration_active or inode.locked:
                continue
            total += self.sync_file(inode)
        return total

    # -- internals ---------------------------------------------------------

    def _sync_inode(
        self,
        inode: CollectiveInode,
        replicas: ReplicaSet,
        budget: int,
        paced: bool,
    ) -> int:
        mux = self._mux
        now_ns = mux.clock.global_now_ns
        synced = 0
        for tier_id in replicas.tiers():
            if budget - synced <= 0:
                break
            stale = replicas.stale_runs(tier_id)
            if not stale:
                continue
            tier = mux.registry.get(tier_id)
            if tier.health.is_offline:
                self.stats.add("sync_skipped_offline")
                continue
            if paced and self._deferred(inode, tier_id, stale, now_ns):
                continue
            synced += self._sync_tier(
                inode, replicas, tier_id, stale, budget - synced
            )
        return synced

    def _deferred(
        self,
        inode: CollectiveInode,
        tier_id: int,
        stale: List[Tuple[int, int]],
        now_ns: int,
    ) -> bool:
        """Pressure gate with a staleness deadline (dispatcher fairness)."""
        since = inode.replicas.stale_since_ns(tier_id)
        if since is not None and now_ns - since >= self.MAX_STALENESS_NS:
            self.stats.add("deadline_promotions")
            return False
        monitor = self._mux.pressure
        load = monitor.instant_load_of(tier_id, now_ns)
        for start, count in stale:
            for _, _, src in inode.blt.runs(start, count):
                if src is not None and src != tier_id:
                    load = max(load, monitor.instant_load_of(src, now_ns))
        if load >= self.DEFER_LOAD:
            self.stats.add("defer_ticks")
            return True
        return False

    def _sync_tier(
        self,
        inode: CollectiveInode,
        replicas: ReplicaSet,
        tier_id: int,
        stale: List[Tuple[int, int]],
        budget: int,
    ) -> int:
        """Copy up to ``budget`` stale blocks onto one mirror tier.

        Runs on background clock frames like destages: the copies land on
        the devices' reserved background channels, so foreground ops only
        pay when they contend for the same device.  An interval is marked
        clean only *after* the mirror tier's fsync returned — a mirror
        interval must never claim cleanliness its media can't back.
        """
        mux = self._mux
        bs = mux.block_size
        mux.clock.push_frame(background=True)
        try:
            # absorbed writes first: the authoritative media must hold the
            # bytes the copy loop reads
            if mux.cache is not None and mux.cache.write_back:
                dirty: List[Tuple[int, int]] = []
                for start, count in stale:
                    dirty.extend(mux.cache.dirty_runs_in(inode.ino, start, count))
                if dirty:
                    mux._destage_blocks(inode, dirty, durable=True)
            copied: List[Tuple[int, int]] = []
            blocks = 0
            failed = False
            for start, count in stale:
                if blocks >= budget or failed:
                    break
                for run_start, run_len, src in inode.blt.runs(start, count):
                    if blocks >= budget or failed:
                        break
                    run_len = min(run_len, budget - blocks)
                    if src is None or src == tier_id:
                        # a hole mirrors itself; an authoritative owner
                        # cannot also be its own mirror
                        replicas.clear_stale(tier_id, run_start, run_len)
                        continue
                    want = min(run_len * bs, inode.size - run_start * bs)
                    if want <= 0:
                        replicas.clear_stale(tier_id, run_start, run_len)
                        continue
                    try:
                        data = mux.tier_read_raw(
                            inode, src, run_start * bs, want
                        )
                        self._media_write(inode, tier_id, run_start * bs, data)
                    except TierUnavailable:
                        # source or mirror died mid-copy: stay stale, a
                        # later tick retries once health recovers
                        self.stats.add("sync_skipped_offline")
                        failed = True
                        break
                    copied.append((run_start, run_len))
                    blocks += run_len
            if copied:
                try:
                    mux.tier_fsync(inode, tier_id)
                except TierUnavailable:
                    self.stats.add("sync_skipped_offline")
                    return 0  # nothing durable: every interval stays stale
                for run_start, run_len in copied:
                    replicas.mark_synced(tier_id, run_start, run_len)
                self.stats.add("syncs")
                self.stats.add("blocks_synced", blocks)
            return blocks
        finally:
            # discard the frame cursor: the batch drains on the device
            # timelines while the foreground proceeds
            mux.clock.pop_frame()

    def _media_write(
        self, inode: CollectiveInode, tier_id: int, offset: int, data: bytes
    ) -> None:
        """One mirror-sync media write (crash-explorer sync-point label)."""
        self._mux.tier_write_raw(inode, tier_id, offset, data)


def _subtract(
    start: int, count: int, holes: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """``[start, +count)`` minus ``holes`` (sorted disjoint runs)."""
    out: List[Tuple[int, int]] = []
    pos = start
    end = start + count
    for h_start, h_len in sorted(holes):
        if h_start > pos:
            out.append((pos, min(h_start, end) - pos))
        pos = max(pos, h_start + h_len)
        if pos >= end:
            break
    if pos < end:
        out.append((pos, end - pos))
    return out
