"""OCC Synchronizer: lock-free data movement across file systems (§2.4).

"Our insight is that data movement does not change the content of the
data; so, a data movement process is considered successful if the content
of the data remains unchanged throughout the process."

Protocol, as the paper describes it:

1. the per-file version counter is incremented and the migration flag set
   at the *start* of a movement;
2. blocks are copied from the source file system to the destination's
   sparse file (same offsets) — user operations proceed concurrently and
   keep hitting the source, because the Block Lookup Table has not changed;
3. at the end, the version is incremented again and Mux checks for blocks
   written during the movement.  Clean blocks are **atomically committed**
   (BLT flip + source hole punch); dirty blocks are dropped ("overwritten
   in place in the next migration attempt") and retried;
4. after a bounded number of retries Mux "resorts to a lock-based
   migration": the remaining blocks are copied with the file locked, which
   in this deterministic simulation means within a single un-yieldable
   step — no user operation can interleave — guaranteeing completion in
   finite time and a bounded replication lag.

The whole protocol operates on *runs* — sorted, disjoint (start, length)
block extents — never on per-block lists.  Real migrations move long
contiguous extents, so the clean-set/conflict/retry bookkeeping is
O(runs) interval algebra (see :mod:`repro.core.intervals`) instead of
O(blocks) set membership.  The simulated charge sequence is unchanged:
copies were always issued span-at-a-time, and the dirty intervals recorded
by the write path produce exactly the per-block clean set of the scalar
protocol.

The copy loop yields between chunks, so tests can interleave adversarial
user writes at every step via :func:`repro.sim.tasks.run_interleaved`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Protocol, Tuple

from repro.core import calibration as cal
from repro.core.intervals import (
    Run,
    normalize_runs,
    runs_length,
    subtract_runs,
)
from repro.core.metadata import CollectiveInode
from repro.errors import NoSpace, TierUnavailable
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet


class MigrationIo(Protocol):
    """The raw per-tier I/O the synchronizer needs (implemented by Mux)."""

    block_size: int
    clock: SimClock

    def tier_read_raw(
        self, inode: CollectiveInode, tier_id: int, offset: int, length: int
    ) -> bytes: ...

    def tier_write_raw(
        self, inode: CollectiveInode, tier_id: int, offset: int, data: bytes
    ) -> None: ...

    def tier_punch(
        self, inode: CollectiveInode, tier_id: int, block_start: int, count: int
    ) -> None: ...

    def tier_fsync(self, inode: CollectiveInode, tier_id: int) -> None: ...

    def blt_commit_move(
        self, inode: CollectiveInode, runs: List[Run], src_tier: int, dst_tier: int
    ) -> None: ...

    def destage_for_migration(
        self, inode: CollectiveInode, block_start: int, count: int
    ) -> None:
        """Write back any dirty write-back cache blocks in the range.

        Optional (looked up with ``getattr``): implementations without a
        write-back cache may omit it.  Called once before the first OCC
        attempt — absorption is refused while ``migration_active`` is set
        and the synchronizer never yields between validation and the next
        attempt's flag set, so one destage up front is sufficient for a
        destage never to race :meth:`blt_commit_move`.
        """
        ...

    def quiesce_inflight(self, ino: int) -> None:
        """Wait for async ring ops in flight against ``ino`` to complete.

        Optional (looked up with ``getattr``): called by the pessimistic
        lock fallback *after* :meth:`SimClock.suspend_frames`, so the
        wait lands on the global clock and the lock covers every
        submission the user had outstanding when the lock was requested.
        """
        ...


@dataclass
class MigrationResult:
    """Outcome of one migrate() call."""

    moved_blocks: int = 0
    bytes_moved: int = 0
    attempts: int = 0
    conflicts: int = 0
    lock_fallback: bool = False
    #: blocks that no longer lived on the source when we looked (already
    #: moved or rewritten elsewhere) — skipped, not an error
    skipped_blocks: int = 0
    #: contiguous runs committed (each run = one BLT flip + one hole punch)
    committed_runs: int = 0
    #: the destination ran out of space; the movement aborted safely
    #: (source copies untouched, BLT unchanged for unmoved blocks)
    aborted_no_space: bool = False
    #: transient-fault retries spent inside this migration's tier I/O
    retries: int = 0
    #: simulated ns of exponential backoff charged for those retries
    backoff_ns: int = 0
    #: a tier failed hard (offline / retries exhausted): the movement
    #: aborted safely with unmoved blocks still (only) on the source
    gave_up: bool = False


class OccSynchronizer:
    """Executes OCC block migration against a :class:`MigrationIo`."""

    def __init__(self, io: MigrationIo, force_lock: bool = False) -> None:
        self.io = io
        self.stats = CounterSet()
        #: ablation switch: skip OCC entirely and always take the
        #: pessimistic lock (what a traditional tiered FS does, §2.4)
        self.force_lock = force_lock

    # -- public API -------------------------------------------------------

    def migrate(
        self,
        inode: CollectiveInode,
        block_start: int,
        count: int,
        src_tier: int,
        dst_tier: int,
    ) -> Generator[None, None, MigrationResult]:
        """Cooperatively migrate blocks of ``inode`` from src to dst.

        A generator: yields between copy chunks (interleave points).
        Returns a :class:`MigrationResult`.
        """
        result = MigrationResult()
        if src_tier == dst_tier or count <= 0:
            return result
        destage = getattr(self.io, "destage_for_migration", None)
        if destage is not None:
            destage(inode, block_start, count)
        targets = self._runs_on_src(inode, [(block_start, count)], src_tier)
        result.skipped_blocks = count - runs_length(targets)

        attempts = 0 if self.force_lock else cal.OCC_MAX_RETRIES
        for _ in range(attempts):
            if not targets:
                return result
            result.attempts += 1
            self.stats.add("attempts")

            # -- start: version bump + migration flag -----------------------
            inode.version += 1
            inode.migration_active = True
            inode.dirty_during_migration.clear()
            version_at_start = inode.version
            self.io.clock.advance_ns(cal.MUX_OCC_CHECK_NS)

            # -- copy phase (yields between chunks) --------------------------
            try:
                yield from self._copy_runs(inode, targets, src_tier, dst_tier)
            except (NoSpace, TierUnavailable) as exc:
                # destination full or a tier failed hard: abort safely —
                # nothing committed yet, so user data still lives (only)
                # on the source
                inode.version += 1
                inode.migration_active = False
                inode.dirty_during_migration.clear()
                if isinstance(exc, TierUnavailable):
                    result.gave_up = True
                    self.stats.add("fault_aborts")
                else:
                    result.aborted_no_space = True
                    self.stats.add("no_space_aborts")
                return result

            # -- validate + commit -------------------------------------------
            inode.version += 1
            inode.migration_active = False
            dirty = inode.dirty_during_migration.runs()
            inode.dirty_during_migration.clear()
            raced = inode.version != version_at_start + 1
            if raced:
                # another movement interleaved; treat everything as suspect
                dirty = targets
            # clean = (targets still on the source) minus dirty writes
            clean = subtract_runs(
                self._runs_on_src(inode, targets, src_tier), dirty
            )
            try:
                self._commit(inode, clean, src_tier, dst_tier, result)
            except TierUnavailable:
                # the destination died before its fsync: nothing flipped,
                # the source copies remain authoritative
                result.gave_up = True
                self.stats.add("fault_aborts")
                return result
            conflicted = subtract_runs(targets, clean)
            conflict_blocks = runs_length(conflicted)
            result.conflicts += conflict_blocks
            if conflict_blocks:
                self.stats.add("conflicts", conflict_blocks)
            # retry only blocks that still live on the source
            targets = self._runs_on_src(inode, conflicted, src_tier)

        if targets:
            # -- lock-based fallback: single atomic step ----------------------
            result.lock_fallback = True
            self.stats.add("lock_fallbacks")
            # A pessimistic lock blocks every user operation on the file,
            # so the locked copy charges *foreground* time even when the
            # migration itself was submitted as background work.
            token = self.io.clock.suspend_frames()
            # The lock also cannot be granted while async ring ops are
            # still completing against the file: wait them out on the
            # global clock first (optional — implementations without
            # rings may omit it).
            quiesce = getattr(self.io, "quiesce_inflight", None)
            if quiesce is not None:
                quiesce(inode.ino)
            self.io.clock.advance_ns(cal.LOCK_FALLBACK_NS)
            inode.locked = True
            try:
                for _ in self._copy_runs(inode, targets, src_tier, dst_tier):
                    pass  # no yields escape: the copy is atomic under the lock
                self._commit(inode, targets, src_tier, dst_tier, result)
            except NoSpace:
                result.aborted_no_space = True
                self.stats.add("no_space_aborts")
            except TierUnavailable:
                result.gave_up = True
                self.stats.add("fault_aborts")
            finally:
                inode.locked = False
                self.io.clock.resume_frames(token)
        return result

    # -- helpers ---------------------------------------------------------------

    def _runs_on_src(
        self, inode: CollectiveInode, runs: List[Run], src_tier: int
    ) -> List[Run]:
        """The sub-runs of ``runs`` whose blocks live on ``src_tier`` now."""
        found: List[Run] = []
        for start, length in runs:
            for run_start, run_len, tier in inode.blt.runs(start, length):
                if tier == src_tier:
                    found.append((run_start, run_len))
        return normalize_runs(found)

    def _copy_runs(
        self,
        inode: CollectiveInode,
        runs: List[Run],
        src_tier: int,
        dst_tier: int,
    ) -> Generator[None, None, None]:
        """Copy runs chunk-by-chunk; yields between chunks."""
        block_size = self.io.block_size
        for span_start, span_len in runs:
            copied = 0
            while copied < span_len:
                chunk = min(cal.MIGRATION_CHUNK_BLOCKS, span_len - copied)
                offset = (span_start + copied) * block_size
                data = self.io.tier_read_raw(
                    inode, src_tier, offset, chunk * block_size
                )
                self.io.tier_write_raw(inode, dst_tier, offset, data)
                copied += chunk
                self.stats.add("blocks_copied", chunk)
                yield

    def _commit(
        self,
        inode: CollectiveInode,
        runs: List[Run],
        src_tier: int,
        dst_tier: int,
        result: MigrationResult,
    ) -> None:
        """Atomically flip clean runs to dst and punch the src copies.

        The destination copy is made durable *before* the source copy is
        released — otherwise a crash between punch and writeback could
        lose the only copy of the data.
        """
        if not runs:
            return
        self.io.tier_fsync(inode, dst_tier)
        self.io.blt_commit_move(inode, runs, src_tier, dst_tier)
        for span_start, span_len in runs:
            try:
                self.io.tier_punch(inode, src_tier, span_start, span_len)
            except TierUnavailable:
                # data is already durable on dst and the BLT is flipped;
                # a dead source just can't release its stale copy yet
                self.stats.add("punch_failures")
        moved = runs_length(runs)
        result.moved_blocks += moved
        result.bytes_moved += moved * self.io.block_size
        result.committed_runs += len(runs)
        self.stats.add("blocks_committed", moved)
        self.stats.add("runs_committed", len(runs))


def _contiguous_spans(blocks: List[int]) -> List[tuple]:
    """Group a (possibly unsorted) block list into (start, length) spans.

    Kept for callers that still hold per-block lists; the synchronizer
    itself works on runs end to end.
    """
    spans: List[tuple] = []
    if not blocks:
        return spans
    ordered = sorted(blocks)
    start = ordered[0]
    length = 1
    for block in ordered[1:]:
        if block == start + length:
            length += 1
        else:
            spans.append((start, length))
            start, length = block, 1
    spans.append((start, length))
    return spans
