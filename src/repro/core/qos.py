"""QoS for shared Mux (§4, "Configuring Mux").

"Sharing Mux among multiple applications may also require scheduling
schemes that support priority, deadline, and/or quota, which may dispatch
I/Os and accessed data blocks to file systems with different performances,
or ensure that high-priority tasks are not impeded."

The model implements the two mechanisms that are meaningful in a
deterministic simulation:

* **bandwidth quotas** — each I/O class owns a token bucket refilled in
  simulated time; an operation that overdraws its bucket is *throttled*
  (charged the delay until enough tokens would have accumulated), exactly
  how cgroup io.max behaves;
* **priority placement** — an I/O class may carry a tier preference that
  overrides the policy's placement (e.g. a background scrubber is forced
  to the capacity tier so it cannot pollute PM).

Handles are tagged with a class via :meth:`QosManager.tag`; untagged
handles belong to the unlimited default class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.scheduler import DeficitRoundRobin
from repro.errors import InvalidArgument
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs.interface import FileHandle

DEFAULT_CLASS = "default"


@dataclass
class IoClass:
    """One application class: optional quota, optional tier preference."""

    name: str
    #: sustained bytes/second this class may consume (None = unlimited)
    quota_bytes_per_sec: Optional[float] = None
    #: burst allowance in bytes (defaults to one second of quota)
    burst_bytes: Optional[int] = None
    #: force placement of this class's writes onto a specific tier
    pinned_tier: Optional[int] = None

    def __post_init__(self) -> None:
        if self.quota_bytes_per_sec is not None:
            if self.quota_bytes_per_sec <= 0:
                raise InvalidArgument("quota must be positive")
            if self.burst_bytes is None:
                self.burst_bytes = int(self.quota_bytes_per_sec)


class _Bucket:
    """Token bucket over simulated time."""

    def __init__(self, rate: float, burst: int, clock: SimClock) -> None:
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self.tokens = float(burst)
        self.last_ns = clock.now_ns

    def consume(self, amount: int) -> int:
        """Take ``amount`` tokens; returns the throttle delay in ns."""
        now = self.clock.now_ns
        self.tokens = min(
            self.burst, self.tokens + (now - self.last_ns) * self.rate / 1e9
        )
        self.last_ns = now
        self.tokens -= amount
        if self.tokens >= 0:
            return 0
        # we owe tokens: the op waits until the bucket refills to zero
        delay_ns = int(-self.tokens * 1e9 / self.rate)
        return delay_ns


class QosManager:
    """Per-class quotas + placement preferences for a shared Mux."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._classes: Dict[str, IoClass] = {
            DEFAULT_CLASS: IoClass(DEFAULT_CLASS)
        }
        self._buckets: Dict[str, _Bucket] = {}
        self._drr: Optional[DeficitRoundRobin] = None
        self.stats = CounterSet()

    def enable_fair_share(
        self, quantum_bytes: int = 64 * 1024, rate_bytes_per_sec: float = 2e9
    ) -> DeficitRoundRobin:
        """Arbitrate foreground streams with deficit round-robin.

        Quotas (token buckets) cap each class in isolation; DRR divides
        the *shared* dispatch capacity evenly among the classes actually
        competing at each instant — a class running alone pays nothing,
        two busy classes each get half the rounds.  Opt-in: until this is
        called, ``charge`` behaves exactly as before (goldens unchanged).
        Returns the arbiter (its ``snapshot()`` feeds ``bench trace``).
        """
        self._drr = DeficitRoundRobin(quantum_bytes, rate_bytes_per_sec)
        return self._drr

    def drr_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-stream deficit counters, empty when fair share is off."""
        return self._drr.snapshot() if self._drr is not None else {}

    def register(self, io_class: IoClass) -> None:
        if io_class.name in self._classes:
            raise InvalidArgument(f"class {io_class.name!r} already registered")
        self._classes[io_class.name] = io_class
        if io_class.quota_bytes_per_sec is not None:
            self._buckets[io_class.name] = _Bucket(
                io_class.quota_bytes_per_sec, io_class.burst_bytes, self.clock
            )

    def classes(self) -> Dict[str, IoClass]:
        return dict(self._classes)

    # -- handle tagging ------------------------------------------------------

    def tag(self, handle: FileHandle, class_name: str) -> None:
        """Assign an open handle to an I/O class."""
        if class_name not in self._classes:
            raise InvalidArgument(f"unknown I/O class {class_name!r}")
        if handle.private is None:
            handle.private = {}
        if isinstance(handle.private, dict):
            handle.private["qos_class"] = class_name

    def class_of(self, handle: FileHandle) -> str:
        private = handle.private
        if isinstance(private, dict):
            return private.get("qos_class", DEFAULT_CLASS)
        return DEFAULT_CLASS

    # -- enforcement -------------------------------------------------------------

    def charge(self, handle: FileHandle, nbytes: int) -> int:
        """Account ``nbytes`` of I/O; charges the throttle delay (if any)
        to the clock and returns it in ns."""
        name = self.class_of(handle)
        delay_ns = 0
        bucket = self._buckets.get(name)
        if bucket is not None:
            delay_ns = bucket.consume(nbytes)
            if delay_ns:
                self.clock.advance_ns(delay_ns)
                self.stats.add(f"throttle_ns.{name}", delay_ns)
                self.stats.add(f"throttled_ops.{name}")
        if self._drr is not None:
            drr_ns = self._drr.account(name, nbytes, self.clock.now_ns)
            if drr_ns:
                self.clock.advance_ns(drr_ns)
                self.stats.add(f"drr_defer_ns.{name}", drr_ns)
            delay_ns += drr_ns
        return delay_ns

    def placement_override(self, handle: FileHandle) -> Optional[int]:
        """Tier this handle's class is pinned to, if any."""
        return self._classes[self.class_of(handle)].pinned_tier
