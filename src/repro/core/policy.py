"""User-defined tiering policies (§2.1).

"Mux decouples tiering policies from file system implementation.  It
exposes an interface for users to specify policies on data placement and
user request dispatching.  All the placement and migration policies in
existing tiered file systems can be expressed using simple functions."

In the kernel the policy would be a module or eBPF program; here it is a
Python object implementing :class:`Policy`.  Policies receive narrow,
read-only views of tier state and file state, and return tier ids and
migration orders — they never touch devices directly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.health import HealthState
from repro.core.pressure import TierPressure
from repro.devices.profile import DeviceKind
from repro.errors import PolicyError


@dataclass(frozen=True)
class TierState:
    """Read-only snapshot of one tier, handed to policy callbacks."""

    tier_id: int
    name: str
    rank: int  # 0 = fastest
    kind: DeviceKind
    free_bytes: int
    total_bytes: int
    health: HealthState = HealthState.HEALTHY
    #: queue/dirty load signals sampled by the PressureMonitor; None when
    #: the tier has no tracked device timeline (or in bare unit tests)
    pressure: Optional[TierPressure] = None

    @property
    def used_bytes(self) -> int:
        return self.total_bytes - self.free_bytes

    @property
    def utilization(self) -> float:
        return self.used_bytes / self.total_bytes if self.total_bytes else 0.0


@dataclass(frozen=True)
class PlacementRequest:
    """One write that needs a home."""

    path: str
    ino: int
    offset: int
    length: int
    file_size: int
    is_append: bool
    synchronous: bool = False


@dataclass(frozen=True)
class MigrationOrder:
    """A policy's instruction to move blocks between tiers."""

    ino: int
    block_start: int
    count: int
    src_tier: int
    dst_tier: int
    reason: str = ""


@dataclass(frozen=True)
class MirrorOrder:
    """A policy's instruction to add or drop a file's mirror on a tier.

    ``action`` is ``"add"`` (start mirroring; the sync engine copies the
    file's blocks onto ``tier_id`` lazily) or ``"drop"`` (retire the
    mirror and reclaim its blocks — the authoritative copy is untouched).
    """

    ino: int
    tier_id: int
    action: str = "add"
    reason: str = ""


@dataclass
class FileView:
    """Read-only per-file view for migration planning."""

    ino: int
    path: str
    size: int
    blocks_by_tier: Dict[int, int] = field(default_factory=dict)
    #: (block_start, count, tier) runs — the BLT contents
    runs: List = field(default_factory=list)


class Policy(ABC):
    """Base class for tiering policies."""

    name: str = "policy"
    #: pressure-aware policies set True: maintain_async then submits their
    #: migrations with defer_while_hot, so a copy planned toward a cool
    #: tier still waits if the target channel is mid-burst at run time
    defer_hot_migrations: bool = False

    @abstractmethod
    def place_write(
        self, request: PlacementRequest, tiers: List[TierState]
    ) -> int:
        """Choose the tier id that should receive this write."""

    def on_access(
        self,
        ino: int,
        block_start: int,
        count: int,
        tier_id: int,
        kind: str,
        now: float,
    ) -> None:
        """Access notification (kind is "read" or "write"); default: ignore."""

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        """Return migrations to run now; default: none."""
        return []

    def plan_mirrors(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MirrorOrder]:
        """Return mirror add/drop orders; default: no mirrors (exclusive
        placement, the pre-MOST behaviour — every block on exactly one
        tier)."""
        return []

    def forget(self, ino: int) -> None:
        """A file was deleted; drop any per-file policy state."""


def writable_tiers(tiers: List[TierState]) -> List[TierState]:
    """Tiers that should receive *new* writes, best health class first.

    HEALTHY tiers win outright; if none exist, SUSPECT tiers are better
    than failing the write; OFFLINE tiers are never returned (their device
    would reject the I/O anyway).  An all-offline registry returns [] and
    the caller surfaces EIO.
    """
    healthy = [t for t in tiers if t.health is HealthState.HEALTHY]
    if healthy:
        return healthy
    return [t for t in tiers if t.health is not HealthState.OFFLINE]


def tier_load(tier: TierState) -> float:
    """The tier's sampled channel load; 0.0 when pressure is untracked."""
    return tier.pressure.load if tier.pressure is not None else 0.0


def fastest_with_room(
    tiers: List[TierState], length: int, reserve_fraction: float = 0.02
) -> TierState:
    """The fastest writable tier that can absorb ``length`` bytes with headroom."""
    candidates = writable_tiers(tiers)
    if not candidates:
        raise PolicyError("no writable tier (all offline)")
    for tier in sorted(candidates, key=lambda t: t.rank):
        reserve = int(tier.total_bytes * reserve_fraction)
        if tier.free_bytes - reserve >= length:
            return tier
    # last resort: the writable tier with the most free space
    best = max(candidates, key=lambda t: t.free_bytes)
    if best.free_bytes < length:
        raise PolicyError(f"no tier can hold {length} bytes")
    return best


# ---------------------------------------------------------------------------
# policy registry — the modular "register tiering rules" interface
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., Policy]] = {}


def register_policy(name: str) -> Callable[[type], type]:
    """Class decorator registering a policy constructor under ``name``."""

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise PolicyError(f"policy {name!r} already registered")
        _REGISTRY[name] = cls
        cls.name = name
        return cls

    return decorate


def make_policy(name: str, **kwargs: object) -> Policy:
    """Instantiate a registered policy by name."""
    try:
        ctor = _REGISTRY[name]
    except KeyError:
        raise PolicyError(
            f"unknown policy {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return ctor(**kwargs)


def registered_policies() -> List[str]:
    return sorted(_REGISTRY)
