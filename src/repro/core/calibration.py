"""Software-path cost constants for the Mux layer.

Every per-operation CPU cost Mux charges to the simulated clock is named
here, with the mechanism it models.  These are the reproduction's analogue
of "how long the kernel code path takes"; they were chosen once against the
device profiles in :mod:`repro.devices.profile` so the paper's overhead
*shapes* hold (§3.2: Mux adds per-operation latency that is large relative
to a PM access, modest relative to an SSD access and small relative to an
HDD access; write overheads are small because they amortize over 4 MB).

Nothing in the test suite depends on the exact values; tests assert signs
and orderings, benchmarks report magnitudes next to the paper's numbers.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Mux VFS-call processing (Figure 1c components)
# ---------------------------------------------------------------------------

#: VFS Call Processor + Cache Controller entry: request validation,
#: collective-inode lookup.
MUX_OP_BASE_NS = 250

#: Block Lookup Table query via the extent tree: one descent.
MUX_BLT_LOOKUP_NS = 150

#: Extra cost per additional extent run touched by a split request.
MUX_BLT_RUN_NS = 80

#: Flat byte-array BLT (ablation): constant-time per *block* touched.
MUX_BLT_BYTEARRAY_PER_BLOCK_NS = 25

#: Metadata Tracker: affinity bookkeeping per attribute update.
MUX_AFFINITY_NS = 70

#: OCC Synchronizer: version read + migration-flag check on the hot path.
MUX_OCC_CHECK_NS = 60

#: FS Multiplexer: building one delegated sub-request (handle translation,
#: offset rewrite) — charged per sub-request, on top of the downstream
#: VFS dispatch and file-system costs.
MUX_DISPATCH_NS = 200

#: Policy Runner: one placement-policy invocation.
MUX_POLICY_NS = 120

# ---------------------------------------------------------------------------
# Metadata affinity lazy synchronization (§2.3)
# ---------------------------------------------------------------------------

#: Mux propagates the affinitive atime to the owning file system every Nth
#: read of a file ("lazily synchronizes participating file systems").  On a
#: journaling FS that setattr commits a journal transaction, so the slow
#: tier pays a real (amortized) cost on the read path.
ATIME_SYNC_INTERVAL = 16

#: Same, for mtime/size on the write path.
MTIME_SYNC_INTERVAL = 64

# ---------------------------------------------------------------------------
# Mux metafile ("Mux maintains its own metadata like block lookup table,
# file affinity table, etc." — §2.3, persisted in Mux's separate metafile
# storage, §3.1)
# ---------------------------------------------------------------------------

#: serialized size of one Mux metadata record (BLT delta, affinity change,
#: collective-inode attribute update)
META_RECORD_BYTES = 64

#: Mux batches metadata records and persists them (append + fsync on the
#: metafile) every Nth record — the "lazy synchronization" knob.
META_SYNC_RECORDS = 48

# ---------------------------------------------------------------------------
# SCM cache manager (§2.5)
# ---------------------------------------------------------------------------

#: Cache-controller lookup (hash of (ino, block) -> slot).
CACHE_LOOKUP_NS = 120

#: MGLRU bookkeeping per insertion/promotion (generation list moves).
CACHE_MGLRU_NS = 180

#: Slot metadata persist: pointer + generation tag store/flush on PM.
CACHE_SLOT_META_NS = 150

#: Only tiers at least this many ranks below the cache device are cached
#: (caching PM-resident data in a PM cache is pointless).
CACHE_MIN_RANK_GAP = 1

#: Dirty-interval bookkeeping per write absorbed in place by the cache
#: (write-back mode): interval insert + persisted dirty tag on PM.
CACHE_DIRTY_META_NS = 160

#: Dispatch cost per coalesced destage run (building the slow-tier write
#: request for one contiguous dirty extent).
CACHE_DESTAGE_RUN_NS = 400

#: Simulated-time writeback budget: destage all dirty blocks once at least
#: this much simulated time has passed since the previous destage cycle.
CACHE_WRITEBACK_INTERVAL_NS = 2_000_000

#: Destage everything once dirty blocks exceed this fraction of cache
#: capacity (pressure trigger, independent of the time budget).
CACHE_WRITEBACK_MAX_DIRTY_FRAC = 0.25

#: Scan-resistant admission: a per-file sequential streak at least this
#: many blocks long marks the stream as a scan.
SCAN_RESIST_STREAM_BLOCKS = 256

#: ... and miss runs at least this large within a detected scan bypass the
#: cache fill (small point reads still cache even mid-scan).
SCAN_RESIST_MIN_RUN = 8

# ---------------------------------------------------------------------------
# OCC migration (§2.4)
# ---------------------------------------------------------------------------

#: Blocks copied per migration step (one yield per chunk).
MIGRATION_CHUNK_BLOCKS = 64

#: OCC retries before falling back to lock-based migration.
OCC_MAX_RETRIES = 3

#: Cost of taking/releasing the fallback per-file lock.
LOCK_FALLBACK_NS = 900

# ---------------------------------------------------------------------------
# Async submit/complete ring (io_uring-style user API)
# ---------------------------------------------------------------------------

#: Building one submission-queue entry + doorbell: request validation and
#: enqueue on the ring, charged foreground per submit (the analogue of
#: io_uring_enter's per-SQE cost).
RING_SUBMIT_NS = 150

#: Harvesting one completion-queue entry (CQE read + ring head update).
RING_REAP_NS = 40

# ---------------------------------------------------------------------------
# Degraded mode (fault injection)
# ---------------------------------------------------------------------------

#: First retry delay after a transient device error (simulated ns).
FAULT_RETRY_BASE_NS = 50_000

#: Exponential backoff multiplier between transient-fault retries.
FAULT_BACKOFF_MULT = 2

#: Transient-fault retries before the operation gives up with EIO.
FAULT_MAX_RETRIES = 6

# ---------------------------------------------------------------------------
# Strata baseline (§3.1)
# ---------------------------------------------------------------------------

#: Strata per-operation software cost (its kernel/LibFS split path).
STRATA_OP_NS = 2000

#: Size of one digest unit: Strata moves data from the PM log to its final
#: device in small fixed units, so slow devices see many small writes
#: instead of the large batched extents a production FS would issue.
STRATA_DIGEST_UNIT_BLOCKS = 16

#: Extent-tree partial-lock hold time charged to operations that touch a
#: file while any migration/digest is in flight (§3.1: "the file extent
#: tree ... has to be partially locked during block-level data migration").
STRATA_TREE_LOCK_NS = 1500

#: Per log-entry append bookkeeping beyond the PM stores themselves.
STRATA_LOG_ENTRY_NS = 300

#: Blocks per device write during digest/migration.  Strata issues I/O at
#: log-entry granularity, so its device writes batch far fewer blocks than
#: a production file system's delayed-allocation writeback.
STRATA_DEVICE_BATCH_BLOCKS = 3

#: Blocks per device write on Strata's *migration* path.  Migration is the
#: bolted-on feature (§3.1: each path requires manually matching threading
#: model, block size and call context), and moves data with less batching
#: than the digest fast path.
STRATA_MIGRATION_BATCH_BLOCKS = 2
