"""Mux: a tiered file system that talks to file systems, not device drivers.

``MuxFileSystem`` implements the VFS-facing :class:`FileSystem` interface
upward and *consumes the same interface* downward: every data operation is
split according to the per-file Block Lookup Table and delegated to the
native file systems registered as tiers, "by calling the same VFS function
that invokes it, but with different file handles, lengths, and offsets"
(§2.1).

Components (Figure 1c):

* **VFS Call Processor** — the public methods of this class;
* **FS Multiplexer / VFS Call Maker** — :meth:`_dispatch_read` /
  :meth:`_dispatch_write` plus the I/O scheduler;
* **File Blk. Tracker** — the per-file Block Lookup Table (§2.2);
* **Metadata Tracker** — collective inodes + metadata affinity (§2.3);
* **State Bookkeeper** — the metafile writer that lazily persists Mux's
  own metadata to the fastest tier;
* **OCC Synchronizer & Policy Runner** — the migration engine (§2.4);
* **Cache Controller** — the SCM cache manager (§2.5).

Files are backed by *sparse files of the same path* on each participating
tier, preserving file offsets so no extra translation layer is needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import calibration as cal
from repro.core.blt import BlockLookupTable, ExtentBlt, replica_runs
from repro.core.cache import ScmCacheManager
from repro.core.health import HealthState
from repro.core.intervals import intersect_runs
from repro.core.metadata import CollectiveInode, MuxNamespace
from repro.core.migration import MigrationEngine
from repro.core.mirror import MirrorEngine
from repro.core.policy import (
    MigrationOrder,
    MirrorOrder,
    FileView,
    PlacementRequest,
    Policy,
    TierState,
)
from repro.core.policies import LruTieringPolicy
from repro.core.pressure import PressureMonitor
from repro.core.registry import Tier, TierRegistry
from repro.core.scheduler import IoScheduler, SubRequest
from repro.devices.profile import DeviceKind, DeviceProfile
from repro.errors import (
    DeviceIoError,
    DeviceOffline,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NoSpace,
    PolicyError,
    ReproError,
    TierUnavailable,
    WritebackError,
)
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs import path as vpath
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags, attrs_for_update
from repro.vfs.stat import FsStats, Stat
from repro.vfs.vfs import VFS

META_FILE = "/.mux_meta"


class MuxMetaWriter:
    """State Bookkeeper: lazily persists Mux metadata records (§2.3).

    Mux's own metadata (BLT deltas, affinity changes, collective-inode
    attributes) is appended to a metafile on a chosen tier; records are
    batched and made durable (append + fsync) every
    ``META_SYNC_RECORDS`` records — the paper's lazy synchronization.
    """

    def __init__(self, fs: FileSystem, clock: SimClock) -> None:
        self.fs = fs
        self.clock = clock
        if fs.exists(META_FILE):
            fs.unlink(META_FILE)
        self._handle = fs.create(META_FILE)
        self._offset = 0
        self._buffered = 0
        self.stats = CounterSet()

    def note(self, records: int = 1) -> None:
        """Buffer ``records`` metadata records; flush on the sync interval."""
        self._buffered += records
        self.stats.add("records", records)
        if self._buffered >= cal.META_SYNC_RECORDS:
            self.flush()

    #: the metafile is a circular log: once it reaches this size, appends
    #: wrap (a real implementation would checkpoint + truncate)
    MAX_BYTES = 4 * 1024 * 1024

    def flush(self, durable: bool = True) -> None:
        """Append buffered records to the metafile.

        ``durable=False`` writes the records but skips the explicit fsync —
        used when the caller is about to fsync data on the same file
        system, whose (file-system-global) journal commit covers the
        metafile update too.
        """
        if self._buffered == 0:
            return
        payload = bytes(self._buffered * cal.META_RECORD_BYTES)
        if self._offset + len(payload) > self.MAX_BYTES:
            self._offset = 0
        delay = cal.FAULT_RETRY_BASE_NS
        for attempt in range(cal.FAULT_MAX_RETRIES + 1):
            try:
                self.fs.write(self._handle, self._offset, payload)
                if durable:
                    self.fs.fsync(self._handle)
                break
            except DeviceIoError as exc:
                if exc.transient and attempt < cal.FAULT_MAX_RETRIES:
                    self.stats.add("flush_retries")
                    self.clock.advance_ns(delay)
                    delay *= cal.FAULT_BACKOFF_MULT
                    continue
                # the bookkeeping tier is failing hard: keep the records
                # buffered and let a later flush retry — lazy sync already
                # tolerates a durability window, and a user op must not
                # fail because Mux's own metafile append did
                self.stats.add("flush_deferred")
                return
            except DeviceOffline:
                self.stats.add("flush_deferred")
                return
        self._offset += len(payload)
        self._buffered = 0
        self.stats.add("flushes")

    def close(self) -> None:
        self.flush()
        if self._handle.is_open:
            self.fs.close(self._handle)


class MuxFileSystem(FileSystem):
    """The Mux tiered file system."""

    fs_name = "mux"

    def __init__(
        self,
        vfs: VFS,
        clock: SimClock,
        policy: Optional[Policy] = None,
        *,
        blt_factory=ExtentBlt,
        enable_cache: bool = True,
        cache_fraction: float = 0.25,
        cache_write_back: bool = False,
        cache_scan_resist: bool = False,
        scheduler: Optional[IoScheduler] = None,
    ) -> None:
        self.vfs = vfs
        self.clock = clock
        self.policy = policy if policy is not None else LruTieringPolicy()
        self.blt_factory = blt_factory
        self.enable_cache = enable_cache
        self.cache_fraction = cache_fraction
        self.cache_write_back = cache_write_back
        self.cache_scan_resist = cache_scan_resist
        #: next simulated-time writeback deadline (lazily armed on the
        #: first absorbed write)
        self._next_writeback_ns: Optional[int] = None
        self.scheduler = scheduler if scheduler is not None else IoScheduler()
        self.registry = TierRegistry()
        #: queue/dirty load sampler feeding TierState.pressure (pure
        #: host-side; cannot perturb fingerprints)
        self.pressure = PressureMonitor()
        self.ns = MuxNamespace(clock.now())
        self.engine = MigrationEngine(self)
        #: lazy mirror-sync engine (MOST); idle until a policy or caller
        #: grants a file a mirror, so unmirrored runs cost nothing
        self.mirrors = MirrorEngine(self)
        self.cache: Optional[ScmCacheManager] = None
        #: rank of the tier hosting the SCM cache (0 = fastest); kept in
        #: sync by _refresh_cache_and_meta / remove_tier so _cacheable
        #: never falls back to a stale default
        self._cache_tier_rank = 0
        self.block_size = 0
        self.stats = CounterSet()
        self._meta: Optional[MuxMetaWriter] = None
        #: optional per-op latency histograms (see enable_latency_recording)
        self.latencies: Optional[Dict[str, object]] = None
        #: optional QoS manager (quotas + class placement, §4)
        self.qos = None
        #: open submit/complete rings (see open_ring)
        self._rings: List["IoRing"] = []
        #: mux-level errseq ledger (kernel errseq_t analogue): bumped when
        #: an absorbed write is lost to a failed destage or a tier fsync
        #: reports a writeback error, so every open mux fd observes EIO at
        #: its next fsync exactly once
        self._wb_errseq: Dict[int, int] = {}
        self._wb_lost: Dict[int, List[Tuple[int, int]]] = {}

    def enable_qos(self):
        """Attach a :class:`~repro.core.qos.QosManager`; returns it."""
        from repro.core.qos import QosManager

        self.qos = QosManager(self.clock)
        return self.qos

    def set_placement(self, path: str, tier_id: Optional[int]) -> None:
        """Pin future writes of one file to a tier (None clears the pin).

        Existing blocks are not moved; submit a migration order for that.
        """
        inode = self.ns.resolve(path)
        if tier_id is not None:
            self.registry.get(tier_id)  # validates
        inode.pinned_tier = tier_id

    def enable_latency_recording(self) -> None:
        """Collect per-operation latency histograms in ``self.latencies``."""
        from repro.sim.histogram import LatencyHistogram

        self.latencies = {"read": LatencyHistogram(), "write": LatencyHistogram()}

    def open_ring(self, depth: int = 8):
        """Open an async submit/complete ring (see :mod:`repro.core.ring`).

        Independent user ops submitted on the ring overlap on the device
        timelines up to ``depth`` in flight; ``depth=1`` is the serialized
        baseline.  Close the ring when done (or use it as a context
        manager) so pessimistic locks stop quiescing it.
        """
        from repro.core.ring import IoRing

        ring = IoRing(self, depth=depth)
        self._rings.append(ring)
        return ring

    def quiesce_inflight(self, ino: Optional[int] = None) -> None:
        """Wait for in-flight ring ops (on ``ino``, or all) to complete.

        Called by the OCC Synchronizer's lock fallback after it suspends
        clock frames: the pessimistic lock must cover async submissions
        still completing against the file, so the global clock advances
        past them before the lock is granted.
        """
        for ring in self._rings:
            ring.quiesce(ino)

    def _record_latency(self, op: str, started_ns: int) -> None:
        if self.latencies is not None:
            self.latencies[op].record(self.clock.now_ns - started_ns)

    # ==================================================================
    # tier management (§2.1: add/remove at runtime)
    # ==================================================================

    def add_tier(
        self,
        name: str,
        fs: FileSystem,
        mount: str,
        profile: DeviceProfile,
        rank: Optional[int] = None,
    ) -> Tier:
        """Register a mounted native file system as a tier."""
        resolved, _ = self.vfs.resolve(mount)
        if resolved is not fs:
            raise InvalidArgument(f"{mount!r} does not resolve to {fs.fs_name!r}")
        fs_block = getattr(fs, "block_size", None)
        if fs_block is None:
            raise InvalidArgument("tier file system must expose block_size")
        if self.block_size and fs_block != self.block_size:
            raise InvalidArgument(
                f"tier block size {fs_block} != mux block size {self.block_size}"
            )
        self.block_size = fs_block
        tier = self.registry.add(name, fs, mount, profile, rank)
        device = getattr(fs, "device", None)
        timeline = getattr(device, "timeline", None)
        if timeline is not None:
            self.pressure.attach(tier.tier_id, timeline)
        self._refresh_cache_and_meta()
        return tier

    def remove_tier(self, tier_id: int) -> None:
        """Detach a tier after migrating all of its data off (§2.1)."""
        victim = self.registry.get(tier_id)
        refuges = [t for t in self.registry.ordered() if t.tier_id != tier_id]
        if not refuges:
            raise InvalidArgument("cannot remove the last tier")
        # mirror copies never migrate — the tier is leaving, so they are
        # simply retired (no punch: the whole backing store departs)
        self.mirrors.drop_tier(tier_id, punch=False)
        for inode in list(self.ns.files()):
            blocks = inode.blt.blocks_on(tier_id)
            if blocks == 0:
                continue
            dst = self._pick_refuge(refuges, blocks * self.block_size)
            end = inode.blt.end_block()
            self.engine.migrate_now(
                MigrationOrder(
                    inode.ino, 0, end, tier_id, dst.tier_id, reason="remove-tier"
                )
            )
            if inode.blt.blocks_on(tier_id):
                raise ReproError(f"tier {tier_id} still holds data for {inode.ino}")
            handle = inode.tier_handles.pop(tier_id, None)
            if handle is not None and handle.is_open:
                self.vfs.close(handle)
            inode.tiers_present.discard(tier_id)
        # no file may keep any reference to the departed tier: metadata
        # affinity moves to the fastest remaining tier, stale handles close
        fallback = refuges[0]
        for inode in self.ns.files():
            for attr, owner in inode.affinity.owners().items():
                if owner == tier_id:
                    inode.affinity.set_owner(attr, fallback.tier_id)
            if inode.pinned_tier == tier_id:
                inode.pinned_tier = None
            handle = inode.tier_handles.pop(tier_id, None)
            if handle is not None and handle.is_open:
                self.vfs.close(handle)
            inode.tiers_present.discard(tier_id)
        if self.cache is not None and victim.kind is DeviceKind.PERSISTENT_MEMORY:
            # the cache lived on the departing tier: write every absorbed
            # block back before its PM slots disappear, then drop it
            self._destage_all(durable=True)
            self.cache = None
            self._cache_tier_rank = 0
        self.registry.remove(tier_id)
        self.pressure.detach(tier_id)
        # tier paths resolved through the dentry cache must not survive
        # the topology change
        self.ns.dcache.clear()
        self._refresh_cache_and_meta()

    def _pick_refuge(self, refuges: List[Tier], need_bytes: int) -> Tier:
        for tier in refuges:  # fastest first
            if tier.fs.statfs().free_bytes >= need_bytes * 2:
                return tier
        raise NoSpace("no remaining tier can absorb the evacuated data")

    def _refresh_cache_and_meta(self) -> None:
        """(Re)provision the SCM cache and the metafile on the fastest tier."""
        if len(self.registry) == 0:
            return
        fastest = self.registry.fastest()
        if self._meta is None or self._meta.fs is not fastest.fs:
            if self._meta is not None:
                self._meta.close()
            self._meta = MuxMetaWriter(fastest.fs, self.clock)
        if not self.enable_cache or self.cache is not None:
            return
        scm_tiers = [
            t
            for t in self.registry.ordered()
            if t.kind is DeviceKind.PERSISTENT_MEMORY
            and isinstance(t.fs, NovaFileSystem)
        ]
        slower = [t for t in self.registry.ordered() if t.rank > 0]
        if scm_tiers and slower:
            scm = scm_tiers[0]
            free_blocks = scm.fs.statfs().free_blocks
            capacity = max(16, int(free_blocks * self.cache_fraction))
            self.cache = ScmCacheManager(
                self.clock,
                scm.fs,
                capacity,
                self.block_size,
                write_back=self.cache_write_back,
                scan_resist=self.cache_scan_resist,
            )
            self.cache.destage_fn = self._destage_evicted
            self.cache.on_lost = self._note_destage_lost
            self._cache_tier_rank = scm.rank
            self.pressure.set_dirty_gauge(
                scm.tier_id,
                lambda: (
                    self.cache.dirty_block_count / self.cache.capacity_blocks
                    if self.cache is not None and self.cache.capacity_blocks
                    else 0.0
                ),
            )

    def tier_ids(self) -> List[int]:
        return self.registry.ids()

    def tier_states(self) -> List[TierState]:
        """Registry snapshots with sampled pressure signals attached."""
        self.pressure.sample(self.clock.global_now_ns)
        return self.pressure.decorate(self.registry.states())

    def inode_by_ino(self, ino: int) -> CollectiveInode:
        return self.ns.get(ino)

    # ==================================================================
    # delegation plumbing (FS Multiplexer)
    # ==================================================================

    def _tier_path(self, tier: Tier, inode: CollectiveInode) -> str:
        return vpath.join(tier.mount, inode.rel_path.lstrip("/"))

    def _ensure_tier_dirs(self, tier: Tier, rel_path: str) -> None:
        """mkdir -p the parents of ``rel_path`` on one tier."""
        parent = vpath.dirname(rel_path)
        if parent == "/":
            return
        stack: List[str] = []
        probe = parent
        while probe != "/":
            full = vpath.join(tier.mount, probe.lstrip("/"))
            if self.vfs.exists(full):
                break
            stack.append(probe)
            probe = vpath.dirname(probe)
        for rel in reversed(stack):
            self.vfs.mkdir(vpath.join(tier.mount, rel.lstrip("/")))

    def _tier_handle(
        self, inode: CollectiveInode, tier: Tier, create: bool = True
    ) -> FileHandle:
        """The cached open handle for a file's backing file on one tier."""
        handle = inode.tier_handles.get(tier.tier_id)
        if handle is not None and handle.is_open:
            return handle
        full = self._tier_path(tier, inode)
        flags = OpenFlags.RDWR | (OpenFlags.CREAT if create else 0)
        if create and not self.vfs.exists(full):
            self._ensure_tier_dirs(tier, inode.rel_path)
        handle = self.vfs.open(full, flags)
        inode.tier_handles[tier.tier_id] = handle
        inode.tiers_present.add(tier.tier_id)
        return handle

    def _close_tier_handles(self, inode: CollectiveInode) -> None:
        for handle in inode.tier_handles.values():
            if handle.is_open:
                self.vfs.close(handle)
        inode.tier_handles.clear()

    # -- degraded-mode plumbing -------------------------------------------------

    def _tier_io(self, tier: Tier, op):
        """Run one tier I/O closure with health tracking and bounded retry.

        Transient injected errors are retried up to ``FAULT_MAX_RETRIES``
        times with exponential simulated-time backoff; persistent errors,
        device-offline rejections, and exhausted retries surface as
        :class:`TierUnavailable` (EIO) after recording the failure on the
        tier's health state machine.  On the healthy path this adds one
        ``is_offline`` check and one ``record_success`` call — no clock
        charges, no rng draws, so fingerprints are untouched.
        """
        health = tier.health
        delay = cal.FAULT_RETRY_BASE_NS
        attempt = 0
        while True:
            if health.is_offline:
                self.stats.add("io_rejected_offline")
                raise TierUnavailable(f"tier {tier.name!r} is offline")
            try:
                result = op()
            except DeviceOffline as exc:
                health.mark_offline()
                self.stats.add("io_rejected_offline")
                raise TierUnavailable(str(exc)) from exc
            except DeviceIoError as exc:
                health.record_error()
                if health.is_offline:
                    raise TierUnavailable(str(exc)) from exc
                if exc.transient and attempt < cal.FAULT_MAX_RETRIES:
                    attempt += 1
                    self.stats.add("fault_retries")
                    self.stats.add("fault_backoff_ns", delay)
                    self.clock.advance_ns(delay)
                    delay *= cal.FAULT_BACKOFF_MULT
                    continue
                self.stats.add("fault_gave_up")
                raise TierUnavailable(str(exc)) from exc
            else:
                health.record_success()
                return result

    def mark_tier_offline(self, tier_id: int) -> None:
        """Administratively fail a tier; its blocks return EIO until re-online."""
        self.registry.get(tier_id).health.mark_offline()

    def mark_tier_online(self, tier_id: int) -> None:
        """Re-admit a tier after repair; health returns to HEALTHY."""
        self.registry.get(tier_id).health.mark_online()

    def _writable_tiers(self) -> List[Tier]:
        """Registered tiers eligible for new writes, fastest first."""
        ordered = self.registry.ordered()
        healthy = [t for t in ordered if t.health.state is HealthState.HEALTHY]
        if healthy:
            return healthy
        return [t for t in ordered if not t.health.is_offline]

    # -- raw per-tier I/O (used by the OCC synchronizer) -----------------------

    def tier_read_raw(
        self, inode: CollectiveInode, tier_id: int, offset: int, length: int
    ) -> bytes:
        tier = self.registry.get(tier_id)

        def op() -> bytes:
            self.clock.advance_ns(cal.MUX_DISPATCH_NS)
            handle = self._tier_handle(inode, tier)
            data = self.vfs.read(handle, offset, length)
            if len(data) < length:  # sparse tail: the hole reads as zeros
                data += bytes(length - len(data))
            return data

        return self._tier_io(tier, op)

    def tier_write_raw(
        self, inode: CollectiveInode, tier_id: int, offset: int, data: bytes
    ) -> None:
        tier = self.registry.get(tier_id)

        def op() -> None:
            self.clock.advance_ns(cal.MUX_DISPATCH_NS)
            handle = self._tier_handle(inode, tier)
            self.vfs.write(handle, offset, data)

        self._tier_io(tier, op)

    def tier_punch(
        self, inode: CollectiveInode, tier_id: int, block_start: int, count: int
    ) -> None:
        tier = self.registry.get(tier_id)

        def op() -> None:
            handle = self._tier_handle(inode, tier, create=False)
            self.vfs.punch_hole(
                handle, block_start * self.block_size, count * self.block_size
            )

        self._tier_io(tier, op)

    def tier_fsync(self, inode: CollectiveInode, tier_id: int) -> None:
        tier = self.registry.get(tier_id)

        def op() -> None:
            handle = self._tier_handle(inode, tier, create=False)
            self.vfs.fsync(handle)

        self._tier_io(tier, op)

    def blt_commit_move(
        self,
        inode: CollectiveInode,
        runs: List[Tuple[int, int]],
        src_tier: int,
        dst_tier: int,
    ) -> None:
        """Atomically flip committed (start, length) runs in the BLT."""
        for start, count in runs:
            inode.blt.map_range(start, count, dst_tier)
            if self.cache is not None:
                self.cache.invalidate_range(inode.ino, start, count)
        if inode.replicas is not None:
            # the destination consumed its mirror (it now owns the bytes)
            # and the source's copies are punched below; mirrors elsewhere
            # stay valid — moving data does not change the data
            inode.replicas.on_moved(runs, src_tier, dst_tier)
        if self._meta is not None:
            self._meta.note(2)

    # ==================================================================
    # namespace operations
    # ==================================================================

    def _charge_base(self) -> None:
        self.clock.advance_ns(cal.MUX_OP_BASE_NS)

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        self._charge_base()
        path = vpath.normalize(path)
        now = self.clock.now()
        initial = self._place(
            PlacementRequest(path, 0, 0, 0, 0, is_append=True)
        )
        inode = self.ns.create_file(
            path, now, mode, initial.tier_id, blt=self.blt_factory()
        )
        inode.rel_path = path
        # the host file system becomes affinitive for all metadata (§2.3);
        # if it fails hard (retries exhausted / offline) the creation
        # spills to the next writable tier rather than surfacing EIO
        placed = False
        last_error: Optional[Exception] = None
        for tier in [initial] + [
            t for t in self._writable_tiers() if t.tier_id != initial.tier_id
        ]:
            try:
                self._tier_io(
                    tier, lambda t=tier: self._tier_handle(inode, t, create=True)
                )
                placed = True
                break
            except TierUnavailable as exc:
                last_error = exc
                self.stats.add("create_spills_fault")
        if not placed:
            # roll the namespace entry back: the file exists nowhere
            self.ns.unlink(path, now)
            raise last_error if last_error else TierUnavailable(
                f"no tier could host {path!r}"
            )
        if self._meta is not None:
            self._meta.note(2)
            self._meta.flush()  # namespace changes persist immediately
        self.stats.add("create")
        return self._make_handle(inode, path, OpenFlags.RDWR)

    def _make_handle(self, inode: CollectiveInode, path: str, flags: int) -> FileHandle:
        # callers pass already-canonical paths; don't re-normalize
        handle = FileHandle(self, inode.ino, path, flags)
        # errseq sample: fds opened after an error don't re-report it
        handle.wb_err = self._wb_errseq.get(inode.ino, 0)
        return handle

    # -- writeback-error ledger (mux-level errseq_t) ---------------------

    def _note_destage_lost(
        self, ino: int, runs: List[Tuple[int, int]]
    ) -> None:
        """Record absorbed writes dropped by a failed destage.

        Invoked by the cache when eviction-forced destage fails against a
        persistent tier error and the dirty blocks are discarded.  Bumps
        the inode's error sequence so every open fd sees EIO at its next
        fsync, and files the intervals for fsck's loss audit.
        """
        self._wb_errseq[ino] = self._wb_errseq.get(ino, 0) + 1
        self._wb_lost.setdefault(ino, []).extend(runs)
        self.stats.add("wb_errors")

    def _check_wb_error(self, handle: FileHandle) -> None:
        """errseq check-and-advance: raise EIO once per fd per error."""
        seq = self._wb_errseq.get(handle.ino, 0)
        if handle.wb_err < seq:
            handle.wb_err = seq
            raise WritebackError(
                f"mux: previous writeback of ino {handle.ino} failed"
            )

    def _consume_wb_error(self, handle: FileHandle) -> None:
        """Mark the current error seen (the fd that observed the failure
        directly must not see the same error again at its next fsync)."""
        handle.wb_err = self._wb_errseq.get(handle.ino, 0)

    def lost_intervals(self, ino: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """``(ino, file_block, count)`` intervals lost to failed destages."""
        if ino is not None:
            return [(ino, fb, n) for fb, n in self._wb_lost.get(ino, [])]
        return [
            (i, fb, n)
            for i in sorted(self._wb_lost)
            for fb, n in self._wb_lost[i]
        ]

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        self._charge_base()
        path = vpath.normalize(path)
        self.check_flags(flags)
        try:
            inode = self.ns.resolve(path)
        except FileNotFound:
            if not flags & OpenFlags.CREAT:
                raise
            handle = self.create(path)
            handle.flags = flags
            return handle
        if inode.is_dir:
            raise IsADirectory(f"mux: {path!r} is a directory")
        handle = self._make_handle(inode, path, flags)
        if flags & OpenFlags.TRUNC and OpenFlags.writable(flags):
            self.truncate(handle, 0)
        self.stats.add("open")
        return handle

    def close(self, handle: FileHandle) -> None:
        handle.ensure_open()
        if self.cache is not None and self.cache.write_back:
            try:
                inode = self.ns.get(handle.ino)
            except FileNotFound:
                inode = None
            if inode is not None and not inode.is_dir:
                self._destage_file(inode, durable=True)
        handle.mark_closed()
        self.stats.add("close")

    def unlink(self, path: str) -> None:
        self._charge_base()
        inode = self.ns.resolve(path)  # raises if absent
        if inode.is_dir:
            raise IsADirectory(f"mux: {path!r} is a directory")
        self._close_tier_handles(inode)
        for tier_id in sorted(inode.tiers_present):
            tier = self.registry.get(tier_id)
            if tier.health.is_offline:
                # the backing file is unreachable; fsck flags the orphan
                self.stats.add("unlink_skipped_offline")
                continue
            full = self._tier_path(tier, inode)
            if self.vfs.exists(full):
                self.vfs.unlink(full)
        if self.cache is not None:
            self.cache.invalidate_file(inode.ino)
        self.policy.forget(inode.ino)
        self.mirrors.forget(inode.ino)
        self._wb_errseq.pop(inode.ino, None)
        self._wb_lost.pop(inode.ino, None)
        self.ns.unlink(path, self.clock.now())
        if self._meta is not None:
            self._meta.note(1)
            self._meta.flush()
        self.stats.add("unlink")

    def rename(self, old_path: str, new_path: str) -> None:
        self._charge_base()
        old_path = vpath.normalize(old_path)
        new_path = vpath.normalize(new_path)
        if old_path == new_path:
            self.ns.resolve(old_path)  # must exist; successful no-op
            return
        now = self.clock.now()
        moving, replaced_ino = self.ns.rename(old_path, new_path, now)
        if replaced_ino is not None:
            # the clobbered file's inode is gone and ino numbers are never
            # reused: stale hotness must not pin it in the policy, and its
            # cache slots must not survive the namespace entry
            if self.cache is not None:
                self.cache.invalidate_file(replaced_ino)
            self.policy.forget(replaced_ino)
            self.mirrors.forget(replaced_ino)
        self._rename_backing(moving, new_path)
        if self._meta is not None:
            self._meta.note(2)
            self._meta.flush()
        self.stats.add("rename")

    def _rename_backing(self, inode: CollectiveInode, new_rel: str) -> None:
        """Move backing files on every tier; recurse into directories."""
        old_rel = inode.rel_path
        inode.rel_path = new_rel
        if inode.is_dir:
            for name, child_ino in inode.entries.items():
                child = self.ns.get(child_ino)
                self._rename_backing(child, vpath.join(new_rel, name))
            return
        for tier_id in sorted(inode.tiers_present):
            tier = self.registry.get(tier_id)
            old_full = vpath.join(tier.mount, old_rel.lstrip("/"))
            if not self.vfs.exists(old_full):
                continue
            self._ensure_tier_dirs(tier, new_rel)
            new_full = vpath.join(tier.mount, new_rel.lstrip("/"))
            # the backing handle paths change; drop cached handles
            handle = inode.tier_handles.pop(tier_id, None)
            if handle is not None and handle.is_open:
                self.vfs.close(handle)
            if self.vfs.exists(new_full):
                self.vfs.unlink(new_full)
            self.vfs.rename(old_full, new_full)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._charge_base()
        path = vpath.normalize(path)
        inode = self.ns.mkdir(path, self.clock.now(), mode)
        inode.rel_path = path
        if self._meta is not None:
            self._meta.note(1)
            self._meta.flush()
        self.stats.add("mkdir")

    def rmdir(self, path: str) -> None:
        self._charge_base()
        path = vpath.normalize(path)
        self.ns.rmdir(path, self.clock.now())
        for tier in self.registry.ordered():
            full = vpath.join(tier.mount, path.lstrip("/"))
            if self.vfs.exists(full):
                self.vfs.rmdir(full)
        if self._meta is not None:
            self._meta.note(1)
            self._meta.flush()
        self.stats.add("rmdir")

    def readdir(self, path: str) -> List[str]:
        self._charge_base()
        self.stats.add("readdir")
        # Mux's own namespace is authoritative: the merged view (§2.1)
        return [n for n in self.ns.readdir(path) if not n.startswith(".mux_")]

    # ==================================================================
    # data path
    # ==================================================================

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        handle.ensure_open()
        if not OpenFlags.readable(handle.flags):
            raise InvalidArgument("handle not open for reading")
        if offset < 0 or length < 0:
            raise InvalidArgument("negative offset/length")
        inode = self.ns.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"mux: read from directory {handle.path!r}")
        op_started_ns = self.clock.now_ns
        self.clock.advance_ns(cal.MUX_OP_BASE_NS + cal.MUX_OCC_CHECK_NS)
        # keep the pressure gauges fresh on the read path too — reads are
        # the majority op, and a burst the policy only notices at the next
        # *write* is a burst it dodges one burst too late.  Sampling is
        # interval-gated host work: no simulated time, no rng.
        self.pressure.sample(self.clock.global_now_ns)
        if offset >= inode.size or length == 0:
            return b""
        length = min(length, inode.size - offset)
        if self.qos is not None:
            self.qos.charge(handle, length)
        first_fb = offset // self.block_size
        last_fb = (offset + length - 1) // self.block_size
        runs = list(inode.blt.runs(first_fb, last_fb - first_fb + 1))
        self.clock.advance_ns(
            inode.blt.lookup_cost_ns(len(runs), last_fb - first_fb + 1)
        )
        if inode.replicas is not None:
            # MOST routing: each span serves from the fastest tier holding
            # a clean replica; an unhealthy authoritative owner fails over
            # to a clean mirror instead of EIO.  Pure interval algebra —
            # unmirrored files never enter this branch.
            runs = self._route_replicas(inode, first_fb, last_fb - first_fb + 1)

        # build per-tier sub-requests (FS Multiplexer)
        subrequests: List[SubRequest] = []
        tier_of: Dict[int, int] = {}
        for run_start, run_len, tier_id in runs:
            if tier_id is None:
                continue  # hole: stays zero in the output buffer
            run_off = max(offset, run_start * self.block_size)
            run_end = min(offset + length, (run_start + run_len) * self.block_size)
            if run_end <= run_off:
                continue
            subrequests.append(
                SubRequest(tier_id, run_off, run_end - run_off, run_off - offset)
            )
        kinds = {t.tier_id: t.kind for t in self.registry.ordered()}
        backlog = None
        if self.scheduler.pressure_order:
            self.pressure.sample(self.clock.global_now_ns)
            backlog = self.pressure.backlog_map()
        plan = self.scheduler.plan(subrequests, kinds, backlog)
        self.stats.add("split_reads", max(0, len(plan) - 1))

        # error-scoped degraded reads (§2.4 robustness): fail with EIO
        # *before* dispatching anything if any needed block lives on an
        # offline tier; requests touching only surviving tiers keep serving
        if self.registry.any_unhealthy():
            for req in plan:
                if self.registry.get(req.tier_id).health.is_offline:
                    self.stats.add("reads_failed_offline")
                    raise TierUnavailable(
                        f"blocks of {handle.path!r} live on offline tier "
                        f"{self.registry.get(req.tier_id).name!r}"
                    )

        out = bytearray(length)
        last_tier: Optional[int] = None
        # Parallel dispatch: each sub-request runs in its own clock frame
        # against its device's timeline, so spans on different tiers
        # overlap and the op completes at the max of their completions.
        # Dispatch CPU cost stays serial (Mux submits one at a time).
        overlap = self.scheduler.parallel and len(plan) > 1
        completions: List[int] = []
        for req in plan:
            self.clock.advance_ns(cal.MUX_DISPATCH_NS)
            tier = self.registry.get(req.tier_id)
            if overlap:
                self.clock.push_frame()
                try:
                    self._read_span(inode, tier, req, out)
                finally:
                    completions.append(self.clock.pop_frame())
            else:
                self._read_span(inode, tier, req, out)
            last_tier = req.tier_id
            self.policy.on_access(
                inode.ino,
                req.offset // self.block_size,
                -(-req.length // self.block_size),
                req.tier_id,
                "read",
                self.clock.now(),
            )
        if completions:
            self.clock.advance_to(max(completions))

        # metadata affinity: the FS fetching the last block owns atime (§2.3)
        now = self.clock.now()
        inode.atime = now
        if last_tier is not None:
            inode.affinity.set_owner("atime", last_tier)
        self.clock.advance_ns(cal.MUX_AFFINITY_NS)
        if self._meta is not None:
            self._meta.note(1)
        self.stats.add("read")
        self.stats.add("bytes_read", length)
        self._record_latency("read", op_started_ns)
        return bytes(out)

    def _route_replicas(
        self, inode: CollectiveInode, first_fb: int, count: int
    ) -> List[Tuple[int, int, Optional[int]]]:
        """Re-home each read span on the fastest tier with a clean replica.

        Candidate order is (health class, rank): a HEALTHY mirror beats a
        SUSPECT authoritative owner of any rank, and among equals the
        faster tier wins, with ties going to the authoritative copy.
        Adjacent spans routed to the same tier re-coalesce so mirroring
        never inflates the sub-request count for uniform placement.
        """

        def route_key(tier_id: int) -> Tuple[int, int]:
            tier = self.registry.get(tier_id)
            if tier.health.is_offline:
                hclass = 2
            elif tier.health.state is HealthState.SUSPECT:
                hclass = 1
            else:
                hclass = 0
            return (hclass, tier.rank)

        routed: List[Tuple[int, int, Optional[int]]] = []
        for start, n, tid, mirrors in replica_runs(
            inode.blt, inode.replicas, first_fb, count
        ):
            chosen = tid
            if tid is not None and mirrors:
                live = [m for m in mirrors if self.registry.maybe_get(m)]
                if live:
                    chosen = min([tid] + live, key=route_key)
                    if chosen != tid:
                        self.stats.add("reads_from_mirror")
                        if route_key(tid)[0] > 0:
                            self.stats.add("reads_degraded_mirror")
            if (
                routed
                and routed[-1][2] == chosen
                and routed[-1][0] + routed[-1][1] == start
            ):
                routed[-1] = (routed[-1][0], routed[-1][1] + n, chosen)
            else:
                routed.append((start, n, chosen))
        return routed

    def _read_span(
        self, inode: CollectiveInode, tier: Tier, req: SubRequest, out: bytearray
    ) -> None:
        """Serve one sub-request, through the SCM cache when applicable.

        Hits and misses are handled run-at-a-time from the cache's
        run-length-encoded span layout: consecutive cached blocks go
        through :meth:`ScmCacheManager.get_many`, a contiguous miss run is
        one ``vfs.read`` sized to the file plus one
        :meth:`~ScmCacheManager.put_many`.  The charge sequence matches
        the scalar per-block path exactly (the first hit after a miss run
        is still fetched singly before the misses flush, as the per-block
        loop did), and the layout is recomputed after every fill — the
        fill's MGLRU evictions may push later blocks of this very span
        out, which the per-block loop saw via its live membership probes.
        """
        if self.cache is None or not self._cacheable(tier):

            def direct() -> None:
                handle = self._tier_handle(inode, tier, create=False)
                # straight into the output buffer: one copy tier -> caller
                self.vfs.read_into(
                    handle, req.offset, req.length, out, req.buffer_offset
                )

            self._tier_io(tier, direct)
            return
        bs = self.block_size
        cache = self.cache
        ino = inode.ino
        first_fb = req.offset // bs
        last_fb = (req.offset + req.length - 1) // bs

        def flush_misses(start_fb: int, n: int) -> None:
            cache.note_misses(n)
            # one read for the whole contiguous miss run, sized to the
            # file so we never ask the tier to read past EOF
            want = min(n * bs, inode.size - start_fb * bs)

            def fetch() -> bytes:
                handle = self._tier_handle(inode, tier, create=False)
                return self.vfs.read(handle, start_fb * bs, want)

            raw = self._tier_io(tier, fetch)
            if len(raw) < n * bs:
                raw += bytes(n * bs - len(raw))
            if cache.should_admit(ino, start_fb, n):
                cache.put_many(ino, start_fb, raw)
            lo = max(req.offset, start_fb * bs)
            hi = min(req.offset + req.length, (start_fb + n) * bs)
            dst = req.buffer_offset + (lo - req.offset)
            out[dst : dst + hi - lo] = raw[lo - start_fb * bs : hi - start_fb * bs]

        end_fb = last_fb + 1
        pending: Optional[Tuple[int, int]] = None
        layout = cache.span_cached(ino, first_fb, end_fb - first_fb)
        idx = 0
        while idx < len(layout):
            start, n, cached = layout[idx]
            idx += 1
            if not cached:
                pending = (start, n)
                continue
            if pending is not None:
                block = cache.get(ino, start)
                self._copy_block_to_out(block, start, req, out)
                flush_misses(*pending)
                pending = None
                # the fill may have evicted later blocks of this span
                if start + 1 < end_fb:
                    layout = cache.span_cached(ino, start + 1, end_fb - start - 1)
                    idx = 0
                else:
                    break
                continue
            self._hit_run(inode, start, n, req, out)
        if pending is not None:
            flush_misses(*pending)
        cache.observe_span(ino, first_fb, end_fb - first_fb)

    def _hit_run(
        self,
        inode: CollectiveInode,
        fb: int,
        run: int,
        req: SubRequest,
        out: bytearray,
    ) -> None:
        """Copy ``run`` consecutive cached blocks into ``out``.

        Partial edge blocks (request starts or ends mid-block) go through
        single :meth:`~ScmCacheManager.get` calls so clipping stays simple;
        the full interior lands in ``out`` directly via ``get_many``.
        """
        bs = self.block_size
        cache = self.cache
        ino = inode.ino
        start, n = fb, run
        if start * bs < req.offset:
            block = cache.get(ino, start)
            self._copy_block_to_out(block, start, req, out)
            start += 1
            n -= 1
        if n <= 0:
            return
        req_end = req.offset + req.length
        tail: Optional[int] = None
        last = start + n - 1
        if (last + 1) * bs > req_end:
            tail = last
            n -= 1
        if n > 0:
            dst = req.buffer_offset + (start * bs - req.offset)
            cache.get_many(ino, start, n, out, dst)
        if tail is not None:
            block = cache.get(ino, tail)
            self._copy_block_to_out(block, tail, req, out)

    def _copy_block_to_out(
        self, block: bytes, fb: int, req: SubRequest, out: bytearray
    ) -> None:
        bs = self.block_size
        block_lo = fb * bs
        lo = max(req.offset, block_lo)
        hi = min(req.offset + req.length, block_lo + bs)
        if hi <= lo:
            return
        dst = req.buffer_offset + (lo - req.offset)
        out[dst : dst + (hi - lo)] = block[lo - block_lo : hi - block_lo]

    def _cacheable(self, tier: Tier) -> bool:
        return (
            self.cache is not None
            and tier.rank >= self._cache_tier_rank + cal.CACHE_MIN_RANK_GAP
        )

    # -- write-back cache: absorption + destaging ---------------------------

    def _absorb_write(
        self, inode: CollectiveInode, offset: int, data: bytes
    ) -> Optional[int]:
        """Absorb a write into the SCM cache if every touched block allows it.

        All-or-nothing: every block must be cache-resident and mapped to a
        cacheable (slow) tier, and no migration may be in flight — a
        partially absorbed write would split one write's durability story
        across two paths, and absorbing during a migration could race the
        OCC commit.  Returns the owning tier of the last block (for
        metadata affinity) on success, else None.
        """
        cache = self.cache
        if cache is None or not cache.write_back:
            return None
        if inode.migration_active or inode.locked:
            return None
        bs = self.block_size
        first_fb = offset // bs
        last_fb = (offset + len(data) - 1) // bs
        last_tier: Optional[int] = None
        covered = 0
        for run_start, run_len, tier_id in inode.blt.runs(
            first_fb, last_fb - first_fb + 1
        ):
            if tier_id is None or not self._cacheable(self.registry.get(tier_id)):
                return None
            covered += run_len
            last_tier = tier_id
        if covered != last_fb - first_fb + 1 or last_tier is None:
            return None
        for fb in range(first_fb, last_fb + 1):
            if not cache.contains(inode.ino, fb):
                return None
        view = memoryview(data)
        end = offset + len(data)
        for fb in range(first_fb, last_fb + 1):
            block_lo = fb * bs
            lo = max(offset, block_lo)
            hi = min(end, block_lo + bs)
            cache.write_hit(
                inode.ino, fb, bytes(view[lo - offset : hi - offset]), lo - block_lo
            )
        return last_tier

    def _destage_blocks(
        self,
        inode: CollectiveInode,
        runs: List[Tuple[int, int]],
        defer_offline: bool = False,
        durable: bool = False,
        background: bool = False,
    ) -> int:
        """Write dirty cached runs back to their owning tiers.

        Runs are split by BLT ownership and issued as one coalesced tier
        write per contiguous extent.  ``defer_offline=True`` (fsync/close/
        budget paths) skips runs whose owner is offline, leaving them
        dirty for a later cycle; with ``False`` (eviction/migration) the
        tier I/O raises and the caller decides.

        ``durable=True`` fsyncs each written tier afterwards: the dirty
        copy was durable on PM, so a destage that parks the bytes in a
        slow tier's volatile page cache would *lose* durability.  Callers
        whose own epilogue already flushes the tiers (``fsync`` fan-out,
        ``sync``) pass False and skip the double flush.

        ``background=True`` (the budget/interval writeback path) runs the
        whole batch in a background clock frame: the tier writes land on
        the devices' reserved background channels and the global clock
        does not absorb the batch — foreground ops pay only when they
        contend for the same device.  Returns blocks destaged.
        """
        cache = self.cache
        if cache is None or not runs:
            return 0
        if background:
            self.clock.push_frame(background=True)
            try:
                return self._destage_blocks(
                    inode, runs, defer_offline=defer_offline, durable=durable
                )
            finally:
                # deliberately discard the frame cursor: the batch drains
                # on the device timelines while the foreground proceeds
                self.clock.pop_frame()
        bs = self.block_size
        destaged = 0
        nruns = 0
        touched: Dict[int, Tier] = {}
        for start, count in runs:
            for run_start, run_len, tier_id in list(inode.blt.runs(start, count)):
                if tier_id is None:
                    # the range was unmapped since absorption (truncate or
                    # punch already invalidated; defensive)
                    cache.mark_clean(inode.ino, run_start, run_len)
                    continue
                want = min(run_len * bs, inode.size - run_start * bs)
                if want <= 0:
                    cache.mark_clean(inode.ino, run_start, run_len)
                    continue
                tier = self.registry.get(tier_id)
                if defer_offline and tier.health.is_offline:
                    self.stats.add("destage_deferred", run_len)
                    continue
                self.clock.advance_ns(cal.CACHE_DESTAGE_RUN_NS)
                payload = cache.load_for_destage(inode.ino, run_start, run_len)

                def op(t: Tier = tier, off: int = run_start * bs,
                       buf: bytes = payload[:want]) -> None:
                    self.clock.advance_ns(cal.MUX_DISPATCH_NS)
                    tier_handle = self._tier_handle(inode, t, create=True)
                    self.vfs.write(tier_handle, off, buf)

                self._tier_io(tier, op)
                cache.mark_clean(inode.ino, run_start, run_len)
                touched[tier_id] = tier
                destaged += run_len
                nruns += 1
        if durable:
            for tier_id in sorted(touched):
                try:
                    self.tier_fsync(inode, tier_id)
                except TierUnavailable:
                    # the tier died between the write and its flush; the
                    # blocks are marked clean but may be volatile there —
                    # recovery resolves via fsck's cache reconciliation
                    self.stats.add("destage_flush_failed")
        cache.note_destage(nruns, destaged)
        return destaged

    def _destage_evicted(self, ino: int, runs: List[Tuple[int, int]]) -> None:
        """Destage callback the cache invokes before evicting dirty blocks."""
        try:
            inode = self.ns.get(ino)
        except FileNotFound:
            return  # unlink already dropped the dirty marks
        self._destage_blocks(inode, runs, durable=True)

    def _destage_file(self, inode: CollectiveInode, durable: bool = False) -> int:
        """Destage every dirty block of one file (fsync/close paths)."""
        cache = self.cache
        if cache is None or not cache.write_back:
            return 0
        runs = cache.dirty_runs(inode.ino)
        if not runs:
            return 0
        return self._destage_blocks(
            inode, runs, defer_offline=True, durable=durable
        )

    def _destage_all(self, durable: bool = False, background: bool = False) -> int:
        """Destage every dirty block in the cache (sync/budget paths)."""
        cache = self.cache
        if cache is None or not cache.write_back:
            return 0
        total = 0
        for ino in cache.dirty_files():
            try:
                inode = self.ns.get(ino)
            except FileNotFound:
                cache.invalidate_file(ino)  # defensive: unlink cleans up
                continue
            total += self._destage_blocks(
                inode,
                cache.dirty_runs(ino),
                defer_offline=True,
                durable=durable,
                background=background,
            )
        return total

    def destage_for_migration(
        self, inode: CollectiveInode, block_start: int, count: int
    ) -> None:
        """OCC pre-step: flush absorbed writes in the range to the source.

        Called by :class:`~repro.core.occ.OccSynchronizer` before the first
        attempt so the source tier holds the authoritative bytes the copy
        phase reads; absorption is refused while ``migration_active`` is
        set, so no new dirty blocks can appear mid-migration and a destage
        never races ``blt_commit_move``.
        """
        cache = self.cache
        if cache is None or not cache.write_back:
            return
        runs = cache.dirty_runs_in(inode.ino, block_start, count)
        if runs:
            self._destage_blocks(inode, runs, durable=True)

    def _maybe_writeback(self) -> None:
        """Destage everything when the dirty set or the sim clock says so."""
        cache = self.cache
        if cache is None or not cache.write_back:
            return
        dirty = cache.dirty_block_count
        if not dirty:
            return
        now = self.clock.now_ns
        if self._next_writeback_ns is None:
            self._next_writeback_ns = now + cal.CACHE_WRITEBACK_INTERVAL_NS
        threshold = cal.CACHE_WRITEBACK_MAX_DIRTY_FRAC * cache.capacity_blocks
        if dirty >= threshold or now >= self._next_writeback_ns:
            if dirty < threshold:
                # the time deadline fired before the dirty budget did:
                # bounded staleness beat a foreground flood to the destage
                # (dispatcher-fairness counterpart of deadline promotion)
                self.stats.add("wb_deadline_destages")
            # the batch drains on background device channels; the user op
            # that tripped the budget is not stalled behind it
            self._destage_all(durable=True, background=self.scheduler.parallel)
            self._next_writeback_ns = (
                self.clock.now_ns + cal.CACHE_WRITEBACK_INTERVAL_NS
            )

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        handle.ensure_open()
        if not OpenFlags.writable(handle.flags):
            raise InvalidArgument("handle not open for writing")
        if offset < 0:
            raise InvalidArgument("negative offset")
        inode = self.ns.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"mux: write to directory {handle.path!r}")
        op_started_ns = self.clock.now_ns
        self.clock.advance_ns(cal.MUX_OP_BASE_NS + cal.MUX_OCC_CHECK_NS)
        if not data:
            return 0
        if handle.flags & OpenFlags.APPEND:
            offset = inode.size
        bs = self.block_size
        first_fb = offset // bs
        last_fb = (offset + len(data) - 1) // bs
        nblocks = last_fb - first_fb + 1
        self.clock.advance_ns(inode.blt.lookup_cost_ns(2, nblocks))

        if self.qos is not None:
            self.qos.charge(handle, len(data))

        # write-back fast path: if every touched block is resident in the
        # SCM cache (and stably mapped to a slow tier), absorb the write
        # in place on PM and destage later in coalesced batches
        absorb_tier = self._absorb_write(inode, offset, data)
        if absorb_tier is not None:
            if inode.replicas is not None:
                # the write absorbs on the fastest copy; every mirror of
                # the touched range is stale until the sync engine recopies
                inode.replicas.note_write(
                    first_fb, nblocks, absorb_tier, self.clock.now_ns
                )
                self.mirrors.note_stale(inode.ino)
            self.policy.on_access(
                inode.ino,
                first_fb,
                nblocks,
                absorb_tier,
                "write",
                self.clock.now(),
            )
            now = self.clock.now()
            if offset + len(data) > inode.size:
                inode.size = offset + len(data)
                inode.affinity.set_owner("size", absorb_tier)
            inode.mtime = inode.ctime = now
            inode.affinity.set_owner("mtime", absorb_tier)
            inode.affinity.set_owner("ctime", absorb_tier)
            self.clock.advance_ns(cal.MUX_AFFINITY_NS)
            if self._meta is not None:
                self._meta.note(1)
            self._maybe_writeback()
            # O_SYNC is already satisfied: the slot store + flush_range in
            # write_hit made the data durable on PM, which is exactly the
            # absorption win (§2.5) — synchronous small writes commit at
            # memory speed and destage to the slow tier in batches later
            self.stats.add("write")
            self.stats.add("writes_absorbed")
            self.stats.add("bytes_written", len(data))
            self._record_latency("write", op_started_ns)
            return len(data)

        # placement: one policy decision per write (§2.1); TPFS-style
        # policies route on I/O size *and* synchronicity.  Per-file pins
        # and QoS class pins override the policy.
        synchronous = bool(handle.flags & OpenFlags.SYNC)
        forced = inode.pinned_tier
        if forced is None and self.qos is not None:
            forced = self.qos.placement_override(handle)
        if forced is not None and (
            self.registry.get(forced).health.state is not HealthState.HEALTHY
            or not self._tier_has_room(self.registry.get(forced), len(data))
        ):
            # a suspect/offline/full pin routes around via the policy path
            forced = None
        if forced is not None:
            target = self.registry.get(forced)
        else:
            target = self._place(
                PlacementRequest(
                    path=handle.path,
                    ino=inode.ino,
                    offset=offset,
                    length=len(data),
                    file_size=inode.size,
                    is_append=offset >= inode.size,
                    synchronous=synchronous,
                )
            )

        segments = self._segment_write(inode, offset, data, target.tier_id)
        extended = offset + len(data) > inode.size
        # Phase 1: land every segment on its tier.  No BLT/cache/policy
        # state is touched until all tier writes succeeded, so a NoSpace or
        # dead-tier failure mid-write leaves the BLT describing exactly the
        # pre-write file (the write is atomic at the BLT level).
        placed: List[Tuple[int, int, int]] = []  # (tier, first_block, count)
        overlap = self.scheduler.parallel and len(segments) > 1
        completions: List[int] = []
        for tier_id, seg_off, seg_data in segments:
            self.clock.advance_ns(cal.MUX_DISPATCH_NS)
            if overlap:
                self.clock.push_frame()
                try:
                    tier_id = self._write_segment(inode, tier_id, seg_off, seg_data)
                finally:
                    completions.append(self.clock.pop_frame())
            else:
                tier_id = self._write_segment(inode, tier_id, seg_off, seg_data)
            seg_first = seg_off // bs
            seg_last = (seg_off + len(seg_data) - 1) // bs
            placed.append((tier_id, seg_first, seg_last - seg_first + 1))
        if completions:
            self.clock.advance_to(max(completions))
        last_seg_tier = placed[-1][0]
        # Phase 2: commit the mapping (map_range/invalidate/on_access are
        # all charge-free, so the fingerprint matches the fused loop)
        for tier_id, seg_first, seg_count in placed:
            inode.blt.map_range(seg_first, seg_count, tier_id)
            if inode.replicas is not None:
                inode.replicas.note_write(
                    seg_first, seg_count, tier_id, self.clock.now_ns
                )
            if inode.migration_active:
                inode.dirty_during_migration.add_range(seg_first, seg_count)
            if self.cache is not None:
                self.cache.invalidate_range(inode.ino, seg_first, seg_count)
            self.policy.on_access(
                inode.ino,
                seg_first,
                seg_count,
                tier_id,
                "write",
                self.clock.now(),
            )

        if inode.replicas is not None:
            self.mirrors.note_stale(inode.ino)
        # collective inode + affinity updates (§2.3)
        now = self.clock.now()
        if extended:
            inode.size = offset + len(data)
            inode.affinity.set_owner("size", last_seg_tier)
        inode.mtime = inode.ctime = now
        inode.affinity.set_owner("mtime", last_seg_tier)
        inode.affinity.set_owner("ctime", last_seg_tier)
        self.clock.advance_ns(cal.MUX_AFFINITY_NS)
        if self._meta is not None:
            self._meta.note(1)
        if synchronous:
            self.fsync(handle)
        self.stats.add("write")
        self.stats.add("bytes_written", len(data))
        self.stats.add("split_writes", max(0, len(segments) - 1))
        self._record_latency("write", op_started_ns)
        return len(data)

    def _tier_reserve(self, tier: Tier) -> int:
        """Headroom kept free on every tier: copy-on-write file systems
        need transient blocks, and Mux's own metafile must stay writable."""
        return max(64 * self.block_size, tier.fs.statfs().total_bytes // 100)

    def _tier_has_room(self, tier: Tier, length: int) -> bool:
        return tier.fs.statfs().free_bytes >= length + self._tier_reserve(tier)

    def _place(self, request: PlacementRequest) -> Tier:
        """Run the placement policy, falling back down-rank when full.

        The fallback scan only considers writable (non-suspect,
        non-offline) tiers, so new writes route around a failing tier even
        when the policy's own choice ignores health.
        """
        self.clock.advance_ns(cal.MUX_POLICY_NS)
        states = self.tier_states()
        tier_id = self.policy.place_write(request, states)
        chosen = self.registry.get(tier_id)
        if not chosen.health.is_offline and self._tier_has_room(
            chosen, request.length
        ):
            return chosen
        for tier in self._writable_tiers():
            if tier.rank >= chosen.rank and self._tier_has_room(tier, request.length):
                return tier
        for tier in self._writable_tiers():
            if self._tier_has_room(tier, request.length):
                return tier
        raise NoSpace(f"no tier has room for {request.length} bytes")

    def _write_segment(
        self, inode: CollectiveInode, tier_id: int, seg_off: int, seg_data: bytes
    ) -> int:
        """Write one segment, falling back to slower tiers on ENOSPC.

        Returns the tier that actually received the data.  The placement
        check in :meth:`_place` is a snapshot; the underlying file system
        is the authority (copy-on-write and delayed allocation can both
        demand more blocks than the snapshot promised).
        """
        candidates = [tier_id] + [
            t.tier_id
            for t in self.registry.ordered()
            if t.tier_id != tier_id and t.rank >= self.registry.get(tier_id).rank
        ] + [
            t.tier_id
            for t in self.registry.ordered()
            if t.tier_id != tier_id and t.rank < self.registry.get(tier_id).rank
        ]
        last_error: Optional[Exception] = None
        for candidate in candidates:
            tier = self.registry.get(candidate)
            if tier.health.is_offline:
                continue  # a dead tier cannot absorb new writes

            def op(t: Tier = tier) -> None:
                seg_handle = self._tier_handle(inode, t, create=True)
                self.vfs.write(seg_handle, seg_off, seg_data)

            try:
                self._tier_io(tier, op)
                return candidate
            except NoSpace as exc:
                last_error = exc
                self.stats.add("write_spills")
                continue
            except TierUnavailable as exc:
                # retries exhausted / tier died mid-write: spill downhill
                last_error = exc
                self.stats.add("write_spills_fault")
                continue
        raise last_error if last_error else NoSpace("all tiers full")

    def _segment_write(
        self, inode: CollectiveInode, offset: int, data: bytes, policy_tier: int
    ) -> List[Tuple[int, int, bytes]]:
        """Split a write into (tier, offset, data) segments.

        Full blocks and unmapped blocks follow the policy's placement;
        *partial* edge blocks that already live on some tier are updated in
        place on that tier — a sub-block write must not split one block's
        bytes across two file systems (the BLT is block-granular).  Only
        the two edge blocks can be partial, so the split is (head?, body,
        tail?) with one data slice per coalesced segment instead of a
        per-block loop.
        """
        bs = self.block_size
        end = offset + len(data)
        # (tier, start, end) spans; data is sliced once after coalescing
        raw: List[Tuple[int, int, int]] = []
        pos = offset
        if offset % bs:
            fb = offset // bs
            head_end = min(end, (fb + 1) * bs)
            current = inode.blt.lookup(fb)
            tier_id = current if current is not None else policy_tier
            raw.append((tier_id, offset, head_end))
            pos = head_end
        tail: Optional[Tuple[int, int, int]] = None
        if pos < end and end % bs:
            fb = (end - 1) // bs
            tail_start = fb * bs
            if tail_start >= pos:
                current = inode.blt.lookup(fb)
                tier_id = current if current is not None else policy_tier
                tail = (tier_id, tail_start, end)
        body_end = tail[1] if tail is not None else end
        if pos < body_end:
            raw.append((policy_tier, pos, body_end))
        if tail is not None:
            raw.append(tail)
        # coalesce adjacent same-tier spans
        spans: List[Tuple[int, int, int]] = []
        for tier_id, seg_start, seg_end in raw:
            if spans and spans[-1][0] == tier_id and spans[-1][2] == seg_start:
                spans[-1] = (tier_id, spans[-1][1], seg_end)
            else:
                spans.append((tier_id, seg_start, seg_end))
        view = memoryview(data)
        return [
            (tier_id, seg_start, bytes(view[seg_start - offset : seg_end - offset]))
            for tier_id, seg_start, seg_end in spans
        ]

    def truncate(self, handle: FileHandle, size: int) -> None:
        handle.ensure_open()
        if size < 0:
            raise InvalidArgument("negative size")
        inode = self.ns.get(handle.ino)
        self._charge_base()
        if inode.is_dir:
            raise IsADirectory(f"mux: truncate of directory {handle.path!r}")
        for tier_id in sorted(inode.tiers_present):
            tier = self.registry.get(tier_id)
            if tier.health.is_offline:
                self.stats.add("truncate_skipped_offline")
                continue
            tier_handle = self._tier_handle(inode, tier, create=False)
            self.vfs.truncate(tier_handle, size)
        old_end = inode.blt.end_block()
        new_end = -(-size // self.block_size)
        if old_end > new_end:
            if self.cache is not None:
                self.cache.invalidate_range(inode.ino, new_end, old_end - new_end)
            inode.blt.unmap_range(new_end, old_end - new_end)
            if inode.replicas is not None:
                # the per-tier truncations above already cut every backing
                # file (mirror tiers are in tiers_present); only the
                # interval bookkeeping remains
                inode.replicas.drop_range(new_end, old_end - new_end)
        now = self.clock.now()
        inode.size = size
        inode.mtime = inode.ctime = now
        if self._meta is not None:
            self._meta.note(2)
        self.stats.add("truncate")

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        """Deallocate a range: punch every participating tier, clear the BLT."""
        handle.ensure_open()
        if offset % self.block_size or length % self.block_size:
            raise InvalidArgument("punch_hole requires block-aligned arguments")
        if length <= 0:
            return
        inode = self.ns.get(handle.ino)
        if inode.is_dir:
            raise IsADirectory(f"mux: punch_hole on directory {handle.path!r}")
        self._charge_base()
        first_fb = offset // self.block_size
        count = length // self.block_size
        for run_start, run_len, tier_id in list(inode.blt.runs(first_fb, count)):
            if tier_id is None:
                continue
            tier = self.registry.get(tier_id)
            tier_handle = self._tier_handle(inode, tier, create=False)
            self.vfs.punch_hole(
                tier_handle, run_start * self.block_size, run_len * self.block_size
            )
            if self.cache is not None:
                self.cache.invalidate_range(inode.ino, run_start, run_len)
        if inode.replicas is not None:
            # mirror copies are invisible to the BLT loop above: punch
            # them explicitly so the replica blocks are reclaimed too
            for tier_id in inode.replicas.tiers():
                for s, n in intersect_runs(
                    inode.replicas.tracked_runs(tier_id), [(first_fb, count)]
                ):
                    try:
                        self.tier_punch(inode, tier_id, s, n)
                    except TierUnavailable:
                        self.stats.add("mirror_punch_skipped_offline")
                        break
            inode.replicas.drop_range(first_fb, count)
        inode.blt.unmap_range(first_fb, count)
        if self._meta is not None:
            self._meta.note(1)
        self.stats.add("punch_hole")

    def fsync(self, handle: FileHandle) -> None:
        """Fan out fsync to every participating file system (§4)."""
        handle.ensure_open()
        inode = self.ns.get(handle.ino)
        self._charge_base()
        try:
            wb_failed = self._fsync_fanout(inode)
        except ReproError:
            # the error reached this fd directly; per the errseq contract
            # it must not ALSO see a WritebackError at its next fsync
            self._consume_wb_error(handle)
            raise
        if wb_failed:
            # a tier FS reported a buffered-writeback failure against its
            # (shared, long-lived) tier handle; fold it into the mux-level
            # ledger so every open mux fd observes it exactly once
            self._wb_errseq[inode.ino] = self._wb_errseq.get(inode.ino, 0) + 1
            self.stats.add("wb_errors")
        self.stats.add("fsync")
        self._check_wb_error(handle)

    def _fsync_fanout(self, inode: CollectiveInode) -> bool:
        """Destage + flush every participating tier; True if any tier
        reported a writeback error (data already lost at the tier FS)."""
        if self.cache is not None and self.cache.write_back and not inode.is_dir:
            # absorbed writes must reach their owning tiers before those
            # tiers' fsyncs below make them durable (the destage registers
            # the tier handle, so the fsync fan-out covers it)
            self._destage_file(inode)
        if self._meta is not None:
            # the per-tier fsyncs below commit the meta tier's journal too
            self._meta.flush(durable=False)
        targets: List[Tuple[Tier, FileHandle]] = []
        for tier_id in sorted(inode.tiers_present):
            tier_handle = inode.tier_handles.get(tier_id)
            if tier_handle is None or not tier_handle.is_open:
                continue
            tier = self.registry.get(tier_id)
            if tier.health.is_offline:
                # keep serving: surviving tiers still get their fsync,
                # the dead tier's durability debt is flagged for fsck
                self.stats.add("fsync_skipped_offline")
                continue
            targets.append((tier, tier_handle))
        # the fan-out flushes independent devices: overlap them
        overlap = self.scheduler.parallel and len(targets) > 1
        completions: List[int] = []
        wb_failed = False
        for tier, tier_handle in targets:
            if overlap:
                self.clock.push_frame()
                try:
                    try:
                        self._tier_io(
                            tier, lambda h=tier_handle: self.vfs.fsync(h)
                        )
                    except WritebackError:
                        # already-lost data: keep flushing the other tiers
                        wb_failed = True
                finally:
                    completions.append(self.clock.pop_frame())
            else:
                try:
                    self._tier_io(tier, lambda h=tier_handle: self.vfs.fsync(h))
                except WritebackError:
                    wb_failed = True
        if completions:
            self.clock.advance_to(max(completions))
        return wb_failed

    # ==================================================================
    # metadata operations
    # ==================================================================

    def getattr(self, path: str) -> Stat:
        """Serve attributes from the collective inode cache (§2.3).

        Affinity failover: when an attribute's affinitive file system is
        offline, the collective inode's cached value is served anyway —
        possibly missing the affinitive FS's latest lazy update — and the
        attribute is listed in ``extra["stale_attrs"]`` so callers (and
        fsck) can tell a degraded answer from an authoritative one.
        """
        self._charge_base()
        inode = self.ns.resolve(path)
        self.stats.add("getattr")
        if inode.is_dir:
            return inode.stat()
        stale: Optional[List[str]] = None
        if self.registry.any_unhealthy():
            stale = sorted(
                attr
                for attr, owner in inode.affinity.owners().items()
                if owner is not None
                and owner in self.registry
                and self.registry.get(owner).health.is_offline
            )
            if stale:
                self.stats.add("stale_attr_reads")
        # disk consumption has no single owner: aggregate across tiers
        blocks_512 = inode.blt.mapped_blocks() * (self.block_size // 512)
        return inode.stat(blocks=blocks_512, stale_attrs=stale)

    def setattr(self, path: str, **attrs: object) -> Stat:
        self._charge_base()
        clean = attrs_for_update(attrs)
        inode = self.ns.resolve(path)
        for name, value in clean.items():
            if name == "mode":
                inode.mode = int(value)  # type: ignore[arg-type]
            else:
                setattr(inode, name, float(value))  # type: ignore[arg-type]
            if not inode.is_dir and name in ("atime", "mtime", "ctime", "mode"):
                # Mux performed the update; the fastest participating tier
                # becomes affinitive and others sync lazily
                owner = min(
                    inode.tiers_present,
                    default=None,
                    key=lambda t: self.registry.get(t).rank,
                )
                if owner is not None:
                    inode.affinity.set_owner(name if name != "ctime" else "ctime", owner)
        self.clock.advance_ns(cal.MUX_AFFINITY_NS)
        if self._meta is not None:
            self._meta.note(1)
        self.stats.add("setattr")
        blocks_512 = (
            0 if inode.is_dir else inode.blt.mapped_blocks() * (self.block_size // 512)
        )
        return inode.stat(blocks=blocks_512)

    def statfs(self) -> FsStats:
        """Expose the whole hierarchy as a single device (§1)."""
        total = 0
        free = 0
        for tier in self.registry.ordered():
            s = tier.fs.statfs()
            total += s.total_blocks
            free += s.free_blocks
        return FsStats(self.block_size or 4096, total, free)

    # ==================================================================
    # tiering maintenance (Policy Runner)
    # ==================================================================

    def file_views(self) -> List[FileView]:
        views: List[FileView] = []
        for inode in self.ns.files():
            end = inode.blt.end_block()
            runs = list(inode.blt.runs(0, end)) if end else []
            views.append(
                FileView(
                    ino=inode.ino,
                    path=inode.rel_path,
                    size=inode.size,
                    blocks_by_tier={
                        t: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()
                    },
                    runs=runs,
                )
            )
        return views

    def maintain(self, max_rounds: int = 4) -> int:
        """Ask the policy for migrations and run them to completion.

        Returns the number of migration orders executed.
        """
        executed = 0
        for _ in range(max_rounds):
            states = self.tier_states()
            views = self.file_views()
            orders = self.policy.plan_migrations(states, views)
            self._maintain_mirrors(states, views)
            if not orders:
                break
            for order in orders:
                try:
                    self.ns.get(order.ino)
                except FileNotFound:
                    continue  # file vanished since planning
                if not self.engine.supports(order.src_tier, order.dst_tier):
                    continue
                self.engine.migrate_now(order)
                executed += 1
        return executed

    def maintain_async(self) -> int:
        """Plan migrations and submit them as cooperative background tasks."""
        states = self.tier_states()
        views = self.file_views()
        orders = self.policy.plan_migrations(states, views)
        submitted = 0
        for order in orders:
            try:
                self.ns.get(order.ino)
            except FileNotFound:
                continue
            if self.engine.supports(order.src_tier, order.dst_tier):
                self.engine.submit(
                    order,
                    defer_while_hot=getattr(
                        self.policy, "defer_hot_migrations", False
                    ),
                )
                submitted += 1
        self._maintain_mirrors(states, views)
        return submitted

    def _maintain_mirrors(
        self, states: List[TierState], views: List[FileView]
    ) -> int:
        """Apply the policy's mirror plan and advance sync convergence.

        Both halves are no-ops for mirror-blind policies (``plan_mirrors``
        defaults to []) and idle engines, so pre-MOST workloads keep
        bit-identical fingerprints.  Returns blocks synced this step.
        """
        orders = self.policy.plan_mirrors(states, views)
        if orders:
            self.apply_mirror_orders(orders)
        return self.mirrors.tick()

    def apply_mirror_orders(self, orders: List[MirrorOrder]) -> int:
        """Grant/retire mirrors per the policy's orders; returns applied."""
        applied = 0
        for order in orders:
            try:
                inode = self.ns.get(order.ino)
            except FileNotFound:
                continue  # file vanished since planning
            if self.registry.maybe_get(order.tier_id) is None:
                continue
            if order.action == "drop":
                self.mirrors.drop_mirror(inode, order.tier_id)
            else:
                self.mirrors.add_mirror(inode, order.tier_id)
            applied += 1
        return applied

    def evacuate(self, tier_id: int) -> Dict[str, int]:
        """Drain every block off a suspect tier onto healthy tiers.

        Uses the existing run-level OCC migration per file.  If the tier's
        health is OFFLINE it is first demoted to SUSPECT so the drain may
        read it — evacuation of a tier whose *device* still rejects reads
        will leave files behind (reported in ``files_failed``).  Affinity
        owned by the drained tier fails over to the fastest surviving
        tier; backing handles are closed for fully-drained files.
        """
        src = self.registry.get(tier_id)
        if src.health.is_offline:
            src.health.mark_suspect()
        # mirrors on the draining tier are redundant copies: retire them
        # (reclaiming their blocks) before moving the authoritative data
        self.mirrors.drop_tier(tier_id, punch=True)
        summary = {
            "files_drained": 0,
            "files_failed": 0,
            "blocks_moved": 0,
            "retries": 0,
        }
        for inode in list(self.ns.files()):
            blocks = inode.blt.blocks_on(tier_id)
            if blocks == 0:
                continue
            dst: Optional[Tier] = None
            for candidate in self.registry.ordered():
                if candidate.tier_id == tier_id:
                    continue
                if candidate.health.state is not HealthState.HEALTHY:
                    continue
                if self._tier_has_room(candidate, blocks * self.block_size):
                    dst = candidate
                    break
            if dst is None:
                raise NoSpace(
                    f"no healthy tier can absorb {blocks} blocks from "
                    f"tier {src.name!r}"
                )
            end = inode.blt.end_block()
            result = self.engine.migrate_now(
                MigrationOrder(
                    inode.ino, 0, end, tier_id, dst.tier_id, reason="evacuate"
                )
            )
            summary["blocks_moved"] += result.moved_blocks
            summary["retries"] += result.retries
            if inode.blt.blocks_on(tier_id):
                summary["files_failed"] += 1
                continue
            summary["files_drained"] += 1
            # the tier no longer backs this file: failover affinity, close
            # the stale handle, and forget the tier's participation
            fallback = next(
                (
                    t
                    for t in self.registry.ordered()
                    if t.tier_id != tier_id and not t.health.is_offline
                ),
                None,
            )
            if fallback is not None:
                for attr, owner in inode.affinity.owners().items():
                    if owner == tier_id:
                        inode.affinity.set_owner(attr, fallback.tier_id)
            if inode.pinned_tier == tier_id:
                inode.pinned_tier = None
            stale_handle = inode.tier_handles.pop(tier_id, None)
            if stale_handle is not None and stale_handle.is_open:
                self.vfs.close(stale_handle)
            inode.tiers_present.discard(tier_id)
        self.stats.add("evacuations")
        if self._meta is not None:
            self._meta.note(2)
            self._meta.flush()
        return summary

    def report(self) -> str:
        """A human-readable status dashboard (tiers, cache, migrations)."""
        lines = ["mux status"]
        lines.append("  tiers:")
        for tier in self.registry.ordered():
            stats = tier.fs.statfs()
            lines.append(
                f"    [{tier.rank}] {tier.name:8s} {tier.fs.fs_name:8s} "
                f"{stats.used_bytes / 1e6:8.1f}/{stats.total_bytes / 1e6:.1f} MB "
                f"({100 * stats.utilization:5.1f}%) "
                f"{tier.health.state.value}"
            )
        if self.cache is not None:
            lines.append(
                f"  scm cache: {self.cache.cached_blocks}/"
                f"{self.cache.capacity_blocks} blocks, "
                f"hit ratio {self.cache.hit_ratio():.2f}"
            )
            if self.cache.write_back:
                counters = self.cache.cache_counters()
                lines.append(
                    f"  write-back: {counters.get('write_hit', 0)} absorbed, "
                    f"{counters.get('destage_runs', 0)} destage runs "
                    f"({counters.get('destaged_blocks', 0)} blocks), "
                    f"{counters.get('dirty_blocks', 0)} dirty"
                )
        engine = self.engine.stats
        lines.append(
            f"  migrations: {engine.get('migrations')} runs, "
            f"{engine.get('blocks_moved')} blocks, "
            f"{engine.get('conflicts')} conflicts, "
            f"{engine.get('lock_fallbacks')} lock fallbacks"
        )
        lines.append(
            f"  ops: {self.stats.get('read')} reads / "
            f"{self.stats.get('write')} writes / "
            f"{self.stats.get('fsync')} fsyncs; "
            f"{len(self.ns) - 1} namespace entries"
        )
        if (
            self.stats.get("fault_retries")
            or self.stats.get("io_rejected_offline")
            or self.stats.get("fault_gave_up")
        ):
            lines.append(
                f"  faults: {self.stats.get('fault_retries')} retries "
                f"({self.stats.get('fault_backoff_ns')} ns backoff), "
                f"{self.stats.get('fault_gave_up')} gave up, "
                f"{self.stats.get('io_rejected_offline')} offline rejections, "
                f"{self.stats.get('reads_failed_offline')} reads failed"
            )
        if self.qos is not None:
            for name, io_class in sorted(self.qos.classes().items()):
                throttled = self.qos.stats.get(f"throttled_ops.{name}")
                if io_class.quota_bytes_per_sec or throttled:
                    lines.append(
                        f"  qos[{name}]: quota "
                        f"{(io_class.quota_bytes_per_sec or 0) / 1e6:.1f} MB/s, "
                        f"{throttled} throttled ops"
                    )
        return "\n".join(lines)

    # ==================================================================
    # whole-FS sync / crash composition (§4)
    # ==================================================================

    def sync(self) -> None:
        self._destage_all()
        if self._meta is not None:
            self._meta.flush()
        for tier in self.registry.ordered():
            tier.fs.sync()

    def crash(self) -> None:
        """Crash composition: each participating FS loses its own volatile
        state.  Mux's durable metadata is modeled by the metafile appends;
        collective-inode state is reconstructed from it on recovery (the
        reconstruction itself is charged as a metafile scan)."""
        for inode in self.ns.files():
            inode.tier_handles.clear()
            inode.migration_active = False
            inode.dirty_during_migration.clear()
            if inode.replicas is not None:
                # the sync-state map is DRAM metadata: after a crash every
                # mirror interval must re-prove itself before recovery may
                # serve it, so nothing stale is ever read as authoritative
                inode.replicas.mark_all_stale(self.clock.now_ns)
                self.mirrors.note_stale(inode.ino)
        # the errseq ledger is DRAM state: pending error reports die with
        # the kernel (the losses themselves persist in the cache's ledger)
        self._wb_errseq.clear()
        self._wb_lost.clear()
        for tier in self.registry.ordered():
            tier.fs.crash()

    def recover(self) -> None:
        for tier in self.registry.ordered():
            tier.fs.recover()
        if self._meta is not None and len(self.registry):
            # charge the metafile scan on the fastest tier
            fastest = self.registry.fastest()
            if fastest.fs.exists(META_FILE):
                fastest.fs.read_file(META_FILE)
        self._reconcile_namespace()

    def _reconcile_namespace(self) -> None:
        """Drop references to backing files that vanished across a crash.

        A crash between an unlink's per-tier deletions and its namespace
        commit leaves the collective inode pointing at backing files that
        no longer exist.  Mount-time reconciliation (the orphan scan every
        journaling FS performs) prunes those references — and any BLT runs
        stranded on them — so fsck sees a consistent namespace instead of
        dangling tier pointers.  Offline tiers are left alone: their
        backing files are unreachable, not deleted.
        """
        for inode in self.ns.files():
            for tier_id in sorted(inode.tiers_present):
                tier = self.registry.maybe_get(tier_id)
                if tier is None or tier.health.is_offline:
                    continue
                if self.vfs.exists(self._tier_path(tier, inode)):
                    continue
                inode.tiers_present.discard(tier_id)
                inode.tier_handles.pop(tier_id, None)
                end = inode.blt.end_block()
                for start, count, tid in list(inode.blt.runs(0, end)):
                    if tid == tier_id:
                        inode.blt.unmap_range(start, count)
                if inode.replicas is not None and inode.replicas.has_tier(
                    tier_id
                ):
                    # the mirror's backing file died with the crash: its
                    # sync state must not outlive the bytes
                    inode.replicas.retire_tier(tier_id)
                    if not inode.replicas.tiers():
                        inode.replicas = None
                        self.mirrors.forget(inode.ino)
                self.stats.add("recover_pruned_tier_refs")
