"""Multi-generational LRU (§2.5).

"We use Multi-generational LRU for cache replacement, which is also the
algorithm Linux uses for its page caches."

The model keeps ``num_generations`` ordered generations; new entries enter
the youngest generation, accessed entries are promoted back to it, and
eviction takes the head (least recent) of the *oldest* non-empty
generation.  Aging shifts every generation down one step whenever the
youngest generation grows past its share of the capacity, which is the
essential behaviour of the kernel's lru_gen: recency is tracked in coarse
generation buckets rather than by precise list reordering.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generic, Hashable, List, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class MultiGenLru(Generic[K]):
    """Fixed-capacity multi-generational LRU over hashable keys."""

    def __init__(self, capacity: int, num_generations: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if num_generations < 2:
            raise ValueError("need at least 2 generations")
        self.capacity = capacity
        self.num_generations = num_generations
        #: index 0 = youngest generation
        self._gens: List["OrderedDict[K, None]"] = [
            OrderedDict() for _ in range(num_generations)
        ]
        self._where: Dict[K, int] = {}
        self.ages = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: K) -> bool:
        return key in self._where

    @property
    def generation_sizes(self) -> List[int]:
        return [len(g) for g in self._gens]

    def generation_of(self, key: K) -> Optional[int]:
        return self._where.get(key)

    # -- operations --------------------------------------------------------

    def touch(self, key: K) -> bool:
        """Record an access: promote to the youngest generation.

        Returns False if the key is not cached.
        """
        gen = self._where.get(key)
        if gen is None:
            return False
        if gen != 0:
            del self._gens[gen][key]
            self._gens[0][key] = None
            self._where[key] = 0
        else:
            self._gens[0].move_to_end(key)
        return True

    def insert(self, key: K) -> List[K]:
        """Insert ``key`` (idempotent: re-insert = touch); returns evictees."""
        if key in self._where:
            self.touch(key)
            return []
        evicted: List[K] = []
        while len(self._where) >= self.capacity:
            victim = self._evict_one()
            if victim is None:
                break
            evicted.append(victim)
        self._gens[0][key] = None
        self._where[key] = 0
        if len(self._gens[0]) > max(1, self.capacity // self.num_generations):
            self.age()
        return evicted

    def remove(self, key: K) -> bool:
        """Explicitly drop a key (invalidation)."""
        gen = self._where.pop(key, None)
        if gen is None:
            return False
        del self._gens[gen][key]
        return True

    def age(self) -> None:
        """Shift every generation one step older; oldest two merge."""
        oldest = self._gens[-1]
        second = self._gens[-2]
        for key in second:
            oldest[key] = None
            self._where[key] = self.num_generations - 1
        merged = oldest
        self._gens = (
            [OrderedDict()] + self._gens[:-2] + [merged]
        )
        for gen_index, gen in enumerate(self._gens):
            for key in gen:
                self._where[key] = gen_index
        self.ages += 1

    def _evict_one(self) -> Optional[K]:
        for gen_index in range(self.num_generations - 1, -1, -1):
            gen = self._gens[gen_index]
            if gen:
                key, _ = gen.popitem(last=False)
                del self._where[key]
                self.evictions += 1
                return key
        return None

    # -- invariants (property tests) -------------------------------------------

    def check_invariants(self) -> None:
        assert len(self._where) <= self.capacity
        seen: Dict[K, int] = {}
        for gen_index, gen in enumerate(self._gens):
            for key in gen:
                assert key not in seen, f"{key!r} in generations {seen[key]} and {gen_index}"
                seen[key] = gen_index
        assert seen == self._where
