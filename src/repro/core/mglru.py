"""Multi-generational LRU (§2.5).

"We use Multi-generational LRU for cache replacement, which is also the
algorithm Linux uses for its page caches."

The model keeps ``num_generations`` ordered generations; new entries enter
the youngest generation, accessed entries are promoted back to it, and
eviction takes the head (least recent) of the *oldest* non-empty
generation.  Aging shifts every generation down one step whenever the
youngest generation grows past its share of the capacity, which is the
essential behaviour of the kernel's lru_gen: recency is tracked in coarse
generation buckets rather than by precise list reordering.

Generations are numbered *monotonically*: ``_gens`` is a deque ordered
oldest-first and ``_base`` is the absolute generation number of its head,
so an age step is "pop the two oldest, merge, renumber only the merged
keys, push an empty youngest" — O(merged generation).  The naive
list-shifting formulation re-labels every key in ``_where`` on every age,
which is O(total population) and shows up directly on the cache fill path
(inserts auto-age under pressure).  ``tests/test_mglru_equiv.py`` pins
this implementation against the scalar list-shifting reference.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Generic, Hashable, List, Optional, TypeVar

K = TypeVar("K", bound=Hashable)


class MultiGenLru(Generic[K]):
    """Fixed-capacity multi-generational LRU over hashable keys."""

    def __init__(self, capacity: int, num_generations: int = 4) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if num_generations < 2:
            raise ValueError("need at least 2 generations")
        self.capacity = capacity
        self.num_generations = num_generations
        #: leftmost = oldest generation; absolute number of the head
        #: generation is ``_base`` and numbers increase rightward
        self._gens: Deque["OrderedDict[K, None]"] = deque(
            OrderedDict() for _ in range(num_generations)
        )
        self._base = 0
        #: key -> absolute (monotonic) generation number
        self._where: Dict[K, int] = {}
        self.ages = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: K) -> bool:
        return key in self._where

    @property
    def _youngest(self) -> int:
        return self._base + self.num_generations - 1

    @property
    def generation_sizes(self) -> List[int]:
        """Sizes youngest-first (index 0 = youngest)."""
        return [len(g) for g in reversed(self._gens)]

    def generation_of(self, key: K) -> Optional[int]:
        """Relative generation index (0 = youngest), or None."""
        seq = self._where.get(key)
        if seq is None:
            return None
        return self._youngest - seq

    # -- operations --------------------------------------------------------

    def touch(self, key: K) -> bool:
        """Record an access: promote to the youngest generation.

        Returns False if the key is not cached.
        """
        seq = self._where.get(key)
        if seq is None:
            return False
        youngest = self._youngest
        if seq != youngest:
            del self._gens[seq - self._base][key]
            self._gens[-1][key] = None
            self._where[key] = youngest
        else:
            self._gens[-1].move_to_end(key)
        return True

    def insert(self, key: K) -> List[K]:
        """Insert ``key`` (idempotent: re-insert = touch); returns evictees."""
        if key in self._where:
            self.touch(key)
            return []
        evicted: List[K] = []
        while len(self._where) >= self.capacity:
            victim = self._evict_one()
            if victim is None:
                break
            evicted.append(victim)
        self._gens[-1][key] = None
        self._where[key] = self._youngest
        if len(self._gens[-1]) > max(1, self.capacity // self.num_generations):
            self.age()
        return evicted

    def remove(self, key: K) -> bool:
        """Explicitly drop a key (invalidation)."""
        seq = self._where.pop(key, None)
        if seq is None:
            return False
        del self._gens[seq - self._base][key]
        return True

    def age(self) -> None:
        """Shift every generation one step older; oldest two merge.

        Only the keys of the merged generation are renumbered (the
        survivors of the old oldest generation move up to the merged
        number; the second-oldest's keys already carry it), so an age
        costs O(merged generation) — middle generations and their
        ``_where`` entries are untouched.
        """
        oldest = self._gens.popleft()
        second = self._gens.popleft()
        merged_no = self._base + 1
        for key in oldest:
            self._where[key] = merged_no
        # second-oldest keys append after the oldest's (preserving the
        # oldest-first eviction order of the scalar reference); their
        # _where entries already equal merged_no
        for key in second:
            oldest[key] = None
        self._gens.appendleft(oldest)
        self._gens.append(OrderedDict())
        self._base += 1
        self.ages += 1

    def _evict_one(self) -> Optional[K]:
        for gen in self._gens:  # oldest first
            if gen:
                key, _ = gen.popitem(last=False)
                del self._where[key]
                self.evictions += 1
                return key
        return None

    # -- invariants (property tests) -------------------------------------------

    def check_invariants(self) -> None:
        assert len(self._where) <= self.capacity
        assert len(self._gens) == self.num_generations
        seen: Dict[K, int] = {}
        for offset, gen in enumerate(self._gens):
            for key in gen:
                assert key not in seen, (
                    f"{key!r} in generations {seen[key]} and {self._base + offset}"
                )
                seen[key] = self._base + offset
        assert seen == self._where
