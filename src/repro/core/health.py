"""Per-tier health state machine for degraded-mode tiering.

Each registered tier carries a :class:`TierHealth` that Mux drives from
observed I/O outcomes: consecutive errors walk a tier from HEALTHY through
SUSPECT to OFFLINE, and consecutive successes walk a SUSPECT tier back to
HEALTHY.  OFFLINE is sticky — a device that the injector (or an operator)
declared dead only returns via an explicit :meth:`TierHealth.mark_online`,
mirroring how real arrays require an admin re-admit after a drive drop.

All bookkeeping is pure host-side Python: no simulated-time charges and no
rng draws, so attaching health tracking never perturbs fingerprints.
"""

from __future__ import annotations

from enum import Enum

#: consecutive errors before a HEALTHY tier is demoted to SUSPECT
HEALTH_SUSPECT_ERRORS = 3
#: consecutive errors before a SUSPECT tier is demoted to OFFLINE
HEALTH_OFFLINE_ERRORS = 8
#: consecutive successes before a SUSPECT tier is promoted back to HEALTHY
HEALTH_RECOVERY_SUCCESSES = 16


class HealthState(Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    OFFLINE = "offline"


class TierHealth:
    """Consecutive-outcome counters driving one tier's health state."""

    __slots__ = ("state", "consecutive_errors", "consecutive_successes", "total_errors")

    def __init__(self) -> None:
        self.state = HealthState.HEALTHY
        self.consecutive_errors = 0
        self.consecutive_successes = 0
        self.total_errors = 0

    # -- observations -----------------------------------------------------------

    def record_success(self) -> None:
        if self.state is HealthState.HEALTHY and self.consecutive_errors == 0:
            return  # hot path: nothing to update
        self.consecutive_errors = 0
        if self.state is HealthState.SUSPECT:
            self.consecutive_successes += 1
            if self.consecutive_successes >= HEALTH_RECOVERY_SUCCESSES:
                self.state = HealthState.HEALTHY
                self.consecutive_successes = 0

    def record_error(self) -> None:
        self.total_errors += 1
        self.consecutive_errors += 1
        self.consecutive_successes = 0
        if self.state is HealthState.HEALTHY:
            if self.consecutive_errors >= HEALTH_SUSPECT_ERRORS:
                self.state = HealthState.SUSPECT
        elif self.state is HealthState.SUSPECT:
            if self.consecutive_errors >= HEALTH_OFFLINE_ERRORS:
                self.state = HealthState.OFFLINE

    # -- administrative transitions ---------------------------------------------

    def mark_offline(self) -> None:
        self.state = HealthState.OFFLINE
        self.consecutive_successes = 0

    def mark_suspect(self) -> None:
        self.state = HealthState.SUSPECT
        self.consecutive_errors = 0
        self.consecutive_successes = 0

    def mark_online(self) -> None:
        """Admin re-admit: device returns as HEALTHY with clean counters."""
        self.state = HealthState.HEALTHY
        self.consecutive_errors = 0
        self.consecutive_successes = 0

    # -- queries -----------------------------------------------------------------

    @property
    def is_offline(self) -> bool:
        return self.state is HealthState.OFFLINE

    @property
    def accepts_writes(self) -> bool:
        """New-write placement avoids both SUSPECT and OFFLINE tiers."""
        return self.state is HealthState.HEALTHY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TierHealth({self.state.value}, errs={self.consecutive_errors}, "
            f"total={self.total_errors})"
        )
