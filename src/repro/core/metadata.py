"""Collective inodes, metadata affinity and the Mux namespace (§2.3).

Mux distributes a file's blocks across file systems, so no single native
file system holds authoritative metadata.  Mux resolves this with
*metadata affinity*: each single-owner attribute (size, atime, mtime,
ctime, mode) has exactly one affinitive file system at any instant — the
one that last produced the attribute's value.  Attribute values are cached
in a *collective inode* so getattr never has to fan out; aggregated
attributes (disk consumption) are summed across all participating file
systems on demand.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.core.blt import BlockLookupTable, ExtentBlt, ReplicaSet
from repro.core.dcache import DentryCache
from repro.core.intervals import BlockIntervalSet
from repro.vfs import path as vpath
from repro.vfs.interface import FileHandle
from repro.vfs.stat import SINGLE_OWNER_ATTRS, FileType, Stat


class MetadataAffinity:
    """Tracks the affinitive tier for every single-owner attribute."""

    def __init__(self, initial_tier: Optional[int]) -> None:
        self._owners: Dict[str, Optional[int]] = {
            attr: initial_tier for attr in SINGLE_OWNER_ATTRS
        }

    def owner(self, attr: str) -> Optional[int]:
        try:
            return self._owners[attr]
        except KeyError:
            raise InvalidArgument(f"{attr!r} is not a single-owner attribute")

    def set_owner(self, attr: str, tier_id: int) -> None:
        if attr not in self._owners:
            raise InvalidArgument(f"{attr!r} is not a single-owner attribute")
        self._owners[attr] = tier_id

    def owners(self) -> Dict[str, Optional[int]]:
        return dict(self._owners)

    def check_single_owner(self) -> None:
        """Invariant: every attribute has at most one owner (trivially true
        by construction; kept as an explicit property-test hook)."""
        for attr, owner in self._owners.items():
            assert owner is None or isinstance(owner, int), (attr, owner)


class CollectiveInode:
    """Mux's per-file metadata hub: cached attributes, affinity, BLT, OCC state."""

    def __init__(
        self,
        ino: int,
        file_type: FileType,
        now: float,
        mode: int,
        blt: Optional[BlockLookupTable] = None,
        initial_tier: Optional[int] = None,
    ) -> None:
        self.ino = ino
        self.file_type = file_type
        #: current path of the file inside the Mux namespace; kept so each
        #: tier's backing (sparse) file can be found under the same name
        self.rel_path = "/"
        self.size = 0
        self.atime = now
        self.mtime = now
        self.ctime = now
        self.mode = mode
        self.nlink = 2 if file_type is FileType.DIRECTORY else 1
        self.affinity = MetadataAffinity(initial_tier)
        self.blt: BlockLookupTable = blt if blt is not None else ExtentBlt()
        self.entries: Dict[str, int] = {}
        # --- OCC Synchronizer state (§2.4) ---
        #: version counter, incremented at start and end of each migration
        self.version = 0
        #: migration in flight?
        self.migration_active = False
        #: blocks the user wrote while a migration was active, kept as
        #: disjoint intervals so the OCC clean-set math is O(runs)
        self.dirty_during_migration = BlockIntervalSet()
        #: pessimistic fallback lock
        self.locked = False
        # --- delegation state ---
        #: open per-tier handles, created lazily
        self.tier_handles: Dict[int, FileHandle] = {}
        #: tiers on which the backing sparse file exists
        self.tiers_present: Set[int] = set()
        # --- lazy metadata synchronization bookkeeping ---
        self.reads_since_atime_sync = 0
        self.writes_since_mtime_sync = 0
        #: per-file placement pin: overrides the policy for new writes
        self.pinned_tier: Optional[int] = None
        #: mirror replica map (None until the file earns a mirror, so the
        #: common unmirrored case costs nothing on the hot paths)
        self.replicas: Optional[ReplicaSet] = None

    @property
    def is_dir(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    def stat(
        self, blocks: int = 0, stale_attrs: Optional[List[str]] = None
    ) -> Stat:
        """Attributes from the collective-inode cache.

        ``stale_attrs`` lists attributes whose affinitive file system is
        offline: the cached value is served anyway (affinity failover) but
        flagged so callers can distinguish degraded answers.
        """
        extra = {"affinity": self.affinity.owners(), "version": self.version}
        if stale_attrs:
            extra["stale_attrs"] = list(stale_attrs)
        return Stat(
            ino=self.ino,
            file_type=self.file_type,
            size=self.size,
            blocks=blocks,
            atime=self.atime,
            mtime=self.mtime,
            ctime=self.ctime,
            mode=self.mode,
            nlink=self.nlink,
            extra=extra,
        )


class MuxNamespace:
    """Mux's uniform directory tree over collective inodes (§2.1).

    The namespace is Mux metadata; the same file *name* may exist on
    several underlying file systems (as sparse backing files), but users
    see exactly one merged tree, rooted here.
    """

    ROOT_INO = 1

    def __init__(self, now: float) -> None:
        self._inodes: Dict[int, CollectiveInode] = {}
        self._next_ino = self.ROOT_INO
        self.root = self._alloc(FileType.DIRECTORY, now, 0o755, None)
        #: path -> ino lookup cache (positive + negative entries).  Safe
        #: because inode numbers are never reused: a stale positive entry
        #: misses in ``_inodes`` and falls back to the walk.  Mutators
        #: below invalidate the affected names explicitly.
        self.dcache = DentryCache()

    def _alloc(
        self,
        file_type: FileType,
        now: float,
        mode: int,
        initial_tier: Optional[int],
        blt: Optional[BlockLookupTable] = None,
    ) -> CollectiveInode:
        inode = CollectiveInode(
            self._next_ino, file_type, now, mode, blt=blt, initial_tier=initial_tier
        )
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    # -- resolution --------------------------------------------------------

    def get(self, ino: int) -> CollectiveInode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise FileNotFound(f"mux: stale inode {ino}")

    def resolve(self, path: str) -> CollectiveInode:
        path = vpath.normalize(path)
        cached = self.dcache.get(path)
        if cached is not None:
            if DentryCache.is_negative(cached):
                raise FileNotFound(f"mux: {path!r} does not exist")
            inode = self._inodes.get(cached)
            if inode is not None:
                return inode
            self.dcache.invalidate(path)  # stale: inode died; re-walk
        inode = self.root
        for name in vpath.components(path):
            if not inode.is_dir:
                raise NotADirectory(f"mux: component of {path!r} not a directory")
            try:
                inode = self._inodes[inode.entries[name]]
            except KeyError:
                self.dcache.put_negative(path)
                raise FileNotFound(f"mux: {path!r} does not exist")
        self.dcache.put(path, inode.ino)
        return inode

    def resolve_parent(self, path: str) -> tuple:
        parent_path, name = vpath.split(path)
        if not name:
            raise InvalidArgument("mux: operation on root")
        parent = self.resolve(parent_path)
        if not parent.is_dir:
            raise NotADirectory(f"mux: {parent_path!r} is not a directory")
        return parent, name

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    # -- mutation ---------------------------------------------------------------

    def create_file(
        self,
        path: str,
        now: float,
        mode: int,
        initial_tier: Optional[int],
        blt: Optional[BlockLookupTable] = None,
    ) -> CollectiveInode:
        path = vpath.normalize(path)
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FileExists(f"mux: {path!r} exists")
        inode = self._alloc(FileType.REGULAR, now, mode, initial_tier, blt=blt)
        parent.entries[name] = inode.ino
        parent.mtime = parent.ctime = now
        self.dcache.invalidate(path)  # the name exists now: drop negatives
        return inode

    def mkdir(self, path: str, now: float, mode: int) -> CollectiveInode:
        path = vpath.normalize(path)
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FileExists(f"mux: {path!r} exists")
        inode = self._alloc(FileType.DIRECTORY, now, mode, None)
        parent.entries[name] = inode.ino
        parent.nlink += 1
        parent.mtime = parent.ctime = now
        self.dcache.invalidate(path)
        return inode

    def unlink(self, path: str, now: float) -> CollectiveInode:
        path = vpath.normalize(path)
        parent, name = self.resolve_parent(path)
        if name not in parent.entries:
            raise FileNotFound(f"mux: {path!r} does not exist")
        inode = self._inodes[parent.entries[name]]
        if inode.is_dir:
            raise IsADirectory(f"mux: {path!r} is a directory")
        del parent.entries[name]
        parent.mtime = parent.ctime = now
        inode.nlink -= 1
        if inode.nlink == 0:
            del self._inodes[inode.ino]
        self.dcache.invalidate(path)
        return inode

    def rmdir(self, path: str, now: float) -> None:
        path = vpath.normalize(path)
        parent, name = self.resolve_parent(path)
        if name not in parent.entries:
            raise FileNotFound(f"mux: {path!r} does not exist")
        inode = self._inodes[parent.entries[name]]
        if not inode.is_dir:
            raise NotADirectory(f"mux: {path!r} is not a directory")
        if inode.entries:
            raise DirectoryNotEmpty(f"mux: {path!r} is not empty")
        del parent.entries[name]
        del self._inodes[inode.ino]
        parent.nlink -= 1
        parent.mtime = parent.ctime = now
        # negative entries for names that used to fail beneath this
        # directory must not outlive it
        self.dcache.invalidate_prefix(path)

    def rename(
        self, old_path: str, new_path: str, now: float
    ) -> Tuple[CollectiveInode, Optional[int]]:
        """Move ``old_path`` to ``new_path``; returns the moving inode and
        the ino of a clobbered regular-file target (None otherwise).

        The caller must drop per-ino state for the replaced file (policy
        hotness, cache slots): its inode is deleted here and ino numbers
        are never reused, so any state left keyed on it leaks forever.
        """
        old_path = vpath.normalize(old_path)
        new_path = vpath.normalize(new_path)
        if old_path == new_path:
            return self.resolve(old_path), None  # must exist; successful no-op
        if vpath.is_under(new_path, old_path):
            raise InvalidArgument(
                f"mux: cannot move {old_path!r} into itself"
            )
        old_parent, old_name = self.resolve_parent(old_path)
        new_parent, new_name = self.resolve_parent(new_path)
        if old_name not in old_parent.entries:
            raise FileNotFound(f"mux: {old_path!r} does not exist")
        moving = self._inodes[old_parent.entries[old_name]]
        replaced_ino: Optional[int] = None
        if new_name in new_parent.entries:
            existing = self._inodes[new_parent.entries[new_name]]
            if existing.is_dir:
                if not moving.is_dir:
                    raise IsADirectory(f"mux: {new_path!r} is a directory")
                if existing.entries:
                    raise DirectoryNotEmpty(f"mux: {new_path!r} is not empty")
                del self._inodes[existing.ino]
                new_parent.nlink -= 1
            else:
                if moving.is_dir:
                    raise NotADirectory(f"mux: {new_path!r} is not a directory")
                del self._inodes[existing.ino]
                replaced_ino = existing.ino
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = moving.ino
        if moving.is_dir:
            old_parent.nlink -= 1
            new_parent.nlink += 1
        old_parent.mtime = old_parent.ctime = now
        new_parent.mtime = new_parent.ctime = now
        moving.ctime = now
        if moving.is_dir:
            # every cached descendant path changed; directory moves are
            # rare enough that a full drop beats a prefix scan
            self.dcache.clear()
        else:
            self.dcache.invalidate(old_path)
            self.dcache.invalidate(new_path)
        return moving, replaced_ino

    def readdir(self, path: str) -> List[str]:
        inode = self.resolve(path)
        if not inode.is_dir:
            raise NotADirectory(f"mux: {path!r} is not a directory")
        return sorted(inode.entries)

    def files(self) -> Iterator[CollectiveInode]:
        """All regular files (policy runners scan these)."""
        return (i for i in self._inodes.values() if not i.is_dir)

    def path_of(self, target: CollectiveInode) -> Optional[str]:
        """Reverse lookup of a file's current path (O(n); tooling only)."""

        def walk(dir_inode: CollectiveInode, prefix: str) -> Optional[str]:
            for name, ino in dir_inode.entries.items():
                child = self._inodes.get(ino)
                if child is None:
                    continue
                child_path = prefix.rstrip("/") + "/" + name
                if child is target:
                    return child_path
                if child.is_dir:
                    found = walk(child, child_path)
                    if found:
                        return found
            return None

        if target is self.root:
            return "/"
        return walk(self.root, "/")

    def __len__(self) -> int:
        return len(self._inodes)
