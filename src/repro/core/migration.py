"""Policy Runner / data movement engine (Figure 1c).

Executes :class:`~repro.core.policy.MigrationOrder`s produced by the
tiering policy, asynchronously (as cooperative tasks interleavable with
user operations) or synchronously (for benchmarks that measure steady-state
migration throughput).

Per the paper's extensibility claim (Figure 3a), Mux supports migration
between *every* pair of registered tiers: "supporting a migration path
takes a single line of code to invoke the migration function", because the
VFS abstracts device details away.  There is deliberately no per-pair
wiring here — contrast with :mod:`repro.strata`, which models Strata's
static routing and reports N/S for unwired pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.metadata import CollectiveInode
from repro.core.occ import MigrationResult, OccSynchronizer
from repro.core.policy import MigrationOrder
from repro.errors import MigrationError
from repro.sim.stats import CounterSet
from repro.sim.tasks import Task, TaskRunner


@dataclass
class PairStats:
    """Accumulated migration traffic for one (src, dst) tier pair."""

    bytes_moved: int = 0
    busy_ns: int = 0
    migrations: int = 0

    def throughput_mb_s(self) -> float:
        """Steady-state MB/s over the simulated time spent migrating."""
        if self.busy_ns == 0:
            return 0.0
        return (self.bytes_moved / 1e6) / (self.busy_ns / 1e9)


class MigrationEngine:
    """Runs migrations through the OCC synchronizer."""

    def __init__(self, mux) -> None:  # mux: MuxFileSystem (circular type)
        self._mux = mux
        self.occ = OccSynchronizer(mux)
        self.runner = TaskRunner(clock=mux.clock)
        self.stats = CounterSet()
        self.pair_stats: Dict[Tuple[int, int], PairStats] = {}
        #: bytes en route to each destination tier from in-flight
        #: migrations — counted against the capacity gate so concurrent
        #: copies can't collectively overcommit a nearly-full tier (each
        #: one alone fits, together they starve the metadata journal)
        self._inflight_bytes: Dict[int, int] = {}
        #: in-flight async block ranges per inode — an order overlapping
        #: one is dropped instead of stacking OCC conflicts on the same
        #: blocks (the policy replans and resubmits next round); disjoint
        #: ranges of one file still migrate in parallel
        self._inflight_ranges: Dict[int, List[Tuple[int, int]]] = {}
        #: paced (defer_while_hot) copies currently running
        self._paced_live = 0

    # -- capability -------------------------------------------------------

    def supports(self, src_tier: int, dst_tier: int) -> bool:
        """Mux supports every pair of registered tiers (Figure 3a)."""
        tiers = self._mux.tier_ids()
        return src_tier in tiers and dst_tier in tiers and src_tier != dst_tier

    # -- async execution ------------------------------------------------------

    #: per-channel load at either end of a copy above which a paced
    #: migration stalls, and how many stalls it tolerates before giving
    #: up entirely (ticks arrive roughly once per user op, so the budget
    #: spans a realistic burst, not just its head)
    DEFER_LOAD = 1.0
    MAX_DEFER_TICKS = 256
    #: how far past the global clock a tick-driven copy may book device
    #: time.  A background task runs on its own cursor; left unchecked it
    #: books an entire multi-millisecond copy into the device's future
    #: and every foreground op issued meanwhile counts that phantom
    #: backlog toward the saturation knee.  Real copiers issue a chunk,
    #: then wait for wall-clock to catch up.  Enforced by :meth:`tick`
    #: (the open-loop drivers), not inside the task: a caller stepping a
    #: task directly, or draining, *is* the synchronization point and
    #: gets the copy at full speed.
    MAX_BOOKAHEAD_NS = 200_000
    #: consecutive gated ticks tolerated before a task is stepped anyway
    #: (the clock is static in some drivers, so waiting must be finite)
    MAX_BOOKAHEAD_STALLS = 64
    #: paced copies allowed to run at once — each one books up to
    #: MAX_BOOKAHEAD_NS of device future, and that phantom backlog adds
    #: up linearly across tasks; a real mover has a small thread pool
    MAX_PACED_CONCURRENCY = 2

    def submit(self, order: MigrationOrder, defer_while_hot: bool = False) -> Task:
        """Start an asynchronous migration; returns its cooperative task.

        Submitted migrations run on *background time*: each copy chunk
        executes in a background clock frame against the device timelines,
        so user ops issued between steps only pay for the copy traffic
        when they contend for the same device channels.

        With ``defer_while_hot`` the copy is *paced*: before every chunk
        the task re-samples the destination's channel load and idles (up
        to :data:`MAX_DEFER_TICKS` stalls total) while it is at or above
        :data:`DEFER_LOAD`.  Checking only once at submit is not enough —
        planning and execution are decoupled, so a target that was cool
        at plan time may be mid-burst by the time a later chunk lands,
        and one chunk dropped into a saturated queue is exactly what the
        knee model punishes quadratically.
        """
        self._validate(order)
        inode = self._mux.inode_by_ino(order.ino)
        gen = self._run_tracked(inode, order)
        if defer_while_hot:
            gen = self._paced(order, gen)
        return self.runner.spawn(
            self._exclusive(order, gen),
            name=f"mig-{order.ino}-{order.block_start}",
            background=self._mux.scheduler.parallel,
        )

    def busy(self, ino: int) -> bool:
        """True while any async migration for ``ino`` is in flight."""
        return bool(self._inflight_ranges.get(ino))

    def _exclusive(self, order: MigrationOrder, inner):
        """Drop async orders that overlap an in-flight copy of the file.

        Concurrent copies of the same blocks all conflict on the same
        collective inode, so stacking them just multiplies OCC aborts
        and lock fallbacks (which quiesce the rings).  An overlapping
        order gives up immediately; whatever still needs moving is
        rediscovered by the next planning round.  Disjoint ranges of one
        file are independent and still run in parallel.
        """
        ranges = self._inflight_ranges.setdefault(order.ino, [])
        span = (order.block_start, order.block_start + order.count)
        if any(start < span[1] and span[0] < end for start, end in ranges):
            self.stats.add("skipped_busy")
            inner.close()
            return MigrationResult(gave_up=True)
            yield  # pragma: no cover - makes this function a generator
        ranges.append(span)
        try:
            result = yield from inner
        finally:
            ranges.remove(span)
            if not ranges:
                self._inflight_ranges.pop(order.ino, None)
        return result

    def _paced(self, order: MigrationOrder, inner):
        """Interleave chunk copies with destination-load checks.

        Each stall is one cooperative yield; the budget is shared across
        the whole copy.  When it runs out the migration *gives up* rather
        than barging into the saturated queue — a copy forced through a
        burst pays the knee's quadratic penalty and makes the overload it
        was waiting out permanent; blocks it already moved simply stay
        uncommitted and the next planning round reissues the order once
        the device cools.
        """
        if self._paced_live >= self.MAX_PACED_CONCURRENCY:
            self.stats.add("skipped_throttled")
            inner.close()
            return MigrationResult(gave_up=True)
            yield  # pragma: no cover - makes this function a generator
        monitor = self._mux.pressure
        clock = self._mux.clock
        stalls = 0

        def hot() -> float:
            # a copy loads BOTH ends: reads hammer the source's channels
            # just as surely as writes hammer the destination's
            now = clock.global_now_ns
            return max(
                monitor.instant_load_of(order.src_tier, now),
                monitor.instant_load_of(order.dst_tier, now),
            )

        self._paced_live += 1
        try:
            while True:
                while hot() >= self.DEFER_LOAD:
                    if stalls >= self.MAX_DEFER_TICKS:
                        self.stats.add("defer_aborts")
                        inner.close()
                        return MigrationResult(gave_up=True)
                    self.stats.add("defer_ticks")
                    stalls += 1
                    yield
                try:
                    next(inner)
                except StopIteration as stop:
                    return stop.value
                yield
        finally:
            self._paced_live -= 1

    def tick(self) -> int:
        """Advance every in-flight migration one step.

        Tasks whose time cursor has raced more than
        :data:`MAX_BOOKAHEAD_NS` past the global clock are held back
        (counted in ``bookahead_stalls``) instead of stepped, so the
        foreground ops interleaved between ticks don't knee-inflate
        against phantom future backlog.  A held task is stepped anyway
        after :data:`MAX_BOOKAHEAD_STALLS` consecutive gated ticks, so
        ticking under a static clock still makes progress.
        """
        horizon = self._mux.clock.global_now_ns + self.MAX_BOOKAHEAD_NS

        def gate(task) -> bool:
            cursor = task.cursor_ns
            streak = getattr(task, "bookahead_streak", 0)
            if cursor is None or cursor <= horizon or streak >= self.MAX_BOOKAHEAD_STALLS:
                task.bookahead_streak = 0
                return True
            task.bookahead_streak = streak + 1
            self.stats.add("bookahead_stalls")
            return False

        return self.runner.tick(gate)

    def drain(self) -> None:
        """Run all in-flight migrations to completion."""
        self.runner.drain()

    # -- sync execution -----------------------------------------------------------

    def migrate_now(self, order: MigrationOrder) -> MigrationResult:
        """Run one migration to completion immediately (benchmark helper)."""
        self._validate(order)
        inode = self._mux.inode_by_ino(order.ino)
        task = Task(self._run_tracked(inode, order))
        return task.join()

    # -- internals ---------------------------------------------------------------

    def _validate(self, order: MigrationOrder) -> None:
        if not self.supports(order.src_tier, order.dst_tier):
            raise MigrationError(
                f"bad migration pair {order.src_tier}->{order.dst_tier}"
            )
        if order.count <= 0 or order.block_start < 0:
            raise MigrationError(f"bad block range in {order}")

    def _run_tracked(self, inode: CollectiveInode, order: MigrationOrder):
        """Wrap the OCC generator with per-pair accounting."""
        # health gate: never start a movement toward a dead tier
        dst = self._mux.registry.get(order.dst_tier)
        if dst.health.is_offline:
            self.stats.add("skipped_offline")
            self.stats.add("gave_up")
            return MigrationResult(gave_up=True)
        # capacity gate: never start a movement the destination cannot
        # hold — counting bytes already en route there from concurrent
        # migrations, which have gated but not yet allocated
        need = min(order.count, inode.blt.blocks_on(order.src_tier))
        need_bytes = need * self._mux.block_size
        pending = self._inflight_bytes.get(order.dst_tier, 0)
        if not self._mux._tier_has_room(dst, need_bytes + pending):
            self.stats.add("skipped_no_space")
            return MigrationResult(aborted_no_space=True)
        pair = (order.src_tier, order.dst_tier)
        stats = self.pair_stats.setdefault(pair, PairStats())
        started_ns = self._mux.clock.now_ns
        # transient-fault retry/backoff happens inside the mux's tier I/O;
        # the deltas across the movement are this migration's share
        retries_before = self._mux.stats.get("fault_retries")
        backoff_before = self._mux.stats.get("fault_backoff_ns")
        self._inflight_bytes[order.dst_tier] = pending + need_bytes
        try:
            result = yield from self.occ.migrate(
                inode, order.block_start, order.count, order.src_tier, order.dst_tier
            )
        finally:
            self._inflight_bytes[order.dst_tier] -= need_bytes
        result.retries = self._mux.stats.get("fault_retries") - retries_before
        result.backoff_ns = self._mux.stats.get("fault_backoff_ns") - backoff_before
        stats.bytes_moved += result.bytes_moved
        stats.busy_ns += self._mux.clock.now_ns - started_ns
        stats.migrations += 1
        self.stats.add("migrations")
        self.stats.add("blocks_moved", result.moved_blocks)
        self.stats.add("runs_moved", result.committed_runs)
        self.stats.add("occ_attempts", result.attempts)
        self.stats.add("conflicts", result.conflicts)
        self.stats.add("retries", result.retries)
        self.stats.add("backoff_ns", result.backoff_ns)
        if result.gave_up:
            self.stats.add("gave_up")
        if result.lock_fallback:
            self.stats.add("lock_fallbacks")
        return result

    def throughput_matrix(self) -> Dict[Tuple[int, int], float]:
        """(src, dst) -> MB/s for every pair that has moved data."""
        return {
            pair: stats.throughput_mb_s()
            for pair, stats in self.pair_stats.items()
            if stats.bytes_moved
        }
