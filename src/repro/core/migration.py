"""Policy Runner / data movement engine (Figure 1c).

Executes :class:`~repro.core.policy.MigrationOrder`s produced by the
tiering policy, asynchronously (as cooperative tasks interleavable with
user operations) or synchronously (for benchmarks that measure steady-state
migration throughput).

Per the paper's extensibility claim (Figure 3a), Mux supports migration
between *every* pair of registered tiers: "supporting a migration path
takes a single line of code to invoke the migration function", because the
VFS abstracts device details away.  There is deliberately no per-pair
wiring here — contrast with :mod:`repro.strata`, which models Strata's
static routing and reports N/S for unwired pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.metadata import CollectiveInode
from repro.core.occ import MigrationResult, OccSynchronizer
from repro.core.policy import MigrationOrder
from repro.errors import MigrationError
from repro.sim.stats import CounterSet
from repro.sim.tasks import Task, TaskRunner


@dataclass
class PairStats:
    """Accumulated migration traffic for one (src, dst) tier pair."""

    bytes_moved: int = 0
    busy_ns: int = 0
    migrations: int = 0

    def throughput_mb_s(self) -> float:
        """Steady-state MB/s over the simulated time spent migrating."""
        if self.busy_ns == 0:
            return 0.0
        return (self.bytes_moved / 1e6) / (self.busy_ns / 1e9)


class MigrationEngine:
    """Runs migrations through the OCC synchronizer."""

    def __init__(self, mux) -> None:  # mux: MuxFileSystem (circular type)
        self._mux = mux
        self.occ = OccSynchronizer(mux)
        self.runner = TaskRunner(clock=mux.clock)
        self.stats = CounterSet()
        self.pair_stats: Dict[Tuple[int, int], PairStats] = {}

    # -- capability -------------------------------------------------------

    def supports(self, src_tier: int, dst_tier: int) -> bool:
        """Mux supports every pair of registered tiers (Figure 3a)."""
        tiers = self._mux.tier_ids()
        return src_tier in tiers and dst_tier in tiers and src_tier != dst_tier

    # -- async execution ------------------------------------------------------

    def submit(self, order: MigrationOrder) -> Task:
        """Start an asynchronous migration; returns its cooperative task.

        Submitted migrations run on *background time*: each copy chunk
        executes in a background clock frame against the device timelines,
        so user ops issued between steps only pay for the copy traffic
        when they contend for the same device channels.
        """
        self._validate(order)
        inode = self._mux.inode_by_ino(order.ino)
        gen = self._run_tracked(inode, order)
        return self.runner.spawn(
            gen,
            name=f"mig-{order.ino}-{order.block_start}",
            background=self._mux.scheduler.parallel,
        )

    def tick(self) -> int:
        """Advance every in-flight migration one step."""
        return self.runner.tick()

    def drain(self) -> None:
        """Run all in-flight migrations to completion."""
        self.runner.drain()

    # -- sync execution -----------------------------------------------------------

    def migrate_now(self, order: MigrationOrder) -> MigrationResult:
        """Run one migration to completion immediately (benchmark helper)."""
        self._validate(order)
        inode = self._mux.inode_by_ino(order.ino)
        task = Task(self._run_tracked(inode, order))
        return task.join()

    # -- internals ---------------------------------------------------------------

    def _validate(self, order: MigrationOrder) -> None:
        if not self.supports(order.src_tier, order.dst_tier):
            raise MigrationError(
                f"bad migration pair {order.src_tier}->{order.dst_tier}"
            )
        if order.count <= 0 or order.block_start < 0:
            raise MigrationError(f"bad block range in {order}")

    def _run_tracked(self, inode: CollectiveInode, order: MigrationOrder):
        """Wrap the OCC generator with per-pair accounting."""
        # health gate: never start a movement toward a dead tier
        dst = self._mux.registry.get(order.dst_tier)
        if dst.health.is_offline:
            self.stats.add("skipped_offline")
            self.stats.add("gave_up")
            return MigrationResult(gave_up=True)
        # capacity gate: never start a movement the destination cannot hold
        need = min(order.count, inode.blt.blocks_on(order.src_tier))
        if not self._mux._tier_has_room(dst, need * self._mux.block_size):
            self.stats.add("skipped_no_space")
            return MigrationResult(aborted_no_space=True)
        pair = (order.src_tier, order.dst_tier)
        stats = self.pair_stats.setdefault(pair, PairStats())
        started_ns = self._mux.clock.now_ns
        # transient-fault retry/backoff happens inside the mux's tier I/O;
        # the deltas across the movement are this migration's share
        retries_before = self._mux.stats.get("fault_retries")
        backoff_before = self._mux.stats.get("fault_backoff_ns")
        result = yield from self.occ.migrate(
            inode, order.block_start, order.count, order.src_tier, order.dst_tier
        )
        result.retries = self._mux.stats.get("fault_retries") - retries_before
        result.backoff_ns = self._mux.stats.get("fault_backoff_ns") - backoff_before
        stats.bytes_moved += result.bytes_moved
        stats.busy_ns += self._mux.clock.now_ns - started_ns
        stats.migrations += 1
        self.stats.add("migrations")
        self.stats.add("blocks_moved", result.moved_blocks)
        self.stats.add("runs_moved", result.committed_runs)
        self.stats.add("occ_attempts", result.attempts)
        self.stats.add("conflicts", result.conflicts)
        self.stats.add("retries", result.retries)
        self.stats.add("backoff_ns", result.backoff_ns)
        if result.gave_up:
            self.stats.add("gave_up")
        if result.lock_fallback:
            self.stats.add("lock_fallbacks")
        return result

    def throughput_matrix(self) -> Dict[Tuple[int, int], float]:
        """(src, dst) -> MB/s for every pair that has moved data."""
        return {
            pair: stats.throughput_mb_s()
            for pair, stats in self.pair_stats.items()
            if stats.bytes_moved
        }
