"""Built-in tiering policies.

* :class:`LruTieringPolicy` — the policy the paper's evaluation uses
  (§3.1): "a simple LRU policy that evicts cold data to the slower device
  if no space left on faster devices, and promotes data back upon access".
* :class:`TpfsPolicy` — the TPFS placement rule §2.1 cites as expressible
  in "a function that returns different device IDs based on the I/O size,
  synchronicity, and access history".
* :class:`HotColdPolicy` — whole-file hot/cold classification with decay,
  the scheme Ziggurat-style tiered file systems employ.
* :class:`PinnedPolicy` — static routing to one tier (used by the overhead
  benchmarks, where every request targets a single device).
* :class:`PressureAwarePolicy` — queue/health-fed placement: routes write
  bursts around saturated or SUSPECT tiers using the sampled
  ``TierState.pressure`` signals, demotes off backlogged tiers, and
  defers migrations toward hot channels.  Hysteresis (separate spill and
  resume thresholds) keeps placement from flapping at the boundary.
* :class:`TpfsPressurePolicy` / :class:`HotColdPressurePolicy` —
  pressure-augmented variants of the blind heuristics above, for
  like-for-like comparisons in the trace-replay benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.health import HealthState
from repro.core.policy import (
    FileView,
    MigrationOrder,
    MirrorOrder,
    PlacementRequest,
    Policy,
    TierState,
    fastest_with_room,
    register_policy,
    tier_load,
    writable_tiers,
)
from repro.errors import PolicyError

#: granularity of recency tracking, in blocks (64 blocks = 256 KiB chunks)
CHUNK_BLOCKS = 64


@register_policy("lru")
class LruTieringPolicy(Policy):
    """LRU block-chunk tiering: fill fast tiers, demote cold, promote hot."""

    def __init__(
        self,
        high_watermark: float = 0.90,
        low_watermark: float = 0.75,
        promote_on_access: bool = True,
        max_orders_per_plan: int = 64,
    ) -> None:
        if not 0 < low_watermark <= high_watermark <= 1:
            raise PolicyError("watermarks must satisfy 0 < low <= high <= 1")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.promote_on_access = promote_on_access
        self.max_orders_per_plan = max_orders_per_plan
        #: LRU recency: (ino, chunk) -> tier of last-known residence;
        #: most-recently-used at the end
        self._recency: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        #: promotion requests gathered from on_access
        self._promotions: List[MigrationOrder] = []

    # -- placement --------------------------------------------------------

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        return fastest_with_room(tiers, request.length).tier_id

    # -- recency tracking -----------------------------------------------------

    def on_access(
        self,
        ino: int,
        block_start: int,
        count: int,
        tier_id: int,
        kind: str,
        now: float,
    ) -> None:
        first_chunk = block_start // CHUNK_BLOCKS
        last_chunk = (block_start + count - 1) // CHUNK_BLOCKS
        for chunk in range(first_chunk, last_chunk + 1):
            key = (ino, chunk)
            self._recency.pop(key, None)
            self._recency[key] = tier_id
        if self.promote_on_access and tier_id != 0 and kind == "read":
            self._promotions.append(
                MigrationOrder(
                    ino=ino,
                    block_start=first_chunk * CHUNK_BLOCKS,
                    count=(last_chunk - first_chunk + 1) * CHUNK_BLOCKS,
                    src_tier=tier_id,
                    dst_tier=max(0, tier_id - 1),
                    reason="promote-on-access",
                )
            )

    def forget(self, ino: int) -> None:
        for key in [k for k in self._recency if k[0] == ino]:
            del self._recency[key]
        self._promotions = [o for o in self._promotions if o.ino != ino]

    # -- planning ---------------------------------------------------------------

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        orders: List[MigrationOrder] = []
        # never plan migrations INTO a suspect/offline tier
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        tier_by_id = {t.tier_id: t for t in by_rank}
        if not by_rank:
            return orders

        # residence truth from the BLT views (recency map may be stale)
        residence: Dict[Tuple[int, int], int] = {}
        for view in files:
            for start, count, tier in view.runs:
                if tier is None:
                    continue
                for chunk in range(start // CHUNK_BLOCKS, (start + count - 1) // CHUNK_BLOCKS + 1):
                    residence[(view.ino, chunk)] = tier

        # demotions: for each overfull tier, evict coldest chunks downward
        for idx, tier in enumerate(by_rank):
            if tier.utilization <= self.high_watermark:
                continue
            if idx + 1 >= len(by_rank):
                continue  # slowest tier has nowhere to demote
            dst = by_rank[idx + 1]
            bytes_to_free = int(
                (tier.utilization - self.low_watermark) * tier.total_bytes
            )
            freed = 0
            for key in list(self._recency):  # oldest first
                if freed >= bytes_to_free or len(orders) >= self.max_orders_per_plan:
                    break
                ino, chunk = key
                if residence.get(key) != tier.tier_id:
                    continue
                orders.append(
                    MigrationOrder(
                        ino=ino,
                        block_start=chunk * CHUNK_BLOCKS,
                        count=CHUNK_BLOCKS,
                        src_tier=tier.tier_id,
                        dst_tier=dst.tier_id,
                        reason="lru-evict",
                    )
                )
                freed += CHUNK_BLOCKS * 4096
                # after demotion this chunk lives on dst
                self._recency[key] = dst.tier_id

        # promotions gathered from accesses, space permitting
        while self._promotions and len(orders) < self.max_orders_per_plan:
            order = self._promotions.pop(0)
            dst = tier_by_id.get(order.dst_tier)
            if dst is None or dst.utilization >= self.high_watermark:
                continue
            orders.append(order)
        return orders


@register_policy("tpfs")
class TpfsPolicy(Policy):
    """TPFS-style placement: small/sync writes to PM, large writes downhill."""

    def __init__(
        self,
        small_io_bytes: int = 64 * 1024,
        medium_io_bytes: int = 1024 * 1024,
        history_window: int = 8,
    ) -> None:
        self.small_io_bytes = small_io_bytes
        self.medium_io_bytes = medium_io_bytes
        self.history_window = history_window
        #: per-file recent write sizes (access history input to the rule)
        self._history: Dict[int, List[int]] = {}

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        history = self._history.setdefault(request.ino, [])
        history.append(request.length)
        del history[: -self.history_window]
        avg = sum(history) / len(history)
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        if not by_rank:
            raise PolicyError("no writable tier (all offline)")

        def pick(rank: int) -> TierState:
            rank = min(rank, len(by_rank) - 1)
            tier = by_rank[rank]
            if tier.free_bytes < request.length and rank + 1 < len(by_rank):
                return pick(rank + 1)
            return tier

        if request.synchronous or avg <= self.small_io_bytes:
            return pick(0).tier_id
        if avg <= self.medium_io_bytes:
            return pick(1).tier_id
        return pick(2).tier_id

    def forget(self, ino: int) -> None:
        self._history.pop(ino, None)


@register_policy("hotcold")
class HotColdPolicy(Policy):
    """Whole-file temperature with exponential decay; hot files float up."""

    def __init__(
        self,
        hot_threshold: float = 4.0,
        cold_threshold: float = 0.5,
        decay: float = 0.8,
        max_orders_per_plan: int = 32,
    ) -> None:
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold
        self.decay = decay
        self.max_orders_per_plan = max_orders_per_plan
        self._heat: Dict[int, float] = {}

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        return fastest_with_room(tiers, request.length).tier_id

    def on_access(
        self, ino: int, block_start: int, count: int, tier_id: int, kind: str, now: float
    ) -> None:
        self._heat[ino] = self._heat.get(ino, 0.0) + 1.0

    def forget(self, ino: int) -> None:
        self._heat.pop(ino, None)

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        if not by_rank:
            return []
        fastest, slowest = by_rank[0], by_rank[-1]
        orders: List[MigrationOrder] = []
        for view in files:
            heat = self._heat.get(view.ino, 0.0)
            self._heat[view.ino] = heat * self.decay
            if len(orders) >= self.max_orders_per_plan:
                break
            if heat >= self.hot_threshold:
                for start, count, tier in view.runs:
                    if tier is not None and tier != fastest.tier_id:
                        orders.append(
                            MigrationOrder(
                                view.ino, start, count, tier, fastest.tier_id, "hot"
                            )
                        )
            elif heat <= self.cold_threshold and heat > 0:
                for start, count, tier in view.runs:
                    if tier is not None and tier != slowest.tier_id:
                        orders.append(
                            MigrationOrder(
                                view.ino, start, count, tier, slowest.tier_id, "cold"
                            )
                        )
        return orders


class PressureRouter:
    """Shared pressure-routing machinery for the *-pressure policies.

    Keeps a per-tier *avoid* flag with hysteresis: a tier is avoided once
    its sampled per-channel load reaches ``spill_load`` and stays avoided
    until the load decays to ``resume_load``, so placement does not flap
    when the load hovers at one threshold.

    Saturation spills go *uphill only* (toward a cool, roomy, faster
    tier): absorbing a burst at memory speed and demoting later is a
    transient cost, while spilling a soon-to-be-read block downhill turns
    one hot minute into a permanent 8 ms read.  With no cool faster tier
    the write stays at its base tier and eats the queue — bounded, and
    strictly better than trading it for a slow placement.  A base tier
    that is SUSPECT, full or missing is different: those writes must move
    somewhere, so routing falls back to the nearest healthy non-avoided
    tier in either direction.  OFFLINE tiers are never candidates.
    """

    def _init_pressure(
        self, spill_load: float = 0.75, resume_load: float = 0.3
    ) -> None:
        if resume_load >= spill_load:
            raise PolicyError("resume_load must be below spill_load")
        self.spill_load = spill_load
        self.resume_load = resume_load
        #: tiers currently routed around (hysteresis state)
        self._avoiding: Dict[int, bool] = {}
        #: placements that left the base-rank tier because of pressure
        self.pressure_spills = 0
        #: migration orders dropped because their target channel was hot
        self.deferred_orders = 0

    def _update_avoid(self, tiers: List[TierState]) -> None:
        for t in tiers:
            load = tier_load(t)
            if self._avoiding.get(t.tier_id):
                if load <= self.resume_load:
                    del self._avoiding[t.tier_id]
            elif load >= self.spill_load:
                self._avoiding[t.tier_id] = True

    def _avoided(self, tier_id: int) -> bool:
        return self._avoiding.get(tier_id, False)

    def _route(
        self,
        base_rank: int,
        tiers: List[TierState],
        length: int,
        reserve_fraction: float = 0.02,
    ) -> int:
        """Pick a tier near ``base_rank``, spilling around pressure."""
        self._update_avoid(tiers)
        candidates = writable_tiers(tiers)
        if not candidates:
            raise PolicyError("no writable tier (all offline)")

        def roomy(t: TierState) -> bool:
            reserve = int(t.total_bytes * reserve_fraction)
            return t.free_bytes - reserve >= length

        base = next((t for t in candidates if t.rank == base_rank), None)
        if base is not None and base.health is HealthState.HEALTHY and roomy(base):
            if not self._avoided(base.tier_id):
                return base.tier_id
            # saturation spill: only a cool, roomy, *faster* tier
            uphill = [
                t
                for t in candidates
                if t.rank < base_rank
                and t.health is HealthState.HEALTHY
                and not self._avoided(t.tier_id)
                and roomy(t)
            ]
            if uphill:
                self.pressure_spills += 1
                return min(
                    uphill,
                    key=lambda t: (base_rank - t.rank, tier_load(t), t.rank),
                ).tier_id
            return base.tier_id  # nowhere cool and faster: eat the queue
        # base tier SUSPECT, full or unregistered: the write must move —
        # nearest healthy non-avoided tier in either direction wins
        pool = [t for t in candidates if roomy(t)] or candidates

        def key(t: TierState):
            health = 0 if t.health is HealthState.HEALTHY else 1
            avoiding = 1 if self._avoided(t.tier_id) else 0
            dist = abs(t.rank - base_rank)
            return (health, avoiding, dist, tier_load(t), t.rank)

        return min(pool, key=key).tier_id


@register_policy("pressure")
class PressureAwarePolicy(PressureRouter, Policy):
    """Queue/health-fed placement with pressure-deferred migrations.

    Placement starts from the TPFS size/synchronicity rule (small or sync
    writes aim at the fastest tier, large writes downhill) and then routes
    around saturated or SUSPECT tiers via :class:`PressureRouter`.
    Migration planning demotes the coldest resident files off any tier
    whose load reaches ``demote_load``, promotes hot files to the fastest
    tier only while it is cool, and drops (defers) any order whose
    destination is currently avoided or above ``spill_load``.
    """

    defer_hot_migrations = True

    def __init__(
        self,
        spill_load: float = 0.75,
        resume_load: float = 0.3,
        demote_load: float = 1.5,
        demote_util: float = 0.85,
        promote_util: float = 0.5,
        small_io_bytes: int = 64 * 1024,
        medium_io_bytes: int = 1024 * 1024,
        history_window: int = 8,
        hot_threshold: float = 4.0,
        cold_threshold: float = 0.5,
        decay: float = 0.8,
        max_orders_per_plan: int = 32,
        demote_files_per_plan: int = 4,
        promote_files_per_plan: int = 2,
    ) -> None:
        self._init_pressure(spill_load, resume_load)
        self.demote_load = demote_load
        self.demote_util = demote_util
        self.promote_util = promote_util
        self.promote_files_per_plan = promote_files_per_plan
        self.small_io_bytes = small_io_bytes
        self.medium_io_bytes = medium_io_bytes
        self.history_window = history_window
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold
        self.decay = decay
        self.max_orders_per_plan = max_orders_per_plan
        self.demote_files_per_plan = demote_files_per_plan
        self._history: Dict[int, List[int]] = {}
        self._heat: Dict[int, float] = {}

    # -- placement --------------------------------------------------------

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        history = self._history.setdefault(request.ino, [])
        history.append(request.length)
        del history[: -self.history_window]
        avg = sum(history) / len(history)
        if request.synchronous or avg <= self.small_io_bytes:
            base_rank = 0
        elif avg <= self.medium_io_bytes:
            base_rank = 1
        else:
            base_rank = 2
        return self._route(base_rank, tiers, request.length)

    def on_access(
        self, ino: int, block_start: int, count: int, tier_id: int, kind: str, now: float
    ) -> None:
        self._heat[ino] = self._heat.get(ino, 0.0) + 1.0

    def forget(self, ino: int) -> None:
        self._history.pop(ino, None)
        self._heat.pop(ino, None)

    # -- planning ---------------------------------------------------------

    def _dst_is_cool(self, tier: TierState) -> bool:
        return (
            not self._avoiding.get(tier.tier_id)
            and tier_load(tier) < self.spill_load
            and tier.health is HealthState.HEALTHY
        )

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        self._update_avoid(tiers)
        writable = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        if not writable:
            return []
        views = list(files)
        heats: Dict[int, float] = {}
        for view in views:
            heat = self._heat.get(view.ino, 0.0)
            heats[view.ino] = heat
            if heat:
                self._heat[view.ino] = heat * self.decay
        orders: List[MigrationOrder] = []
        fastest = writable[0]

        # demotions: drain files off tiers that need relief.  Two distinct
        # triggers: a backlogged or SUSPECT tier sheds its genuinely cold
        # files (heat-gated — moving warm data off a busy tier just moves
        # the heat), while a tier past the capacity watermark sheds its
        # coldest residents *unconditionally*, because a full fast tier
        # can no longer absorb the next burst and absorption is worth
        # more than any individual file's placement.
        relieving: List[Tuple[TierState, bool]] = []
        for t in tiers:
            if t.health is HealthState.OFFLINE:
                continue
            if tier_load(t) >= self.demote_load or t.health is HealthState.SUSPECT:
                relieving.append((t, True))
            elif t.utilization >= self.demote_util and any(
                d.rank > t.rank for d in writable
            ):
                relieving.append((t, False))
        for src, cold_gated in relieving:
            dsts = [
                t
                for t in writable
                if t.tier_id != src.tier_id and self._dst_is_cool(t)
            ]
            if not dsts:
                self.deferred_orders += 1
                continue
            dst = min(
                dsts,
                key=lambda t: (0 if t.rank > src.rank else 1, tier_load(t), t.rank),
            )
            resident = [
                v
                for v in views
                if (not cold_gated or heats[v.ino] <= self.cold_threshold)
                and any(r[2] == src.tier_id for r in v.runs)
            ]
            resident.sort(key=lambda v: (heats[v.ino], v.ino))
            for view in resident[: self.demote_files_per_plan]:
                if len(orders) >= self.max_orders_per_plan:
                    break
                for start, count, tier in view.runs:
                    if tier == src.tier_id:
                        orders.append(
                            MigrationOrder(
                                view.ino,
                                start,
                                count,
                                src.tier_id,
                                dst.tier_id,
                                reason="pressure-demote",
                            )
                        )

        # promotions: hot files float to the fastest tier, but only while
        # its channels are cool — promoting into a burst makes the tail —
        # and only while it has headroom: a fast tier filled to the brim
        # with promoted files cannot absorb the next burst, and absorption
        # is the cheaper way to cut the tail.  ``promote_files_per_plan``
        # rations the copy traffic each round so promotions trickle into
        # cool windows instead of warring with foreground I/O.
        if self._dst_is_cool(fastest) and fastest.utilization < self.promote_util:
            hot = [v for v in views if heats[v.ino] >= self.hot_threshold]
            hot.sort(key=lambda v: (-heats[v.ino], v.ino))
            promoted = 0
            for view in hot:
                if (
                    promoted >= self.promote_files_per_plan
                    or len(orders) >= self.max_orders_per_plan
                ):
                    break
                moved = False
                for start, count, tier in view.runs:
                    if tier is not None and tier != fastest.tier_id:
                        moved = True
                        orders.append(
                            MigrationOrder(
                                view.ino,
                                start,
                                count,
                                tier,
                                fastest.tier_id,
                                reason="pressure-promote",
                            )
                        )
                if moved:
                    promoted += 1
        else:
            self.deferred_orders += 1
        return orders[: self.max_orders_per_plan]


@register_policy("tpfs-pressure")
class TpfsPressurePolicy(PressureRouter, TpfsPolicy):
    """TPFS size/synchronicity rule, spilling around saturated tiers."""

    defer_hot_migrations = True

    def __init__(
        self,
        spill_load: float = 0.75,
        resume_load: float = 0.3,
        **kwargs: object,
    ) -> None:
        TpfsPolicy.__init__(self, **kwargs)
        self._init_pressure(spill_load, resume_load)

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        base_id = TpfsPolicy.place_write(self, request, tiers)
        base_rank = next(t.rank for t in tiers if t.tier_id == base_id)
        return self._route(base_rank, tiers, request.length)


@register_policy("hotcold-pressure")
class HotColdPressurePolicy(PressureRouter, HotColdPolicy):
    """Hot/cold temperature tiering that respects channel pressure."""

    defer_hot_migrations = True

    def __init__(
        self,
        spill_load: float = 0.75,
        resume_load: float = 0.3,
        **kwargs: object,
    ) -> None:
        HotColdPolicy.__init__(self, **kwargs)
        self._init_pressure(spill_load, resume_load)

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        base_rank = fastest_with_room(tiers, request.length).rank
        return self._route(base_rank, tiers, request.length)

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        self._update_avoid(tiers)
        by_id = {t.tier_id: t for t in tiers}
        orders = HotColdPolicy.plan_migrations(self, tiers, files)
        kept: List[MigrationOrder] = []
        for order in orders:
            dst = by_id.get(order.dst_tier)
            if dst is not None and (
                self._avoiding.get(dst.tier_id) or tier_load(dst) >= self.spill_load
            ):
                self.deferred_orders += 1
                continue
            kept.append(order)
        return kept


@register_policy("mirror")
class MirrorPolicy(PressureAwarePolicy):
    """Mirror-optimized tiering (MOST): replicate hot read-mostly files.

    Placement and demotion follow :class:`PressureAwarePolicy`; on top,
    :meth:`plan_mirrors` grants the hottest read-heavy small files a
    mirror on the fastest healthy tier, so their reads serve at PM/SSD
    speed even while the authoritative copy stays (or demotes) downhill.
    Mirrors are reclaimed when the file cools, when the mirror tier needs
    the capacity back (``reclaim_util``), or when the tier goes OFFLINE.

    Promotion orders *into* a file's mirror tier are suppressed — the
    mirror already serves reads there, so moving authority up as well
    would just burn copy bandwidth and fast-tier capacity twice.
    """

    def __init__(
        self,
        mirror_heat: float = 3.0,
        mirror_read_fraction: float = 0.6,
        max_file_bytes: int = 4 * 1024 * 1024,
        mirror_budget_fraction: float = 0.5,
        reclaim_util: float = 0.85,
        mirrors_per_plan: int = 4,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)
        self.mirror_heat = mirror_heat
        self.mirror_read_fraction = mirror_read_fraction
        self.max_file_bytes = max_file_bytes
        self.mirror_budget_fraction = mirror_budget_fraction
        self.reclaim_util = reclaim_util
        self.mirrors_per_plan = mirrors_per_plan
        #: per-file read/write op counts, decayed alongside the heat map
        self._reads: Dict[int, float] = {}
        self._writes: Dict[int, float] = {}
        #: ino -> tier currently holding this file's mirror
        self._mirrored_on: Dict[int, int] = {}

    def on_access(
        self, ino: int, block_start: int, count: int, tier_id: int, kind: str, now: float
    ) -> None:
        super().on_access(ino, block_start, count, tier_id, kind, now)
        if kind == "read":
            self._reads[ino] = self._reads.get(ino, 0.0) + 1.0
        else:
            self._writes[ino] = self._writes.get(ino, 0.0) + 1.0

    def forget(self, ino: int) -> None:
        super().forget(ino)
        self._reads.pop(ino, None)
        self._writes.pop(ino, None)
        self._mirrored_on.pop(ino, None)

    def _read_fraction(self, ino: int) -> float:
        reads = self._reads.get(ino, 0.0)
        writes = self._writes.get(ino, 0.0)
        total = reads + writes
        return reads / total if total else 0.0

    def plan_mirrors(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MirrorOrder]:
        views = list(files)
        by_id = {t.tier_id: t for t in tiers}
        heats = {v.ino: self._heat.get(v.ino, 0.0) for v in views}
        for table in (self._reads, self._writes):
            for ino in list(table):
                table[ino] *= self.decay
                if table[ino] < 0.05:
                    del table[ino]
        orders: List[MirrorOrder] = []

        # reclaim first: capacity freed this round funds the adds below
        for ino, tier_id in list(self._mirrored_on.items()):
            tier = by_id.get(tier_id)
            if tier is None or tier.health is HealthState.OFFLINE:
                orders.append(MirrorOrder(ino, tier_id, "drop", "tier-gone"))
                del self._mirrored_on[ino]
            elif heats.get(ino, self._heat.get(ino, 0.0)) <= self.cold_threshold:
                orders.append(MirrorOrder(ino, tier_id, "drop", "cooled"))
                del self._mirrored_on[ino]
        # space pressure on the mirror tier: shed the coldest mirrors
        for tier_id in set(self._mirrored_on.values()):
            tier = by_id.get(tier_id)
            if tier is None or tier.utilization < self.reclaim_util:
                continue
            victims = sorted(
                (ino for ino, t in self._mirrored_on.items() if t == tier_id),
                key=lambda ino: (heats.get(ino, 0.0), ino),
            )
            for ino in victims[: self.mirrors_per_plan]:
                orders.append(MirrorOrder(ino, tier_id, "drop", "reclaim"))
                del self._mirrored_on[ino]

        fastest = next(
            (
                t
                for t in sorted(tiers, key=lambda t: t.rank)
                if t.health is HealthState.HEALTHY
            ),
            None,
        )
        if fastest is None:
            return orders
        budget = int(fastest.free_bytes * self.mirror_budget_fraction)
        candidates = [
            v
            for v in views
            if v.ino not in self._mirrored_on
            and 0 < v.size <= self.max_file_bytes
            and heats.get(v.ino, 0.0) >= self.mirror_heat
            and self._read_fraction(v.ino) >= self.mirror_read_fraction
        ]
        candidates.sort(key=lambda v: (-heats.get(v.ino, 0.0), v.ino))
        added = 0
        for view in candidates:
            if added >= self.mirrors_per_plan or budget < view.size:
                break
            mapped = sum(view.blocks_by_tier.values())
            on_fastest = view.blocks_by_tier.get(fastest.tier_id, 0)
            if mapped == 0 or on_fastest * 2 >= mapped:
                continue  # already (mostly) living on the fast tier
            orders.append(
                MirrorOrder(view.ino, fastest.tier_id, "add", "hot-read-mostly")
            )
            self._mirrored_on[view.ino] = fastest.tier_id
            budget -= view.size
            added += 1
        return orders

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        orders = super().plan_migrations(tiers, files)
        kept: List[MigrationOrder] = []
        for order in orders:
            if self._mirrored_on.get(order.ino) == order.dst_tier:
                self.deferred_orders += 1
                continue
            kept.append(order)
        return kept


@register_policy("pinned")
class PinnedPolicy(Policy):
    """Static routing: every write goes to one fixed tier.

    Mirrors the paper's overhead experiments, where "the I/O request is
    always directed to the target devices"; also useful for tests.
    """

    def __init__(self, tier_id: int = 0) -> None:
        self.tier_id = tier_id

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        if not any(t.tier_id == self.tier_id for t in tiers):
            raise PolicyError(f"pinned tier {self.tier_id} is not registered")
        return self.tier_id
