"""Built-in tiering policies.

* :class:`LruTieringPolicy` — the policy the paper's evaluation uses
  (§3.1): "a simple LRU policy that evicts cold data to the slower device
  if no space left on faster devices, and promotes data back upon access".
* :class:`TpfsPolicy` — the TPFS placement rule §2.1 cites as expressible
  in "a function that returns different device IDs based on the I/O size,
  synchronicity, and access history".
* :class:`HotColdPolicy` — whole-file hot/cold classification with decay,
  the scheme Ziggurat-style tiered file systems employ.
* :class:`PinnedPolicy` — static routing to one tier (used by the overhead
  benchmarks, where every request targets a single device).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.policy import (
    FileView,
    MigrationOrder,
    PlacementRequest,
    Policy,
    TierState,
    fastest_with_room,
    register_policy,
    writable_tiers,
)
from repro.errors import PolicyError

#: granularity of recency tracking, in blocks (64 blocks = 256 KiB chunks)
CHUNK_BLOCKS = 64


@register_policy("lru")
class LruTieringPolicy(Policy):
    """LRU block-chunk tiering: fill fast tiers, demote cold, promote hot."""

    def __init__(
        self,
        high_watermark: float = 0.90,
        low_watermark: float = 0.75,
        promote_on_access: bool = True,
        max_orders_per_plan: int = 64,
    ) -> None:
        if not 0 < low_watermark <= high_watermark <= 1:
            raise PolicyError("watermarks must satisfy 0 < low <= high <= 1")
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.promote_on_access = promote_on_access
        self.max_orders_per_plan = max_orders_per_plan
        #: LRU recency: (ino, chunk) -> tier of last-known residence;
        #: most-recently-used at the end
        self._recency: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        #: promotion requests gathered from on_access
        self._promotions: List[MigrationOrder] = []

    # -- placement --------------------------------------------------------

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        return fastest_with_room(tiers, request.length).tier_id

    # -- recency tracking -----------------------------------------------------

    def on_access(
        self,
        ino: int,
        block_start: int,
        count: int,
        tier_id: int,
        kind: str,
        now: float,
    ) -> None:
        first_chunk = block_start // CHUNK_BLOCKS
        last_chunk = (block_start + count - 1) // CHUNK_BLOCKS
        for chunk in range(first_chunk, last_chunk + 1):
            key = (ino, chunk)
            self._recency.pop(key, None)
            self._recency[key] = tier_id
        if self.promote_on_access and tier_id != 0 and kind == "read":
            self._promotions.append(
                MigrationOrder(
                    ino=ino,
                    block_start=first_chunk * CHUNK_BLOCKS,
                    count=(last_chunk - first_chunk + 1) * CHUNK_BLOCKS,
                    src_tier=tier_id,
                    dst_tier=max(0, tier_id - 1),
                    reason="promote-on-access",
                )
            )

    def forget(self, ino: int) -> None:
        for key in [k for k in self._recency if k[0] == ino]:
            del self._recency[key]
        self._promotions = [o for o in self._promotions if o.ino != ino]

    # -- planning ---------------------------------------------------------------

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        orders: List[MigrationOrder] = []
        # never plan migrations INTO a suspect/offline tier
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        tier_by_id = {t.tier_id: t for t in by_rank}
        if not by_rank:
            return orders

        # residence truth from the BLT views (recency map may be stale)
        residence: Dict[Tuple[int, int], int] = {}
        for view in files:
            for start, count, tier in view.runs:
                if tier is None:
                    continue
                for chunk in range(start // CHUNK_BLOCKS, (start + count - 1) // CHUNK_BLOCKS + 1):
                    residence[(view.ino, chunk)] = tier

        # demotions: for each overfull tier, evict coldest chunks downward
        for idx, tier in enumerate(by_rank):
            if tier.utilization <= self.high_watermark:
                continue
            if idx + 1 >= len(by_rank):
                continue  # slowest tier has nowhere to demote
            dst = by_rank[idx + 1]
            bytes_to_free = int(
                (tier.utilization - self.low_watermark) * tier.total_bytes
            )
            freed = 0
            for key in list(self._recency):  # oldest first
                if freed >= bytes_to_free or len(orders) >= self.max_orders_per_plan:
                    break
                ino, chunk = key
                if residence.get(key) != tier.tier_id:
                    continue
                orders.append(
                    MigrationOrder(
                        ino=ino,
                        block_start=chunk * CHUNK_BLOCKS,
                        count=CHUNK_BLOCKS,
                        src_tier=tier.tier_id,
                        dst_tier=dst.tier_id,
                        reason="lru-evict",
                    )
                )
                freed += CHUNK_BLOCKS * 4096
                # after demotion this chunk lives on dst
                self._recency[key] = dst.tier_id

        # promotions gathered from accesses, space permitting
        while self._promotions and len(orders) < self.max_orders_per_plan:
            order = self._promotions.pop(0)
            dst = tier_by_id.get(order.dst_tier)
            if dst is None or dst.utilization >= self.high_watermark:
                continue
            orders.append(order)
        return orders


@register_policy("tpfs")
class TpfsPolicy(Policy):
    """TPFS-style placement: small/sync writes to PM, large writes downhill."""

    def __init__(
        self,
        small_io_bytes: int = 64 * 1024,
        medium_io_bytes: int = 1024 * 1024,
        history_window: int = 8,
    ) -> None:
        self.small_io_bytes = small_io_bytes
        self.medium_io_bytes = medium_io_bytes
        self.history_window = history_window
        #: per-file recent write sizes (access history input to the rule)
        self._history: Dict[int, List[int]] = {}

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        history = self._history.setdefault(request.ino, [])
        history.append(request.length)
        del history[: -self.history_window]
        avg = sum(history) / len(history)
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        if not by_rank:
            raise PolicyError("no writable tier (all offline)")

        def pick(rank: int) -> TierState:
            rank = min(rank, len(by_rank) - 1)
            tier = by_rank[rank]
            if tier.free_bytes < request.length and rank + 1 < len(by_rank):
                return pick(rank + 1)
            return tier

        if request.synchronous or avg <= self.small_io_bytes:
            return pick(0).tier_id
        if avg <= self.medium_io_bytes:
            return pick(1).tier_id
        return pick(2).tier_id

    def forget(self, ino: int) -> None:
        self._history.pop(ino, None)


@register_policy("hotcold")
class HotColdPolicy(Policy):
    """Whole-file temperature with exponential decay; hot files float up."""

    def __init__(
        self,
        hot_threshold: float = 4.0,
        cold_threshold: float = 0.5,
        decay: float = 0.8,
        max_orders_per_plan: int = 32,
    ) -> None:
        self.hot_threshold = hot_threshold
        self.cold_threshold = cold_threshold
        self.decay = decay
        self.max_orders_per_plan = max_orders_per_plan
        self._heat: Dict[int, float] = {}

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        return fastest_with_room(tiers, request.length).tier_id

    def on_access(
        self, ino: int, block_start: int, count: int, tier_id: int, kind: str, now: float
    ) -> None:
        self._heat[ino] = self._heat.get(ino, 0.0) + 1.0

    def forget(self, ino: int) -> None:
        self._heat.pop(ino, None)

    def plan_migrations(
        self, tiers: List[TierState], files: Iterable[FileView]
    ) -> List[MigrationOrder]:
        by_rank = sorted(writable_tiers(tiers), key=lambda t: t.rank)
        if not by_rank:
            return []
        fastest, slowest = by_rank[0], by_rank[-1]
        orders: List[MigrationOrder] = []
        for view in files:
            heat = self._heat.get(view.ino, 0.0)
            self._heat[view.ino] = heat * self.decay
            if len(orders) >= self.max_orders_per_plan:
                break
            if heat >= self.hot_threshold:
                for start, count, tier in view.runs:
                    if tier is not None and tier != fastest.tier_id:
                        orders.append(
                            MigrationOrder(
                                view.ino, start, count, tier, fastest.tier_id, "hot"
                            )
                        )
            elif heat <= self.cold_threshold and heat > 0:
                for start, count, tier in view.runs:
                    if tier is not None and tier != slowest.tier_id:
                        orders.append(
                            MigrationOrder(
                                view.ino, start, count, tier, slowest.tier_id, "cold"
                            )
                        )
        return orders


@register_policy("pinned")
class PinnedPolicy(Policy):
    """Static routing: every write goes to one fixed tier.

    Mirrors the paper's overhead experiments, where "the I/O request is
    always directed to the target devices"; also useful for tests.
    """

    def __init__(self, tier_id: int = 0) -> None:
        self.tier_id = tier_id

    def place_write(self, request: PlacementRequest, tiers: List[TierState]) -> int:
        if not any(t.tier_id == self.tier_id for t in tiers):
            raise PolicyError(f"pinned tier {self.tier_id} is not registered")
        return self.tier_id
