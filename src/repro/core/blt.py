"""Block Lookup Table: which tier stores the current version of each block.

§2.2: "Block-level data distribution requires Mux to maintain the mapping
from a block to the underlying file systems (a file system's internal index
is invisible to Mux). ... Since the table maps file offsets to devices,
that are small in size, we use an extent tree as a high-performance data
structure."

Two interchangeable implementations are provided:

* :class:`ExtentBlt` — the paper's choice, an extent tree (coalesced runs);
* :class:`ByteArrayBlt` — the flat one-byte-per-block table §2.3 sizes
  ("one byte per 4 KB of user data"), kept as the ablation baseline.

Both expose the same interface; Mux charges their (different) lookup costs
from :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.intervals import BlockIntervalSet, Run, intersect_runs, normalize_runs
from repro.fscommon.extents import ExtentTree

#: (first_block, count, tier_id or None-for-hole)
BltRun = Tuple[int, int, Optional[int]]

#: (first_block, count, authoritative_tier, clean-mirror tiers)
ReplicaRun = Tuple[int, int, Optional[int], Tuple[int, ...]]


class BlockLookupTable(ABC):
    """Per-file map from file block index to owning tier."""

    @abstractmethod
    def lookup(self, block: int) -> Optional[int]:
        """Tier id storing ``block``, or None for a hole."""

    @abstractmethod
    def map_range(self, start: int, count: int, tier_id: int) -> None:
        """Assign [start, start+count) to ``tier_id``."""

    @abstractmethod
    def unmap_range(self, start: int, count: int) -> None:
        """Mark [start, start+count) as holes."""

    @abstractmethod
    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        """Decompose a range into per-tier runs (holes -> tier None)."""

    @abstractmethod
    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        """CPU cost of a lookup spanning the given runs/blocks."""

    @abstractmethod
    def tiers_used(self) -> List[int]:
        """Sorted tier ids that own at least one block."""

    @abstractmethod
    def blocks_on(self, tier_id: int) -> int:
        """Number of blocks currently owned by ``tier_id``."""

    @abstractmethod
    def mapped_blocks(self) -> int:
        """Total mapped (non-hole) blocks."""

    @abstractmethod
    def end_block(self) -> int:
        """One past the highest mapped block."""

    def memory_bytes(self) -> int:
        """Approximate metadata footprint (space-overhead accounting)."""
        return 0


class ExtentBlt(BlockLookupTable):
    """Extent-tree BLT (the paper's design)."""

    def __init__(self) -> None:
        self._tree = ExtentTree(value_is_offset=False)
        self._per_tier: Dict[int, int] = {}

    def lookup(self, block: int) -> Optional[int]:
        return self._tree.lookup(block)

    def map_range(self, start: int, count: int, tier_id: int) -> None:
        for run_start, run_len, old in list(self._tree.runs(start, count)):
            if old is not None:
                self._per_tier[old] -= run_len
        self._tree.map_range(start, count, tier_id)
        self._per_tier[tier_id] = self._per_tier.get(tier_id, 0) + count

    def unmap_range(self, start: int, count: int) -> None:
        for run_start, run_len, old in list(self._tree.runs(start, count)):
            if old is not None:
                self._per_tier[old] -= run_len
        self._tree.unmap_range(start, count)

    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        return self._tree.runs(start, count)

    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        from repro.core import calibration as cal

        return cal.MUX_BLT_LOOKUP_NS + cal.MUX_BLT_RUN_NS * max(0, runs_touched - 1)

    def tiers_used(self) -> List[int]:
        return sorted(t for t, n in self._per_tier.items() if n > 0)

    def blocks_on(self, tier_id: int) -> int:
        return max(0, self._per_tier.get(tier_id, 0))

    def mapped_blocks(self) -> int:
        return self._tree.mapped_blocks

    def end_block(self) -> int:
        return self._tree.end_block()

    def memory_bytes(self) -> int:
        # one extent record: start + count + value + node overhead
        return len(self._tree) * 32

    def check_invariants(self) -> None:
        self._tree.check_invariants()
        recount: Dict[int, int] = {}
        for ext in self._tree:
            recount[ext.value] = recount.get(ext.value, 0) + ext.count
        for tier, n in recount.items():
            assert self._per_tier.get(tier, 0) == n, (tier, n, self._per_tier)


class ByteArrayBlt(BlockLookupTable):
    """Flat one-byte-per-block BLT (§2.3's space estimate; ablation)."""

    HOLE = 0xFF

    def __init__(self) -> None:
        self._table = bytearray()

    def _grow_to(self, blocks: int) -> None:
        if len(self._table) < blocks:
            self._table.extend(bytes([self.HOLE]) * (blocks - len(self._table)))

    def lookup(self, block: int) -> Optional[int]:
        if block >= len(self._table):
            return None
        value = self._table[block]
        return None if value == self.HOLE else value

    def map_range(self, start: int, count: int, tier_id: int) -> None:
        if not 0 <= tier_id < self.HOLE:
            raise ValueError(f"tier id {tier_id} does not fit in one byte")
        self._grow_to(start + count)
        self._table[start : start + count] = bytes([tier_id]) * count

    def unmap_range(self, start: int, count: int) -> None:
        end = min(start + count, len(self._table))
        if end > start:
            self._table[start:end] = bytes([self.HOLE]) * (end - start)

    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        pos = start
        end = start + count
        while pos < end:
            tier = self.lookup(pos)
            run = 1
            while pos + run < end and self.lookup(pos + run) == tier:
                run += 1
            yield pos, run, tier
            pos += run

    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        from repro.core import calibration as cal

        return cal.MUX_BLT_BYTEARRAY_PER_BLOCK_NS * max(1, blocks_touched)

    def tiers_used(self) -> List[int]:
        return sorted({b for b in self._table if b != self.HOLE})

    def blocks_on(self, tier_id: int) -> int:
        return sum(1 for b in self._table if b == tier_id)

    def mapped_blocks(self) -> int:
        return sum(1 for b in self._table if b != self.HOLE)

    def end_block(self) -> int:
        for i in range(len(self._table) - 1, -1, -1):
            if self._table[i] != self.HOLE:
                return i + 1
        return 0

    def memory_bytes(self) -> int:
        return len(self._table)


# ---------------------------------------------------------------------------
# Replica sets: one authoritative copy plus mirrors with per-interval state
# ---------------------------------------------------------------------------


class ReplicaSet:
    """Per-file mirror map layered over the authoritative BLT mapping.

    The BLT stays the single source of truth for *authority*: every mapped
    block has exactly one owning tier, and writes/migrations only ever
    update that mapping.  A ``ReplicaSet`` additionally tracks, per mirror
    tier, which block intervals hold an in-sync (*clean*) copy of the
    authoritative bytes and which are *stale* (the authoritative copy was
    rewritten after the mirror was synced).  Clean intervals may serve
    reads; stale intervals must not, and the mirror-sync engine
    (:mod:`repro.core.mirror`) re-converges them in the background.

    All state is host-side interval algebra — no simulated-clock charges —
    and per-tier ``clean`` / ``stale`` sets are disjoint by construction.
    """

    __slots__ = ("_clean", "_stale", "_stale_since")

    def __init__(self) -> None:
        self._clean: Dict[int, BlockIntervalSet] = {}
        self._stale: Dict[int, BlockIntervalSet] = {}
        #: simulated ns when each tier's stale set last became non-empty;
        #: the mirror-sync engine's deadline promotion keys off this
        self._stale_since: Dict[int, int] = {}

    # -- membership --------------------------------------------------------

    def tiers(self) -> List[int]:
        """Mirror tier ids, ascending."""
        return sorted(self._clean)

    def has_tier(self, tier_id: int) -> bool:
        return tier_id in self._clean

    def add_tier(self, tier_id: int) -> None:
        """Register ``tier_id`` as a mirror (initially tracking nothing)."""
        if tier_id not in self._clean:
            self._clean[tier_id] = BlockIntervalSet()
            self._stale[tier_id] = BlockIntervalSet()

    def retire_tier(self, tier_id: int) -> List[Run]:
        """Drop a mirror tier; returns the runs it was tracking."""
        clean = self._clean.pop(tier_id, None)
        stale = self._stale.pop(tier_id, None)
        self._stale_since.pop(tier_id, None)
        runs: List[Run] = []
        if clean is not None:
            runs.extend(clean.runs())
        if stale is not None:
            runs.extend(stale.runs())
        return normalize_runs(runs)

    # -- per-tier views ----------------------------------------------------

    def clean_runs(self, tier_id: int) -> List[Run]:
        ivals = self._clean.get(tier_id)
        return ivals.runs() if ivals is not None else []

    def stale_runs(self, tier_id: int) -> List[Run]:
        ivals = self._stale.get(tier_id)
        return ivals.runs() if ivals is not None else []

    def tracked_runs(self, tier_id: int) -> List[Run]:
        """Clean plus stale runs — everything the mirror tier holds bytes for."""
        return normalize_runs(self.clean_runs(tier_id) + self.stale_runs(tier_id))

    def covers_clean(self, tier_id: int, start: int, count: int) -> bool:
        """True if the tier holds a clean copy of all of ``[start, +count)``."""
        got = intersect_runs(self.clean_runs(tier_id), [(start, count)])
        return sum(n for _, n in got) == count

    # -- state transitions -------------------------------------------------

    def mark_stale(
        self, tier_id: int, start: int, count: int, now_ns: int
    ) -> None:
        """The authoritative bytes in the range changed; the tier must resync."""
        if count <= 0 or tier_id not in self._clean:
            return
        self._clean[tier_id].remove_range(start, count)
        self._stale[tier_id].add_range(start, count)
        self._stale_since.setdefault(tier_id, now_ns)

    def note_write(
        self, start: int, count: int, dst_tier: int, now_ns: int
    ) -> None:
        """A write landed authoritatively on ``dst_tier``.

        Every *other* mirror's overlapping intervals go stale; the
        receiving tier stops mirroring the range entirely — a tier cannot
        mirror blocks it now owns authoritatively.
        """
        for tier_id in self._clean:
            if tier_id == dst_tier:
                self._clean[tier_id].remove_range(start, count)
                self._stale[tier_id].remove_range(start, count)
            else:
                self.mark_stale(tier_id, start, count, now_ns)
        self._refresh_stale_since()

    def mark_synced(self, tier_id: int, start: int, count: int) -> None:
        """The mirror-sync engine made the range durable on ``tier_id``."""
        if count <= 0 or tier_id not in self._clean:
            return
        self._stale[tier_id].remove_range(start, count)
        self._clean[tier_id].add_range(start, count)
        if not self._stale[tier_id]:
            self._stale_since.pop(tier_id, None)

    def clear_stale(self, tier_id: int, start: int, count: int) -> None:
        """Forget stale marks without promoting to clean (hole / no source)."""
        if tier_id in self._stale:
            self._stale[tier_id].remove_range(start, count)
            if not self._stale[tier_id]:
                self._stale_since.pop(tier_id, None)

    def drop_range(self, start: int, count: int) -> None:
        """The range was unmapped (truncate / punch); nothing mirrors it."""
        for tier_id in self._clean:
            self._clean[tier_id].remove_range(start, count)
            self._stale[tier_id].remove_range(start, count)
        self._refresh_stale_since()

    def on_moved(
        self, runs: List[Run], src_tier: int, dst_tier: int
    ) -> None:
        """Authority moved ``src_tier`` -> ``dst_tier`` for ``runs`` (OCC commit).

        The destination's mirror intervals are consumed (it is now the
        authority there) and the source's copies are punched by the OCC
        commit, so neither end may keep mirror state for the moved runs.
        Mirrors on *other* tiers stay valid: data movement does not change
        the content of the data (§2.4).
        """
        for start, count in runs:
            for tier_id in (src_tier, dst_tier):
                if tier_id in self._clean:
                    self._clean[tier_id].remove_range(start, count)
                    self._stale[tier_id].remove_range(start, count)
        self._refresh_stale_since()

    def mark_all_stale(self, now_ns: int) -> None:
        """Crash path: every mirror interval must re-prove itself.

        The sync-state map is DRAM metadata; after a crash a mirror may
        hold torn or missing bytes, so recovery must never serve a mirror
        interval as clean until the sync engine recopied it.
        """
        for tier_id, clean in self._clean.items():
            for start, length in clean.runs():
                self._stale[tier_id].add_range(start, length)
            clean.clear()
            if self._stale[tier_id]:
                self._stale_since.setdefault(tier_id, now_ns)

    def _refresh_stale_since(self) -> None:
        for tier_id in list(self._stale_since):
            stale = self._stale.get(tier_id)
            if stale is None or not stale:
                self._stale_since.pop(tier_id, None)

    # -- queries -----------------------------------------------------------

    def has_stale(self) -> bool:
        return any(self._stale.values())

    def stale_blocks(self) -> int:
        return sum(len(s) for s in self._stale.values())

    def clean_blocks(self, tier_id: Optional[int] = None) -> int:
        if tier_id is not None:
            ivals = self._clean.get(tier_id)
            return len(ivals) if ivals is not None else 0
        return sum(len(c) for c in self._clean.values())

    def stale_since_ns(self, tier_id: int) -> Optional[int]:
        """When the tier's stale set became non-empty (None if in sync)."""
        return self._stale_since.get(tier_id)

    def check_invariants(self) -> None:
        assert set(self._clean) == set(self._stale)
        for tier_id, clean in self._clean.items():
            overlap = intersect_runs(clean.runs(), self._stale[tier_id].runs())
            assert not overlap, (tier_id, overlap)
            if self._stale[tier_id]:
                assert tier_id in self._stale_since, tier_id
            else:
                assert tier_id not in self._stale_since, tier_id


def replica_runs(
    blt: BlockLookupTable,
    replicas: Optional[ReplicaSet],
    start: int,
    count: int,
) -> Iterator[ReplicaRun]:
    """Decompose a range into runs annotated with their clean mirror tiers.

    Each yielded ``(first_block, count, tier, mirrors)`` run has a uniform
    replica set: ``tier`` is the authoritative owner from the BLT (None for
    holes) and ``mirrors`` the tiers whose *clean* intervals fully cover
    the run.  This is the read path's routing substrate: any tier in
    ``{tier} | mirrors`` can serve the run's bytes.
    """
    for run_start, run_len, tier in blt.runs(start, count):
        if tier is None or replicas is None:
            yield run_start, run_len, tier, ()
            continue
        cover: List[Tuple[int, int, int]] = []  # (start, end, mirror tier)
        cuts = {run_start, run_start + run_len}
        for mirror in replicas.tiers():
            if mirror == tier:
                continue
            for s, n in intersect_runs(
                replicas.clean_runs(mirror), [(run_start, run_len)]
            ):
                cover.append((s, s + n, mirror))
                cuts.add(s)
                cuts.add(s + n)
        if not cover:
            yield run_start, run_len, tier, ()
            continue
        pts = sorted(cuts)
        pending: Optional[Tuple[int, int, Tuple[int, ...]]] = None
        for a, b in zip(pts, pts[1:]):
            mirrors = tuple(
                sorted(m for s, e, m in cover if s <= a and b <= e)
            )
            if pending is not None and pending[2] == mirrors and pending[1] == a:
                pending = (pending[0], b, mirrors)
            else:
                if pending is not None:
                    yield pending[0], pending[1] - pending[0], tier, pending[2]
                pending = (a, b, mirrors)
        if pending is not None:
            yield pending[0], pending[1] - pending[0], tier, pending[2]
