"""Block Lookup Table: which tier stores the current version of each block.

§2.2: "Block-level data distribution requires Mux to maintain the mapping
from a block to the underlying file systems (a file system's internal index
is invisible to Mux). ... Since the table maps file offsets to devices,
that are small in size, we use an extent tree as a high-performance data
structure."

Two interchangeable implementations are provided:

* :class:`ExtentBlt` — the paper's choice, an extent tree (coalesced runs);
* :class:`ByteArrayBlt` — the flat one-byte-per-block table §2.3 sizes
  ("one byte per 4 KB of user data"), kept as the ablation baseline.

Both expose the same interface; Mux charges their (different) lookup costs
from :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterator, List, Optional, Tuple

from repro.fscommon.extents import ExtentTree

#: (first_block, count, tier_id or None-for-hole)
BltRun = Tuple[int, int, Optional[int]]


class BlockLookupTable(ABC):
    """Per-file map from file block index to owning tier."""

    @abstractmethod
    def lookup(self, block: int) -> Optional[int]:
        """Tier id storing ``block``, or None for a hole."""

    @abstractmethod
    def map_range(self, start: int, count: int, tier_id: int) -> None:
        """Assign [start, start+count) to ``tier_id``."""

    @abstractmethod
    def unmap_range(self, start: int, count: int) -> None:
        """Mark [start, start+count) as holes."""

    @abstractmethod
    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        """Decompose a range into per-tier runs (holes -> tier None)."""

    @abstractmethod
    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        """CPU cost of a lookup spanning the given runs/blocks."""

    @abstractmethod
    def tiers_used(self) -> List[int]:
        """Sorted tier ids that own at least one block."""

    @abstractmethod
    def blocks_on(self, tier_id: int) -> int:
        """Number of blocks currently owned by ``tier_id``."""

    @abstractmethod
    def mapped_blocks(self) -> int:
        """Total mapped (non-hole) blocks."""

    @abstractmethod
    def end_block(self) -> int:
        """One past the highest mapped block."""

    def memory_bytes(self) -> int:
        """Approximate metadata footprint (space-overhead accounting)."""
        return 0


class ExtentBlt(BlockLookupTable):
    """Extent-tree BLT (the paper's design)."""

    def __init__(self) -> None:
        self._tree = ExtentTree(value_is_offset=False)
        self._per_tier: Dict[int, int] = {}

    def lookup(self, block: int) -> Optional[int]:
        return self._tree.lookup(block)

    def map_range(self, start: int, count: int, tier_id: int) -> None:
        for run_start, run_len, old in list(self._tree.runs(start, count)):
            if old is not None:
                self._per_tier[old] -= run_len
        self._tree.map_range(start, count, tier_id)
        self._per_tier[tier_id] = self._per_tier.get(tier_id, 0) + count

    def unmap_range(self, start: int, count: int) -> None:
        for run_start, run_len, old in list(self._tree.runs(start, count)):
            if old is not None:
                self._per_tier[old] -= run_len
        self._tree.unmap_range(start, count)

    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        return self._tree.runs(start, count)

    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        from repro.core import calibration as cal

        return cal.MUX_BLT_LOOKUP_NS + cal.MUX_BLT_RUN_NS * max(0, runs_touched - 1)

    def tiers_used(self) -> List[int]:
        return sorted(t for t, n in self._per_tier.items() if n > 0)

    def blocks_on(self, tier_id: int) -> int:
        return max(0, self._per_tier.get(tier_id, 0))

    def mapped_blocks(self) -> int:
        return self._tree.mapped_blocks

    def end_block(self) -> int:
        return self._tree.end_block()

    def memory_bytes(self) -> int:
        # one extent record: start + count + value + node overhead
        return len(self._tree) * 32

    def check_invariants(self) -> None:
        self._tree.check_invariants()
        recount: Dict[int, int] = {}
        for ext in self._tree:
            recount[ext.value] = recount.get(ext.value, 0) + ext.count
        for tier, n in recount.items():
            assert self._per_tier.get(tier, 0) == n, (tier, n, self._per_tier)


class ByteArrayBlt(BlockLookupTable):
    """Flat one-byte-per-block BLT (§2.3's space estimate; ablation)."""

    HOLE = 0xFF

    def __init__(self) -> None:
        self._table = bytearray()

    def _grow_to(self, blocks: int) -> None:
        if len(self._table) < blocks:
            self._table.extend(bytes([self.HOLE]) * (blocks - len(self._table)))

    def lookup(self, block: int) -> Optional[int]:
        if block >= len(self._table):
            return None
        value = self._table[block]
        return None if value == self.HOLE else value

    def map_range(self, start: int, count: int, tier_id: int) -> None:
        if not 0 <= tier_id < self.HOLE:
            raise ValueError(f"tier id {tier_id} does not fit in one byte")
        self._grow_to(start + count)
        self._table[start : start + count] = bytes([tier_id]) * count

    def unmap_range(self, start: int, count: int) -> None:
        end = min(start + count, len(self._table))
        if end > start:
            self._table[start:end] = bytes([self.HOLE]) * (end - start)

    def runs(self, start: int, count: int) -> Iterator[BltRun]:
        pos = start
        end = start + count
        while pos < end:
            tier = self.lookup(pos)
            run = 1
            while pos + run < end and self.lookup(pos + run) == tier:
                run += 1
            yield pos, run, tier
            pos += run

    def lookup_cost_ns(self, runs_touched: int, blocks_touched: int) -> int:
        from repro.core import calibration as cal

        return cal.MUX_BLT_BYTEARRAY_PER_BLOCK_NS * max(1, blocks_touched)

    def tiers_used(self) -> List[int]:
        return sorted({b for b in self._table if b != self.HOLE})

    def blocks_on(self, tier_id: int) -> int:
        return sum(1 for b in self._table if b == tier_id)

    def mapped_blocks(self) -> int:
        return sum(1 for b in self._table if b != self.HOLE)

    def end_block(self) -> int:
        for i in range(len(self._table) - 1, -1, -1):
            if self._table[i] != self.HOLE:
                return i + 1
        return 0

    def memory_bytes(self) -> int:
        return len(self._table)
