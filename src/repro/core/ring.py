"""io_uring-style asynchronous submit/complete API on the Mux.

The paper's unit of work is the *user request at the file-system
interface* — and real users issue many independent requests concurrently.
PR 5's parallel engine overlapped the sub-requests of a *single* split
op; this module lets **independent user ops** overlap on the per-device
:class:`~repro.devices.base.DeviceTimeline` channels, the way an
io_uring submission queue does on real NVMe hardware.

Simulation semantics
--------------------

Every submitted op executes *eagerly* inside its own clock frame pushed
at the submission instant: state mutations (cache fills, BLT updates,
journal appends) happen in program order — exactly the deterministic
discipline the frame machinery established — while the op's *time* is
charged to the frame, so its device accesses overlap with other in-flight
submissions on the device timelines.  The frame's final cursor is the
op's completion timestamp.  ``wait``/``drain`` are the synchronization
points: they advance the global clock to the reaped completion, just
like ``io_uring_wait_cqe``.

Determinism: completions are reaped in ``(completed_ns, seq)`` order, so
two ops completing on the same nanosecond always reap in submission
order, and the whole schedule is a pure function of the op sequence.

Backpressure: the ring bounds *overlap* at ``depth`` in-flight ops.  A
submit against a full ring first waits for the earliest in-flight
completion (the SQ-full stall of a real ring); the completed entry stays
queued for the user to reap.  ``depth=1`` therefore degenerates to the
serialized one-op-at-a-time model — the ablation baseline the
``multi_tenant`` benchmark compares against.

Failure: an op that raises a simulated-storage error (``ReproError``)
completes with ``Completion.error`` set instead of unwinding the caller
mid-submission — matching a CQE with a negative ``res``.  Host-side bugs
(``TypeError`` etc.) still propagate.
"""

from __future__ import annotations

import errno as _errno

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.core import calibration as cal
from repro.errors import InvalidArgument, ReproError
from repro.vfs.interface import FileHandle


@dataclass(frozen=True)
class Submission:
    """Ticket for one submitted op (the SQE, after the doorbell)."""

    seq: int
    op: str  # "read" | "write" | "fsync"
    ino: int
    submitted_ns: int


@dataclass
class Completion:
    """One finished op (the CQE)."""

    seq: int
    op: str
    ino: int
    submitted_ns: int
    completed_ns: int
    #: bytes for reads, byte count for writes, None for fsync / errors
    result: Any = None
    #: the simulated-storage error the op failed with, if any
    error: Optional[ReproError] = None

    @property
    def latency_ns(self) -> int:
        """Submit-to-complete latency on the simulated clock."""
        return self.completed_ns - self.submitted_ns

    @property
    def errno(self) -> int:
        """POSIX errno of the failed op, 0 on success (the CQE ``res`` sign).

        FS errors carry their own errno (a failed writeback reports EIO
        exactly once per fd, via the errseq check in the fsync path);
        device-level errors that escape the FS default to EIO.
        """
        if self.error is None:
            return 0
        return getattr(self.error, "errno", _errno.EIO)

    def unwrap(self) -> Any:
        """Return ``result``, re-raising the op's error if it failed."""
        if self.error is not None:
            raise self.error
        return self.result


class IoRing:
    """Bounded submit/complete ring bound to one Mux instance.

    Obtain via :meth:`MuxFileSystem.open_ring`; ``close()`` drains and
    unregisters it.  With the scheduler's ``parallel`` flag off (the
    serial ablation) submissions execute on the global clock and nothing
    overlaps — the ring degenerates to a queue of already-done ops.
    """

    def __init__(self, mux, depth: int = 8) -> None:
        if depth < 1:
            raise InvalidArgument(f"ring depth must be >= 1, got {depth}")
        self.mux = mux
        self.depth = depth
        self.clock = mux.clock
        self._next_seq = 0
        #: completions not yet reaped by wait/drain/poll, submit order
        self._pending: List[Completion] = []
        self.closed = False
        # lifetime counters (surfaced via snapshot; deterministic)
        self.submitted = 0
        self.reaped = 0
        #: submits that stalled on a full ring
        self.backpressure_waits = 0
        #: deepest genuine overlap seen at any submit instant
        self.max_inflight = 0

    # -- submission ------------------------------------------------------

    def submit_read(self, handle: FileHandle, offset: int, length: int) -> Submission:
        """Queue a read; returns its :class:`Submission` ticket."""
        return self._submit(
            "read", handle, lambda: self.mux.read(handle, offset, length)
        )

    def submit_write(self, handle: FileHandle, offset: int, data: bytes) -> Submission:
        """Queue a write; completion ``result`` is the byte count."""
        return self._submit(
            "write", handle, lambda: self.mux.write(handle, offset, data)
        )

    def submit_fsync(self, handle: FileHandle) -> Submission:
        """Queue an fsync; completion ``result`` is None."""
        return self._submit("fsync", handle, lambda: self.mux.fsync(handle))

    def _submit(self, op: str, handle: FileHandle, thunk) -> Submission:
        if self.closed:
            raise InvalidArgument("submit on a closed ring")
        clock = self.clock
        # SQE build + doorbell: foreground cost, serializes submissions
        clock.advance_ns(cal.RING_SUBMIT_NS)
        # ring-full backpressure: stall until the earliest in-flight op
        # completes (its CQE stays queued for the user to reap)
        while True:
            horizon = clock.now_ns
            inflight = [c for c in self._pending if c.completed_ns > horizon]
            if len(inflight) < self.depth:
                break
            self.backpressure_waits += 1
            clock.advance_to(min(c.completed_ns for c in inflight))
        seq = self._next_seq
        self._next_seq += 1
        submitted_ns = clock.now_ns
        completion = Completion(
            seq=seq, op=op, ino=handle.ino, submitted_ns=submitted_ns,
            completed_ns=submitted_ns,
        )
        overlap = self.mux.scheduler.parallel
        if overlap:
            clock.push_frame(submitted_ns)
        try:
            completion.result = thunk()
        except ReproError as exc:
            completion.error = exc
        finally:
            completion.completed_ns = clock.pop_frame() if overlap else clock.now_ns
        self._pending.append(completion)
        self.submitted += 1
        self.mux.scheduler.ring_ops += 1
        if len(inflight) + 1 > self.max_inflight:
            self.max_inflight = len(inflight) + 1
        return Submission(seq=seq, op=op, ino=handle.ino, submitted_ns=submitted_ns)

    # -- completion ------------------------------------------------------

    @property
    def pending(self) -> int:
        """Completions queued but not yet reaped."""
        return len(self._pending)

    def inflight(self, ino: Optional[int] = None) -> int:
        """Unreaped ops still completing after the current instant."""
        now = self.clock.global_now_ns
        return sum(
            1
            for c in self._pending
            if c.completed_ns > now and (ino is None or c.ino == ino)
        )

    def _reap(self, completion: Completion) -> Completion:
        self._pending.remove(completion)
        self.reaped += 1
        self.clock.advance_ns(cal.RING_REAP_NS)
        return completion

    def wait(self, submission: Optional[Submission] = None) -> Completion:
        """Reap one completion, advancing the clock to it.

        With a ticket: that specific op.  Without: the earliest pending
        completion in ``(completed_ns, seq)`` order.  The reaped op's
        error (if any) is *not* raised — check ``Completion.error`` or
        call :meth:`Completion.unwrap`.
        """
        if not self._pending:
            raise InvalidArgument("wait on an empty ring")
        if submission is None:
            target = min(self._pending, key=lambda c: (c.completed_ns, c.seq))
        else:
            target = next(
                (c for c in self._pending if c.seq == submission.seq), None
            )
            if target is None:
                raise InvalidArgument(
                    f"submission #{submission.seq} is not pending on this ring"
                )
        self.clock.advance_to(target.completed_ns)
        return self._reap(target)

    def poll(self) -> List[Completion]:
        """Reap every completion already due, without waiting.

        Returns ``(completed_ns, seq)``-ordered completions whose time
        has passed; an empty list if everything is still in flight.
        """
        now = self.clock.now_ns
        due = sorted(
            (c for c in self._pending if c.completed_ns <= now),
            key=lambda c: (c.completed_ns, c.seq),
        )
        return [self._reap(c) for c in due]

    def drain(self) -> List[Completion]:
        """Reap everything, advancing the clock to the last completion."""
        out = sorted(self._pending, key=lambda c: (c.completed_ns, c.seq))
        if out:
            self.clock.advance_to(out[-1].completed_ns)
        return [self._reap(c) for c in out]

    def quiesce(self, ino: Optional[int] = None) -> None:
        """Wait (on the global clock) for in-flight ops to finish.

        Used by the OCC Synchronizer's pessimistic-lock fallback: the
        lock must not be granted while async ops on the file are still
        completing, exactly as a kernel lock waits for in-flight DMA.
        Completions stay queued — quiescing is not reaping.
        """
        relevant = [
            c.completed_ns
            for c in self._pending
            if ino is None or c.ino == ino
        ]
        if relevant:
            self.clock.advance_to(max(relevant))

    def close(self) -> List[Completion]:
        """Drain outstanding completions and unregister from the Mux."""
        out = self.drain()
        self.closed = True
        self.mux._rings.remove(self)
        return out

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        """Lifetime ring counters (deterministic, fingerprint-safe)."""
        return {
            "depth": self.depth,
            "submitted": self.submitted,
            "reaped": self.reaped,
            "pending": len(self._pending),
            "backpressure_waits": self.backpressure_waits,
            "max_inflight": self.max_inflight,
        }

    def __enter__(self) -> "IoRing":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if not self.closed:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IoRing(depth={self.depth}, pending={len(self._pending)}, "
            f"submitted={self.submitted})"
        )
