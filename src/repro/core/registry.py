"""Tier registry: runtime attach/detach of native file systems (§2.1).

"To add a new device and the corresponding file system, the user only
needs to mount the new file system and register it with Mux, along with a
policy to manage it.  To remove a device, data must be migrated first.
Adding or removing a device can be done at runtime."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.health import HealthState, TierHealth
from repro.core.policy import TierState
from repro.devices.profile import DeviceKind, DeviceProfile
from repro.errors import InvalidArgument, ReproError
from repro.vfs.interface import FileSystem


@dataclass
class Tier:
    """One registered tier: a native file system mounted in the shared VFS."""

    tier_id: int
    name: str
    fs: FileSystem
    mount: str  # mount point of ``fs`` inside the shared VFS
    profile: DeviceProfile
    rank: int  # 0 = fastest
    health: TierHealth = field(default_factory=TierHealth)

    @property
    def kind(self) -> DeviceKind:
        return self.profile.kind

    def state(self) -> TierState:
        fsstats = self.fs.statfs()
        return TierState(
            tier_id=self.tier_id,
            name=self.name,
            rank=self.rank,
            kind=self.kind,
            free_bytes=fsstats.free_bytes,
            total_bytes=fsstats.total_bytes,
            health=self.health.state,
        )


#: rank ordering by device class when the caller does not give one
_DEFAULT_RANK = {
    DeviceKind.PERSISTENT_MEMORY: 0,
    DeviceKind.SOLID_STATE: 1,
    DeviceKind.HARD_DISK: 2,
}


class TierRegistry:
    """Orders and tracks the tiers Mux multiplexes over."""

    def __init__(self) -> None:
        self._tiers: Dict[int, Tier] = {}
        self._next_id = 0

    def add(
        self,
        name: str,
        fs: FileSystem,
        mount: str,
        profile: DeviceProfile,
        rank: Optional[int] = None,
    ) -> Tier:
        if any(t.name == name for t in self._tiers.values()):
            raise InvalidArgument(f"tier name {name!r} already registered")
        if rank is None:
            rank = _DEFAULT_RANK.get(profile.kind, len(self._tiers))
        tier = Tier(self._next_id, name, fs, mount, profile, rank)
        self._tiers[tier.tier_id] = tier
        self._next_id += 1
        return tier

    def remove(self, tier_id: int) -> Tier:
        try:
            return self._tiers.pop(tier_id)
        except KeyError:
            raise InvalidArgument(f"no tier with id {tier_id}")

    def get(self, tier_id: int) -> Tier:
        try:
            return self._tiers[tier_id]
        except KeyError:
            raise ReproError(f"unknown tier id {tier_id}")

    def maybe_get(self, tier_id: int) -> Optional[Tier]:
        return self._tiers.get(tier_id)

    def by_name(self, name: str) -> Tier:
        for tier in self._tiers.values():
            if tier.name == name:
                return tier
        raise ReproError(f"unknown tier name {name!r}")

    def ids(self) -> List[int]:
        return sorted(self._tiers)

    def ordered(self) -> List[Tier]:
        """Tiers sorted fastest-first."""
        return sorted(self._tiers.values(), key=lambda t: (t.rank, t.tier_id))

    def states(self) -> List[TierState]:
        return [tier.state() for tier in self.ordered()]

    def fastest(self) -> Tier:
        ordered = self.ordered()
        if not ordered:
            raise ReproError("no tiers registered")
        return ordered[0]

    def any_unhealthy(self) -> bool:
        """True if any tier is not HEALTHY (cheap degraded-mode gate)."""
        return any(
            t.health.state is not HealthState.HEALTHY for t in self._tiers.values()
        )

    def __len__(self) -> int:
        return len(self._tiers)

    def __iter__(self):
        return iter(self.ordered())

    def __contains__(self, tier_id: int) -> bool:
        return tier_id in self._tiers
