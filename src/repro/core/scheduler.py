"""Device-profile-aware I/O scheduler (§4, "Improving the I/O Scheduler").

"We currently use a simple scheduling algorithm based on device profiles
(performance characteristics and feature sets)."

When Mux splits one user request into per-tier sub-requests, the scheduler
decides dispatch order and merges sub-requests that are adjacent in the
same file on the same tier.  Two effects are real in the simulation:

* merging adjacent spans saves per-request software cost (one delegated
  VFS call instead of many);
* sorting sub-requests by file offset on seek-bound devices (the elevator
  pass) reduces HDD head movement.

The scheduler can be disabled for the ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.devices.profile import DeviceKind
from repro.errors import InvalidArgument


@dataclass
class DrrStream:
    """Per-stream DRR state + lifetime fairness counters."""

    #: bytes of credit left in the current round
    deficit: float
    bytes: int = 0
    ops: int = 0
    #: rounds this stream sat out waiting for credit
    rounds_waited: int = 0
    #: total simulated deferral charged to this stream
    defer_ns: int = 0
    #: instant the stream's queued work drains (idle detection)
    busy_until_ns: int = 0


class DeficitRoundRobin:
    """Deficit round-robin arbitration between foreground streams.

    Shreedhar & Varghese's algorithm in its deterministic-simulation
    form: every stream holds a byte *deficit counter*; each scheduler
    round grants every backlogged stream one ``quantum`` of credit and
    serves it while credit lasts.  An op larger than the stream's credit
    waits whole rounds until enough quanta accumulate, and one round
    takes ``active_streams * quantum / rate`` of simulated time — the
    interval in which the shared dispatcher serves a quantum from every
    competitor.  A stream arriving *idle* (its previous work already
    drained) starts a fresh round with one quantum of credit, so light,
    bursty streams pay nothing; only streams that keep the dispatcher
    continuously busy shave each other — byte-accurate fairness that a
    per-stream token bucket (an absolute cap, blind to who else is
    running) cannot express.  The two compose: the bucket bounds a
    stream in isolation, DRR splits the residual capacity evenly.
    """

    def __init__(
        self, quantum_bytes: int = 64 * 1024, rate_bytes_per_sec: float = 2e9
    ) -> None:
        if quantum_bytes < 1 or rate_bytes_per_sec <= 0:
            raise InvalidArgument("DRR needs a positive quantum and rate")
        self.quantum = quantum_bytes
        self.rate = rate_bytes_per_sec
        self.streams: Dict[str, DrrStream] = {}

    def _active_at(self, now_ns: int) -> int:
        return sum(1 for s in self.streams.values() if s.busy_until_ns > now_ns)

    def account(self, name: str, nbytes: int, now_ns: int) -> int:
        """Charge ``nbytes`` on stream ``name``; returns the deferral ns.

        Streams register implicitly on first use — handle tags already
        name them (QoS classes), so the arbiter needs no setup.
        """
        stream = self.streams.get(name)
        if stream is None:
            stream = self.streams[name] = DrrStream(deficit=float(self.quantum))
        if stream.busy_until_ns <= now_ns:
            # queue drained since the last op: classic DRR zeroes the
            # deficit on empty and grants a fresh quantum on arrival
            stream.deficit = float(self.quantum)
        active = max(1, self._active_at(now_ns) + (stream.busy_until_ns <= now_ns))
        round_ns = active * self.quantum * 1e9 / self.rate
        shortfall = nbytes - stream.deficit
        rounds = 0 if shortfall <= 0 else math.ceil(shortfall / self.quantum)
        delay_ns = round(rounds * round_ns)
        stream.deficit += rounds * self.quantum - nbytes
        stream.busy_until_ns = now_ns + delay_ns
        stream.bytes += nbytes
        stream.ops += 1
        stream.rounds_waited += rounds
        stream.defer_ns += delay_ns
        return delay_ns

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-stream deficit counters (deterministic, fingerprint-safe)."""
        return {
            name: {
                "deficit": round(s.deficit),
                "bytes": s.bytes,
                "ops": s.ops,
                "rounds_waited": s.rounds_waited,
                "defer_ns": s.defer_ns,
            }
            for name, s in sorted(self.streams.items())
        }


@dataclass
class SubRequest:
    """One delegated span of a split user I/O."""

    tier_id: int
    offset: int  # byte offset in the file
    length: int
    #: index into the user buffer this span maps to
    buffer_offset: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class IoScheduler:
    """Dispatcher for the per-tier sub-requests of one user operation.

    Beyond ordering and merging, the scheduler decides whether the plan is
    *dispatched in parallel*: with ``parallel=True`` (the default) Mux runs
    each sub-request in its own clock frame against the target device's
    timeline, so sub-requests on different tiers overlap and the user op
    completes at the max of their completions.  ``parallel=False`` keeps
    the historical serial model (sum of latencies) for ablation.

    Per-tier dispatch counters accumulate across the scheduler's lifetime;
    per-device queue/utilization gauges live on each device's
    :class:`~repro.devices.base.DeviceTimeline` (the scheduler plans in
    file-offset space and never sees devices directly).
    """

    def __init__(
        self,
        enabled: bool = True,
        parallel: bool = True,
        pressure_order: bool = False,
    ) -> None:
        self.enabled = enabled
        #: overlap sub-requests of one split op across tiers
        self.parallel = parallel
        #: opt-in: when a backlog map is supplied, dispatch the most
        #: backlogged tier first (its queueing delay dominates the op's
        #: completion).  Off by default so golden timings are unchanged.
        self.pressure_order = pressure_order
        self.merges = 0
        self.dispatches = 0
        #: plans that contained more than one sub-request after merging
        self.batches = 0
        #: user ops dispatched through async submit/complete rings
        self.ring_ops = 0
        self.tier_dispatches: Dict[int, int] = {}
        self.tier_bytes: Dict[int, int] = {}

    def _account(self, plan: List[SubRequest]) -> List[SubRequest]:
        if len(plan) > 1:
            self.batches += 1
        for req in plan:
            self.tier_dispatches[req.tier_id] = (
                self.tier_dispatches.get(req.tier_id, 0) + 1
            )
            self.tier_bytes[req.tier_id] = (
                self.tier_bytes.get(req.tier_id, 0) + req.length
            )
        return plan

    def snapshot(self) -> Dict[str, object]:
        """Lifetime dispatch counters (deterministic, fingerprint-safe).

        ``ring_ops`` appears only once a ring has dispatched through this
        scheduler, so snapshots of ring-free runs are unchanged.
        """
        snap = {
            "merges": self.merges,
            "dispatches": self.dispatches,
            "batches": self.batches,
            "tier_dispatches": dict(sorted(self.tier_dispatches.items())),
            "tier_bytes": dict(sorted(self.tier_bytes.items())),
        }
        if self.ring_ops:
            snap["ring_ops"] = self.ring_ops
        return snap

    def plan(
        self,
        subrequests: List[SubRequest],
        tier_kinds: Dict[int, DeviceKind],
        backlog: Optional[Dict[int, float]] = None,
    ) -> List[SubRequest]:
        """Return the dispatch plan for one split operation.

        Disabled: FIFO, no merging.  Enabled: per-tier elevator order for
        seek-bound tiers, then adjacent-span merging.  Tier ordering
        depends on the dispatch model:

        * serial (``parallel=False``): fast tiers first, so their results
          return before the slow devices are even touched;
        * parallel: *slowest* tiers first — every sub-request overlaps, so
          the op completes at the max of completions and the win is
          starting the bottleneck device as early as possible (fast tiers
          finish almost immediately whenever they are dispatched).
        """
        self.dispatches += len(subrequests)
        if not self.enabled or len(subrequests) <= 1:
            return self._account(list(subrequests))

        flip = -1 if self.parallel else 1
        loads = backlog if self.pressure_order and backlog is not None else None

        def sort_key(req: SubRequest):
            kind = tier_kinds.get(req.tier_id, DeviceKind.SOLID_STATE)
            # tier rank by dispatch model; then elevator order within tier
            rank = {
                DeviceKind.PERSISTENT_MEMORY: 0,
                DeviceKind.SOLID_STATE: 1,
                DeviceKind.HARD_DISK: 2,
            }[kind]
            # pressure ordering: the deepest queue is the completion
            # bottleneck regardless of nominal tier speed, so it goes first
            load = -loads.get(req.tier_id, 0.0) if loads is not None else 0.0
            return (load, flip * rank, req.tier_id, req.offset)

        ordered = sorted(subrequests, key=sort_key)
        merged: List[SubRequest] = []
        for req in ordered:
            prev = merged[-1] if merged else None
            if (
                prev is not None
                and prev.tier_id == req.tier_id
                and prev.end == req.offset
                and prev.buffer_offset + prev.length == req.buffer_offset
            ):
                prev.length += req.length
                self.merges += 1
            else:
                merged.append(
                    SubRequest(req.tier_id, req.offset, req.length, req.buffer_offset)
                )
        return self._account(merged)
