"""Device-profile-aware I/O scheduler (§4, "Improving the I/O Scheduler").

"We currently use a simple scheduling algorithm based on device profiles
(performance characteristics and feature sets)."

When Mux splits one user request into per-tier sub-requests, the scheduler
decides dispatch order and merges sub-requests that are adjacent in the
same file on the same tier.  Two effects are real in the simulation:

* merging adjacent spans saves per-request software cost (one delegated
  VFS call instead of many);
* sorting sub-requests by file offset on seek-bound devices (the elevator
  pass) reduces HDD head movement.

The scheduler can be disabled for the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.devices.profile import DeviceKind


@dataclass
class SubRequest:
    """One delegated span of a split user I/O."""

    tier_id: int
    offset: int  # byte offset in the file
    length: int
    #: index into the user buffer this span maps to
    buffer_offset: int

    @property
    def end(self) -> int:
        return self.offset + self.length


class IoScheduler:
    """Orders and merges the per-tier sub-requests of one user operation."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.merges = 0
        self.dispatches = 0

    def plan(
        self, subrequests: List[SubRequest], tier_kinds: Dict[int, DeviceKind]
    ) -> List[SubRequest]:
        """Return the dispatch plan for one split operation.

        Disabled: FIFO, no merging.  Enabled: per-tier elevator order for
        seek-bound tiers, then adjacent-span merging, fast tiers first
        (their results come back while slow devices are still working in a
        real system; in the simulation this only affects seek locality).
        """
        self.dispatches += len(subrequests)
        if not self.enabled or len(subrequests) <= 1:
            return list(subrequests)

        def sort_key(req: SubRequest):
            kind = tier_kinds.get(req.tier_id, DeviceKind.SOLID_STATE)
            # fast tiers first; then elevator order on seek-bound devices
            rank = {
                DeviceKind.PERSISTENT_MEMORY: 0,
                DeviceKind.SOLID_STATE: 1,
                DeviceKind.HARD_DISK: 2,
            }[kind]
            return (rank, req.tier_id, req.offset)

        ordered = sorted(subrequests, key=sort_key)
        merged: List[SubRequest] = []
        for req in ordered:
            prev = merged[-1] if merged else None
            if (
                prev is not None
                and prev.tier_id == req.tier_id
                and prev.end == req.offset
                and prev.buffer_offset + prev.length == req.buffer_offset
            ):
                prev.length += req.length
                self.merges += 1
            else:
                merged.append(
                    SubRequest(req.tier_id, req.offset, req.length, req.buffer_offset)
                )
        return merged
