"""Pressure signals: queue/health/dirty-load features for tiering.

The parallel I/O engine already tracks the load signals that matter for
placement — per-device channel backlog, utilization, the saturation
knee — but until now policies saw only capacity and per-inode hotness.
This module samples each tier's
:class:`~repro.devices.base.DeviceTimeline` on SimClock time,
EWMA-smooths the gauges, and exposes them through
``TierState.pressure`` so any policy in the registry can route bursts
around saturated channels, demote off a backlogged tier, or defer a
migration whose target is hot.

Sampling is pure host-side bookkeeping: it charges no simulated time and
consumes no randomness, so it cannot perturb golden fingerprints.  Every
smoothed value is a function of integer clock readings and integer
timeline gauges, making the signals bit-deterministic across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional


@dataclass(frozen=True)
class TierPressure:
    """Load snapshot for one tier, attached to ``TierState.pressure``.

    ``queued`` is the instantaneous per-channel backlog at the last
    sample; ``backlog`` is its EWMA.  ``utilization`` is the EWMA of the
    fraction of channel-time spent servicing requests over recent sample
    windows.  ``dirty_fraction`` is the write-back cache's dirty share
    when the tier hosts the SCM cache (0.0 otherwise) — high values mean
    a destage burst is imminent on this tier's channels.
    """

    queued: float = 0.0
    backlog: float = 0.0
    utilization: float = 0.0
    dirty_fraction: float = 0.0
    sampled_ns: int = 0

    @property
    def load(self) -> float:
        """The signal placement thresholds on: current or trending backlog.

        ``max(queued, backlog)`` reacts within one sample when a burst
        lands (instantaneous term) while the EWMA term keeps the signal
        elevated through the burst's tail instead of flapping.
        """
        return self.queued if self.queued > self.backlog else self.backlog


class _TierGauges:
    """Mutable per-tier EWMA state (one per attached timeline)."""

    __slots__ = (
        "timeline",
        "ewma_backlog",
        "ewma_util",
        "queued",
        "last_busy_ns",
        "last_sample_ns",
        "samples",
        "snapshot_obj",
    )

    def __init__(self, timeline) -> None:
        self.timeline = timeline
        self.ewma_backlog = 0.0
        self.ewma_util = 0.0
        self.queued = 0.0
        self.last_busy_ns = 0
        self.last_sample_ns = -1
        self.samples = 0
        self.snapshot_obj: Optional[TierPressure] = None


class PressureMonitor:
    """Samples per-tier ``DeviceTimeline`` gauges into :class:`TierPressure`.

    The mux attaches one timeline per tier whose file system exposes a
    device; :meth:`sample` is interval-gated so calling it on every
    placement stays cheap, and :meth:`decorate` stamps the cached
    snapshots onto a list of ``TierState``.
    """

    def __init__(
        self, sample_interval_ns: int = 20_000, alpha: float = 0.3
    ) -> None:
        if sample_interval_ns <= 0:
            raise ValueError("sample interval must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.sample_interval_ns = sample_interval_ns
        self.alpha = alpha
        self._tiers: Dict[int, _TierGauges] = {}
        #: tier hosting the write-back cache -> dirty-fraction gauge
        self._dirty_tier: Optional[int] = None
        self._dirty_fn: Optional[Callable[[], float]] = None

    # -- wiring ------------------------------------------------------------

    def attach(self, tier_id: int, timeline) -> None:
        """Track one tier's :class:`~repro.devices.base.DeviceTimeline`."""
        self._tiers[tier_id] = _TierGauges(timeline)

    def detach(self, tier_id: int) -> None:
        self._tiers.pop(tier_id, None)
        if self._dirty_tier == tier_id:
            self._dirty_tier = None
            self._dirty_fn = None

    def set_dirty_gauge(self, tier_id: int, fn: Callable[[], float]) -> None:
        """Report the write-back cache's dirty fraction on ``tier_id``."""
        self._dirty_tier = tier_id
        self._dirty_fn = fn

    def tracked_tiers(self) -> List[int]:
        return sorted(self._tiers)

    # -- sampling ----------------------------------------------------------

    def sample(self, now_ns: int, force: bool = False) -> None:
        """Refresh the pressure snapshots if the sample interval elapsed.

        Pure host-side: no simulated time is charged and no randomness
        is consumed, so fingerprints cannot drift from sampling.
        """
        alpha = self.alpha
        for tier_id, g in self._tiers.items():
            if g.last_sample_ns >= 0:
                dt = now_ns - g.last_sample_ns
                if dt < self.sample_interval_ns and not force:
                    continue
            else:
                dt = 0
            tl = g.timeline
            inst_queued = tl.queued_at(now_ns) / tl.nchannels
            g.queued = inst_queued
            if g.samples == 0:
                g.ewma_backlog = inst_queued
            else:
                g.ewma_backlog += alpha * (inst_queued - g.ewma_backlog)
            if dt > 0:
                inst_util = (tl.busy_ns - g.last_busy_ns) / (dt * tl.nchannels)
                if inst_util > 1.0:
                    inst_util = 1.0
                if g.samples <= 1:
                    g.ewma_util = inst_util
                else:
                    g.ewma_util += alpha * (inst_util - g.ewma_util)
            g.last_busy_ns = tl.busy_ns
            g.last_sample_ns = now_ns
            g.samples += 1
            dirty = 0.0
            if tier_id == self._dirty_tier and self._dirty_fn is not None:
                dirty = self._dirty_fn()
            g.snapshot_obj = TierPressure(
                queued=g.queued,
                backlog=g.ewma_backlog,
                utilization=g.ewma_util,
                dirty_fraction=dirty,
                sampled_ns=now_ns,
            )

    # -- reading -----------------------------------------------------------

    def pressure_of(self, tier_id: int) -> Optional[TierPressure]:
        g = self._tiers.get(tier_id)
        return g.snapshot_obj if g is not None else None

    def load_of(self, tier_id: int) -> float:
        """Current load signal for one tier (0.0 when untracked)."""
        g = self._tiers.get(tier_id)
        if g is None or g.snapshot_obj is None:
            return 0.0
        return g.snapshot_obj.load

    def instant_load_of(self, tier_id: int, now_ns: int) -> float:
        """Per-channel backlog right now, bypassing the sample gate.

        Pure read of the timeline (no gauge state is touched), for
        decisions that must see a burst the moment it lands — e.g. the
        migration engine pacing chunks between foreground ops that all
        share one arrival instant, where the interval-gated snapshot is
        necessarily stale.
        """
        g = self._tiers.get(tier_id)
        if g is None:
            return 0.0
        tl = g.timeline
        return tl.queued_at(now_ns) / tl.nchannels

    def backlog_map(self) -> Dict[int, float]:
        """tier_id -> load, for dispatch-order hints (see IoScheduler)."""
        return {
            tid: g.snapshot_obj.load
            for tid, g in self._tiers.items()
            if g.snapshot_obj is not None
        }

    def decorate(self, states: list) -> list:
        """Return ``TierState`` list with pressure snapshots attached."""
        out = []
        for state in states:
            g = self._tiers.get(state.tier_id)
            if g is not None and g.snapshot_obj is not None:
                state = replace(state, pressure=g.snapshot_obj)
            out.append(state)
        return out

    def snapshot(self) -> Dict[int, Dict[str, float]]:
        """Rounded per-tier gauges for dumps (``bench trace --pressure``)."""
        snap: Dict[int, Dict[str, float]] = {}
        for tier_id in sorted(self._tiers):
            g = self._tiers[tier_id]
            p = g.snapshot_obj
            if p is None:
                continue
            snap[tier_id] = {
                "queued": round(p.queued, 4),
                "backlog": round(p.backlog, 4),
                "utilization": round(p.utilization, 4),
                "dirty_fraction": round(p.dirty_fraction, 4),
                "samples": g.samples,
            }
        return snap
