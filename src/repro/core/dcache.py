"""Dentry cache for Mux's union namespace.

Path resolution in :class:`~repro.core.metadata.MuxNamespace` walks one
dict per component; on metadata-heavy workloads that walk (plus the path
normalization feeding it) dominates host CPU.  This cache memoizes
*canonical path -> inode number* (positive entries) and *canonical path ->
does not exist* (negative entries), exactly like the kernel dcache in
front of a file system's own lookup.

Correctness model:

* inode numbers are never reused, so a stale positive entry whose inode
  died simply misses in the inode table and falls back to the walk;
* a positive entry can only go stale-but-resolvable through ``rename``,
  so rename invalidates both paths (and whole prefixes when a directory
  moves);
* negative entries die when the name is created (create/mkdir/rename
  target).

The cache is purely host-side state: no simulated-clock cost reads or
writes it, so hit/miss behaviour cannot change any benchmark fingerprint.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.vfs import path as vpath

#: sentinel stored for negative entries
_NEGATIVE = -1


class DentryCache:
    """Bounded positive + negative path-resolution cache."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[str, int]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- lookup ------------------------------------------------------------

    def get(self, path: str) -> Optional[int]:
        """Cached ino for ``path``, ``NEGATIVE`` marker, or None on miss."""
        ino = self._entries.get(path)
        if ino is None:
            self.misses += 1
            return None
        self.hits += 1
        return ino

    @staticmethod
    def is_negative(ino: int) -> bool:
        return ino == _NEGATIVE

    # -- population --------------------------------------------------------

    def put(self, path: str, ino: int) -> None:
        if len(self._entries) >= self.capacity and path not in self._entries:
            self._entries.popitem(last=False)
        self._entries[path] = ino

    def put_negative(self, path: str) -> None:
        self.put(path, _NEGATIVE)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, path: str) -> None:
        """Drop one path's entry (positive or negative)."""
        self._entries.pop(path, None)

    def invalidate_prefix(self, prefix: str) -> None:
        """Drop ``prefix`` and everything beneath it (directory moves)."""
        self._entries.pop(prefix, None)
        below = prefix.rstrip(vpath.SEP) + vpath.SEP
        dead = [p for p in self._entries if p.startswith(below)]
        for p in dead:
            del self._entries[p]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
