"""Mux core: the paper's primary contribution."""

from repro.core.autotune import AutoTuner, Configuration, Evaluation
from repro.core.blt import BlockLookupTable, ByteArrayBlt, ExtentBlt
from repro.core.cache import ScmCacheManager
from repro.core.metadata import CollectiveInode, MetadataAffinity, MuxNamespace
from repro.core.migration import MigrationEngine, PairStats
from repro.core.mglru import MultiGenLru
from repro.core.mux import MuxFileSystem, MuxMetaWriter
from repro.core.occ import MigrationResult, OccSynchronizer
from repro.core.policies import (
    HotColdPolicy,
    LruTieringPolicy,
    PinnedPolicy,
    TpfsPolicy,
)
from repro.core.qos import DEFAULT_CLASS, IoClass, QosManager
from repro.core.policy import (
    FileView,
    MigrationOrder,
    PlacementRequest,
    Policy,
    TierState,
    make_policy,
    register_policy,
    registered_policies,
)
from repro.core.registry import Tier, TierRegistry
from repro.core.scheduler import IoScheduler, SubRequest

__all__ = [
    "AutoTuner",
    "Configuration",
    "Evaluation",
    "BlockLookupTable",
    "ByteArrayBlt",
    "ExtentBlt",
    "ScmCacheManager",
    "CollectiveInode",
    "MetadataAffinity",
    "MuxNamespace",
    "MigrationEngine",
    "PairStats",
    "MultiGenLru",
    "MuxFileSystem",
    "MuxMetaWriter",
    "MigrationResult",
    "OccSynchronizer",
    "HotColdPolicy",
    "LruTieringPolicy",
    "PinnedPolicy",
    "TpfsPolicy",
    "FileView",
    "MigrationOrder",
    "PlacementRequest",
    "Policy",
    "TierState",
    "make_policy",
    "register_policy",
    "registered_policies",
    "DEFAULT_CLASS",
    "IoClass",
    "QosManager",
    "Tier",
    "TierRegistry",
    "IoScheduler",
    "SubRequest",
]
