"""SCM cache manager (§2.5).

Mux uses a persistent-memory tier as a *shared* cache for the slower tiers
(the per-FS DRAM page caches cannot be shared across devices).  Per the
paper, the cache lives in **one preallocated cache file** on the SCM file
system, accessed through **DAX memory mapping** so cached reads bypass the
file-system call path entirely, and replacement uses Multi-generational
LRU.

The model does exactly that: at attach time it creates and preallocates
``/.mux_cache`` through the PM tier's file system (charging the real
allocation cost), resolves the file's device blocks once (the "mmap"), and
thereafter serves hits and fills with raw PM loads/stores plus the small
bookkeeping costs from :mod:`repro.core.calibration`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core import calibration as cal
from repro.core.mglru import MultiGenLru
from repro.devices.pm import PersistentMemoryDevice
from repro.errors import ReproError
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs.interface import FileSystem, OpenFlags

CACHE_FILE = "/.mux_cache"

CacheKey = Tuple[int, int]  # (mux ino, file block)


class ScmCacheManager:
    """Shared block cache in a DAX-mapped file on the SCM tier."""

    def __init__(
        self,
        clock: SimClock,
        scm_fs: FileSystem,
        capacity_blocks: int,
        block_size: int,
        num_generations: int = 4,
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("cache needs positive capacity")
        self.clock = clock
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.stats = CounterSet()
        self._mglru: MultiGenLru[CacheKey] = MultiGenLru(
            capacity_blocks, num_generations
        )
        #: key -> slot index in the cache file
        self._slots: Dict[CacheKey, int] = {}
        self._free_slots: List[int] = list(range(capacity_blocks - 1, -1, -1))
        self._pm, self._slot_addrs = self._map_cache_file(scm_fs)

    def _map_cache_file(
        self, scm_fs: FileSystem
    ) -> Tuple[PersistentMemoryDevice, List[int]]:
        """Create + preallocate the cache file; resolve its DAX addresses."""
        if not isinstance(scm_fs, NovaFileSystem):
            raise ReproError(
                "the SCM cache needs a DAX-capable (NOVA) file system"
            )
        if scm_fs.exists(CACHE_FILE):
            scm_fs.unlink(CACHE_FILE)
        handle = scm_fs.create(CACHE_FILE)
        try:
            # preallocate: write zeros so every slot has a PM block
            zero = bytes(self.block_size)
            chunk_blocks = 256
            written = 0
            while written < self.capacity_blocks:
                n = min(chunk_blocks, self.capacity_blocks - written)
                scm_fs.write(handle, written * self.block_size, zero * n)
                written += n
            inode = scm_fs.inodes.get(handle.ino)
            addrs: List[int] = []
            for slot in range(self.capacity_blocks):
                dev_block = inode.blockmap.lookup(slot)
                if dev_block is None:
                    raise ReproError("cache preallocation left a hole")
                addrs.append(dev_block * self.block_size)
        finally:
            scm_fs.close(handle)
        return scm_fs.pm, addrs

    # -- lookups -----------------------------------------------------------

    def get(self, ino: int, file_block: int) -> Optional[bytes]:
        """Cached block contents, or None.  Hits are DAX loads."""
        self.clock.advance_ns(cal.CACHE_LOOKUP_NS)
        key = (ino, file_block)
        slot = self._slots.get(key)
        if slot is None:
            self.stats.add("miss")
            return None
        self._mglru.touch(key)
        self.clock.advance_ns(cal.CACHE_MGLRU_NS)
        self.stats.add("hit")
        return self._pm.load(self._slot_addrs[slot], self.block_size)

    def contains(self, ino: int, file_block: int) -> bool:
        """Membership probe with no charges or stats (batch-path planning)."""
        return (ino, file_block) in self._slots

    def span_cached(self, ino: int, first_block: int, count: int) -> int:
        """Length of the contiguous cached prefix of the span (no charges)."""
        slots = self._slots
        n = 0
        while n < count and (ino, first_block + n) in slots:
            n += 1
        return n

    def note_misses(self, count: int) -> None:
        """Account ``count`` lookup probes that missed (batch path).

        Timing-equivalent to ``count`` :meth:`get` calls returning None.
        """
        if count <= 0:
            return
        self.clock.advance_ns(count * cal.CACHE_LOOKUP_NS)
        self.stats.add("miss", count)

    def get_many(
        self, ino: int, first_block: int, count: int, out: bytearray, out_off: int
    ) -> None:
        """Fetch ``count`` consecutive cached blocks into ``out``.

        Every block must be cached (check with :meth:`span_cached` first).
        Timing-equivalent to ``count`` :meth:`get` calls: same MGLRU touch
        order and identical per-block lookup/load charges, but contiguous
        PM slot addresses coalesce into single :meth:`load_run` copies.
        """
        if count <= 0:
            return
        self.clock.advance_ns(count * (cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS))
        bs = self.block_size
        addrs = self._slot_addrs
        slots: List[int] = []
        for i in range(count):
            key = (ino, first_block + i)
            slot = self._slots[key]
            self._mglru.touch(key)
            slots.append(slot)
        self.stats.add("hit", count)
        i = 0
        pos = out_off
        while i < count:
            j = i + 1
            while j < count and addrs[slots[j]] == addrs[slots[j - 1]] + bs:
                j += 1
            data = self._pm.load_run(addrs[slots[i]], j - i, bs)
            out[pos : pos + len(data)] = data
            pos += len(data)
            i = j

    # -- fills / invalidation ----------------------------------------------------

    def put(self, ino: int, file_block: int, data: bytes) -> None:
        """Insert a (clean) block read from a slow tier."""
        if len(data) != self.block_size:
            raise ValueError("cache stores whole blocks")
        self.clock.advance_ns(
            cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS + cal.CACHE_SLOT_META_NS
        )
        key = (ino, file_block)
        slot = self._slots.get(key)
        if slot is None:
            for victim in self._mglru.insert(key):
                self._free_slots.append(self._slots.pop(victim))
                self.stats.add("evict")
            slot = self._free_slots.pop()
            self._slots[key] = slot
            self.stats.add("fill")
        addr = self._slot_addrs[slot]
        self._pm.store(addr, data)
        self._pm.flush_range(addr, len(data))

    def put_many(self, ino: int, first_block: int, data) -> None:
        """Insert consecutive (clean) blocks from block-aligned ``data``.

        Timing-equivalent to one :meth:`put` per block — MGLRU inserts and
        evictions run per key in ascending order, so victim sequence and
        slot assignment match the scalar path exactly — while the PM
        stores/flushes coalesce over contiguous slot addresses.
        """
        bs = self.block_size
        if len(data) == 0 or len(data) % bs:
            raise ValueError("cache stores whole blocks")
        count = len(data) // bs
        self.clock.advance_ns(
            count
            * (cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS + cal.CACHE_SLOT_META_NS)
        )
        slots: List[int] = []
        for i in range(count):
            key = (ino, first_block + i)
            slot = self._slots.get(key)
            if slot is None:
                for victim in self._mglru.insert(key):
                    self._free_slots.append(self._slots.pop(victim))
                    self.stats.add("evict")
                slot = self._free_slots.pop()
                self._slots[key] = slot
                self.stats.add("fill")
            slots.append(slot)
        src = memoryview(data)
        addrs = self._slot_addrs
        i = 0
        while i < count:
            j = i + 1
            while j < count and addrs[slots[j]] == addrs[slots[j - 1]] + bs:
                j += 1
            addr = addrs[slots[i]]
            self._pm.store_run(addr, src[i * bs : j * bs], bs)
            self._pm.flush_range(addr, (j - i) * bs, ops=j - i)
            i = j

    def invalidate(self, ino: int, file_block: int) -> bool:
        """Drop a block (called on writes so the cache never serves stale data)."""
        key = (ino, file_block)
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        self._mglru.remove(key)
        self._free_slots.append(slot)
        self.stats.add("invalidate")
        return True

    def invalidate_range(self, ino: int, first_block: int, count: int) -> int:
        """Drop every cached block of ``ino`` in [first_block, +count).

        Equivalent to calling :meth:`invalidate` per block in ascending
        order, but skips the per-block scan when the range dwarfs the
        cache's population.
        """
        if count <= 0:
            return 0
        end = first_block + count
        if len(self._slots) < count:
            targets = sorted(
                fb
                for (i, fb) in self._slots
                if i == ino and first_block <= fb < end
            )
        else:
            targets = [
                fb
                for fb in range(first_block, end)
                if (ino, fb) in self._slots
            ]
        for fb in targets:
            self.invalidate(ino, fb)
        return len(targets)

    def invalidate_file(self, ino: int) -> int:
        """Drop every cached block of a file (unlink/truncate)."""
        dropped = 0
        for key in [k for k in self._slots if k[0] == ino]:
            self.invalidate(key[0], key[1])
            dropped += 1
        return dropped

    # -- introspection -----------------------------------------------------------

    @property
    def cached_blocks(self) -> int:
        return len(self._slots)

    def hit_ratio(self) -> float:
        hits = self.stats.get("hit")
        total = hits + self.stats.get("miss")
        return hits / total if total else 0.0

    def check_invariants(self) -> None:
        self._mglru.check_invariants()
        assert len(self._slots) + len(self._free_slots) == self.capacity_blocks
        assert len(set(self._slots.values())) == len(self._slots)
        for key in self._slots:
            assert key in self._mglru
