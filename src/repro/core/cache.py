"""SCM cache manager (§2.5).

Mux uses a persistent-memory tier as a *shared* cache for the slower tiers
(the per-FS DRAM page caches cannot be shared across devices).  Per the
paper, the cache lives in **one preallocated cache file** on the SCM file
system, accessed through **DAX memory mapping** so cached reads bypass the
file-system call path entirely, and replacement uses Multi-generational
LRU.

The model does exactly that: at attach time it creates and preallocates
``/.mux_cache`` through the PM tier's file system (charging the real
allocation cost), resolves the file's device blocks once (the "mmap"), and
thereafter serves hits and fills with raw PM loads/stores plus the small
bookkeeping costs from :mod:`repro.core.calibration`.

Two optional modes (both default-off so the write-invalidate fingerprints
stay bit-identical):

* **write-back** (``write_back=True``): writes to cache-resident blocks
  update the DAX slot in place and mark the block dirty in a per-file
  :class:`~repro.core.intervals.BlockIntervalSet`; dirty runs are later
  destaged to the owning slow tier in coalesced batches via the
  ``destage_fn`` callback installed by the Mux layer (eviction, fsync,
  close, migration and the writeback budget all trigger it there).
* **scan resistance** (``scan_resist=True``): per-file sequential-stream
  detection lets large streaming read misses bypass the fill, so a scan
  cannot flush the hot set out of the MGLRU (the anti-thrash intent of the
  kernel's lru_gen).

A per-ino secondary index keeps :meth:`invalidate_file` and
:meth:`invalidate_range` O(blocks-of-the-file) instead of O(cache).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core import calibration as cal
from repro.core.intervals import BlockIntervalSet, Run, intersect_runs
from repro.core.mglru import MultiGenLru
from repro.devices.pm import PersistentMemoryDevice
from repro.errors import CrashTriggered, ReproError
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs.interface import FileSystem, OpenFlags

CACHE_FILE = "/.mux_cache"

CacheKey = Tuple[int, int]  # (mux ino, file block)

#: a cached/uncached segment of a span: (first_block, count, cached)
SpanRun = Tuple[int, int, bool]

#: destage callback installed by Mux: (ino, dirty runs) -> None.  Must
#: write the runs to the owning tier(s) and :meth:`mark_clean` what it
#: managed to persist.
DestageFn = Callable[[int, List[Run]], None]


class ScmCacheManager:
    """Shared block cache in a DAX-mapped file on the SCM tier."""

    def __init__(
        self,
        clock: SimClock,
        scm_fs: FileSystem,
        capacity_blocks: int,
        block_size: int,
        num_generations: int = 4,
        write_back: bool = False,
        scan_resist: bool = False,
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError("cache needs positive capacity")
        self.clock = clock
        self.block_size = block_size
        self.capacity_blocks = capacity_blocks
        self.write_back = write_back
        self.scan_resist = scan_resist
        self.stats = CounterSet()
        self._mglru: MultiGenLru[CacheKey] = MultiGenLru(
            capacity_blocks, num_generations
        )
        #: key -> slot index in the cache file
        self._slots: Dict[CacheKey, int] = {}
        self._free_slots: List[int] = list(range(capacity_blocks - 1, -1, -1))
        #: ino -> cached file blocks (secondary index for invalidation)
        self._by_ino: Dict[int, Set[int]] = {}
        #: ino -> dirty (written-back-pending) blocks; always a subset of
        #: the cached blocks of that ino
        self._dirty: Dict[int, BlockIntervalSet] = {}
        #: ino -> (expected next block, streak length) for scan detection
        self._streams: Dict[int, Tuple[int, int]] = {}
        #: installed by Mux once it can route destage writes to tiers
        self.destage_fn: Optional[DestageFn] = None
        #: installed by Mux: called with (ino, [(fb, count)]) whenever an
        #: absorbed write is dropped because its destage failed, so the
        #: loss can be latched on the inode (errseq) and reported by fsck
        self.on_lost: Optional[Callable[[int, List[Run]], None]] = None
        #: dirty intervals dropped by failed destages, for fsck reporting:
        #: ino -> [(file_block, count)]
        self._lost: Dict[int, List[Run]] = {}
        self._pm, self._slot_addrs = self._map_cache_file(scm_fs)

    def _map_cache_file(
        self, scm_fs: FileSystem
    ) -> Tuple[PersistentMemoryDevice, List[int]]:
        """Create + preallocate the cache file; resolve its DAX addresses."""
        if not isinstance(scm_fs, NovaFileSystem):
            raise ReproError(
                "the SCM cache needs a DAX-capable (NOVA) file system"
            )
        if scm_fs.exists(CACHE_FILE):
            scm_fs.unlink(CACHE_FILE)
        handle = scm_fs.create(CACHE_FILE)
        try:
            # preallocate: write zeros so every slot has a PM block.  The
            # chunk buffer is built once — per-iteration ``zero * n``
            # allocation used to dominate build_stack host time — and the
            # write calls (offsets and sizes) are unchanged, so the charged
            # simulated cost is identical.
            zero = bytes(self.block_size)
            chunk_blocks = 256
            chunk = zero * chunk_blocks
            written = 0
            while written < self.capacity_blocks:
                n = min(chunk_blocks, self.capacity_blocks - written)
                buf = chunk if n == chunk_blocks else zero * n
                scm_fs.write(handle, written * self.block_size, buf)
                written += n
            inode = scm_fs.inodes.get(handle.ino)
            addrs: List[int] = []
            for slot in range(self.capacity_blocks):
                dev_block = inode.blockmap.lookup(slot)
                if dev_block is None:
                    raise ReproError("cache preallocation left a hole")
                addrs.append(dev_block * self.block_size)
        finally:
            scm_fs.close(handle)
        return scm_fs.pm, addrs

    # -- lookups -----------------------------------------------------------

    def get(self, ino: int, file_block: int) -> Optional[bytes]:
        """Cached block contents, or None.  Hits are DAX loads."""
        self.clock.advance_ns(cal.CACHE_LOOKUP_NS)
        key = (ino, file_block)
        slot = self._slots.get(key)
        if slot is None:
            self.stats.add("miss")
            return None
        self._mglru.touch(key)
        self.clock.advance_ns(cal.CACHE_MGLRU_NS)
        self.stats.add("hit")
        return self._pm.load(self._slot_addrs[slot], self.block_size)

    def contains(self, ino: int, file_block: int) -> bool:
        """Membership probe with no charges or stats (batch-path planning)."""
        return (ino, file_block) in self._slots

    def span_cached(self, ino: int, first_block: int, count: int) -> List[SpanRun]:
        """Run-length-encoded cached/uncached layout of a span (no charges).

        Returns ``[(start_block, count, cached), ...]`` covering exactly
        ``[first_block, first_block + count)`` in order, so the read path
        can serve interior cached runs rather than falling back to
        per-block probing after the first gap.
        """
        out: List[SpanRun] = []
        if count <= 0:
            return out
        slots = self._slots
        end = first_block + count
        run_start = first_block
        run_cached = (ino, first_block) in slots
        for fb in range(first_block + 1, end):
            cached = (ino, fb) in slots
            if cached != run_cached:
                out.append((run_start, fb - run_start, run_cached))
                run_start = fb
                run_cached = cached
        out.append((run_start, end - run_start, run_cached))
        return out

    def note_misses(self, count: int) -> None:
        """Account ``count`` lookup probes that missed (batch path).

        Timing-equivalent to ``count`` :meth:`get` calls returning None.
        """
        if count <= 0:
            return
        self.clock.advance_ns(count * cal.CACHE_LOOKUP_NS)
        self.stats.add("miss", count)

    def get_many(
        self, ino: int, first_block: int, count: int, out: bytearray, out_off: int
    ) -> None:
        """Fetch ``count`` consecutive cached blocks into ``out``.

        Every block must be cached (check with :meth:`span_cached` first).
        Timing-equivalent to ``count`` :meth:`get` calls: same MGLRU touch
        order and identical per-block lookup/load charges, but contiguous
        PM slot addresses coalesce into single :meth:`load_run` copies.
        """
        if count <= 0:
            return
        self.clock.advance_ns(count * (cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS))
        bs = self.block_size
        addrs = self._slot_addrs
        slots: List[int] = []
        for i in range(count):
            key = (ino, first_block + i)
            slot = self._slots[key]
            self._mglru.touch(key)
            slots.append(slot)
        self.stats.add("hit", count)
        i = 0
        pos = out_off
        while i < count:
            j = i + 1
            while j < count and addrs[slots[j]] == addrs[slots[j - 1]] + bs:
                j += 1
            data = self._pm.load_run(addrs[slots[i]], j - i, bs)
            out[pos : pos + len(data)] = data
            pos += len(data)
            i = j

    # -- scan-resistant admission ------------------------------------------

    def observe_span(self, ino: int, first_block: int, count: int) -> None:
        """Update per-file stream state after a read span completes.

        Called at the *end* of the read path so admission decisions for a
        span use the pre-span stream state only.
        """
        if not self.scan_resist or count <= 0:
            return
        prev = self._streams.get(ino)
        if prev is not None and prev[0] == first_block:
            streak = prev[1] + count
        else:
            streak = count
        self._streams[ino] = (first_block + count, streak)

    def should_admit(self, ino: int, first_block: int, count: int) -> bool:
        """Whether a miss run should be filled into the cache (no charges).

        False only when scan resistance is on, the file's sequential
        streak has reached ``SCAN_RESIST_STREAM_BLOCKS``, the run
        continues that stream, and the run is at least
        ``SCAN_RESIST_MIN_RUN`` blocks (large streaming reads bypass the
        fill; small point reads still cache).
        """
        if not self.scan_resist:
            return True
        prev = self._streams.get(ino)
        if (
            prev is not None
            and prev[0] == first_block
            and prev[1] >= cal.SCAN_RESIST_STREAM_BLOCKS
            and count >= cal.SCAN_RESIST_MIN_RUN
        ):
            self.stats.add("admit_bypass", count)
            return False
        return True

    # -- fills / invalidation ----------------------------------------------------

    def _claim_slot(self, key: CacheKey) -> int:
        """MGLRU-insert ``key`` (destaging/evicting victims) and assign a slot."""
        for victim in self._mglru.insert(key):
            self._release(victim)
        slot = self._free_slots.pop()
        self._slots[key] = slot
        self._by_ino.setdefault(key[0], set()).add(key[1])
        self.stats.add("fill")
        return slot

    def _release(self, victim: CacheKey) -> None:
        """Free an evicted key's slot, destaging it first if dirty."""
        v_ino, v_fb = victim
        if self.is_dirty(v_ino, v_fb):
            if self.destage_fn is not None:
                try:
                    self.destage_fn(v_ino, [(v_fb, 1)])
                except CrashTriggered:
                    raise  # power loss is not a destage failure to absorb
                except ReproError:
                    pass
            if self.is_dirty(v_ino, v_fb):
                # destage failed (offline tier, no callback): the block is
                # being evicted, so the absorbed write is lost — modeled
                # data loss under cache pressure plus tier failure.  The
                # interval is recorded (not just counted) so fsck can
                # report exactly which bytes vanished, and the mux latches
                # it on the inode's errseq for once-per-fd EIO reporting.
                self.mark_clean(v_ino, v_fb, 1)
                self.stats.add("destage_lost")
                self._lost.setdefault(v_ino, []).append((v_fb, 1))
                if self.on_lost is not None:
                    self.on_lost(v_ino, [(v_fb, 1)])
        self._free_slots.append(self._slots.pop(victim))
        self._index_remove(v_ino, v_fb)
        self.stats.add("evict")

    def _index_remove(self, ino: int, file_block: int) -> None:
        blocks = self._by_ino.get(ino)
        if blocks is not None:
            blocks.discard(file_block)
            if not blocks:
                del self._by_ino[ino]

    def put(self, ino: int, file_block: int, data: bytes) -> None:
        """Insert a (clean) block read from a slow tier."""
        if len(data) != self.block_size:
            raise ValueError("cache stores whole blocks")
        self.clock.advance_ns(
            cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS + cal.CACHE_SLOT_META_NS
        )
        key = (ino, file_block)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._claim_slot(key)
        addr = self._slot_addrs[slot]
        self._pm.store(addr, data)
        self._pm.flush_range(addr, len(data))

    def put_many(self, ino: int, first_block: int, data) -> None:
        """Insert consecutive (clean) blocks from block-aligned ``data``.

        Timing-equivalent to one :meth:`put` per block — MGLRU inserts and
        evictions run per key in ascending order, so victim sequence and
        slot assignment match the scalar path exactly — while the PM
        stores/flushes coalesce over contiguous slot addresses.
        """
        bs = self.block_size
        if len(data) == 0 or len(data) % bs:
            raise ValueError("cache stores whole blocks")
        count = len(data) // bs
        self.clock.advance_ns(
            count
            * (cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS + cal.CACHE_SLOT_META_NS)
        )
        slots: List[int] = []
        for i in range(count):
            key = (ino, first_block + i)
            slot = self._slots.get(key)
            if slot is None:
                slot = self._claim_slot(key)
            slots.append(slot)
        src = memoryview(data)
        addrs = self._slot_addrs
        i = 0
        while i < count:
            j = i + 1
            while j < count and addrs[slots[j]] == addrs[slots[j - 1]] + bs:
                j += 1
            addr = addrs[slots[i]]
            self._pm.store_run(addr, src[i * bs : j * bs], bs)
            self._pm.flush_range(addr, (j - i) * bs, ops=j - i)
            i = j

    # -- write-back --------------------------------------------------------

    def write_hit(
        self, ino: int, file_block: int, data: bytes, offset: int = 0
    ) -> bool:
        """Absorb a write into a cache-resident block (write-back mode).

        Updates the DAX slot in place (a partial block writes only its
        byte range) and marks the whole block dirty.  Returns False when
        write-back is off or the block is not cached — the caller must
        then take the write-invalidate path.
        """
        if not self.write_back:
            return False
        key = (ino, file_block)
        slot = self._slots.get(key)
        if slot is None:
            return False
        if offset < 0 or offset + len(data) > self.block_size:
            raise ValueError("write_hit must stay inside one block")
        self.clock.advance_ns(
            cal.CACHE_LOOKUP_NS + cal.CACHE_MGLRU_NS + cal.CACHE_DIRTY_META_NS
        )
        self._mglru.touch(key)
        addr = self._slot_addrs[slot] + offset
        self._pm.store(addr, bytes(data))
        self._pm.flush_range(addr, len(data))
        self._dirty.setdefault(ino, BlockIntervalSet()).add(file_block)
        self.stats.add("write_hit")
        return True

    def is_dirty(self, ino: int, file_block: int) -> bool:
        dirty = self._dirty.get(ino)
        return dirty is not None and file_block in dirty

    def dirty_runs(self, ino: int) -> List[Run]:
        """The file's dirty blocks as sorted (start, length) runs."""
        dirty = self._dirty.get(ino)
        return dirty.runs() if dirty is not None else []

    def dirty_runs_in(self, ino: int, first_block: int, count: int) -> List[Run]:
        """Dirty runs of ``ino`` intersected with ``[first_block, +count)``."""
        dirty = self._dirty.get(ino)
        if dirty is None or count <= 0:
            return []
        return intersect_runs(dirty.runs(), [(first_block, count)])

    def dirty_files(self) -> List[int]:
        """Inos with at least one dirty block, ascending."""
        return sorted(self._dirty)

    @property
    def dirty_block_count(self) -> int:
        return sum(len(d) for d in self._dirty.values())

    def mark_clean(self, ino: int, first_block: int, count: int) -> None:
        """Clear dirty marks after a destage persisted the blocks."""
        dirty = self._dirty.get(ino)
        if dirty is None:
            return
        dirty.remove_range(first_block, count)
        if not dirty:
            del self._dirty[ino]

    def load_for_destage(self, ino: int, first_block: int, count: int) -> bytes:
        """Read ``count`` consecutive cached blocks for writeback.

        Charges per-block lookups plus coalesced PM loads, but does *not*
        touch the MGLRU or count hits: a destage is bookkeeping traffic,
        not an access that should renew the blocks' recency.
        """
        self.clock.advance_ns(count * cal.CACHE_LOOKUP_NS)
        bs = self.block_size
        addrs = self._slot_addrs
        slots = [self._slots[(ino, first_block + i)] for i in range(count)]
        out = bytearray(count * bs)
        i = 0
        pos = 0
        while i < count:
            j = i + 1
            while j < count and addrs[slots[j]] == addrs[slots[j - 1]] + bs:
                j += 1
            data = self._pm.load_run(addrs[slots[i]], j - i, bs)
            out[pos : pos + len(data)] = data
            pos += len(data)
            i = j
        return bytes(out)

    def note_destage(self, runs: int, blocks: int) -> None:
        """Record a completed destage batch (counters only, no charges)."""
        if runs:
            self.stats.add("destage_runs", runs)
        if blocks:
            self.stats.add("destaged_blocks", blocks)

    def lost_intervals(self, ino: Optional[int] = None) -> List[Tuple[int, int, int]]:
        """``(ino, file_block, count)`` intervals dropped by failed destages.

        The ledger survives until :meth:`clear_lost` (or the file's
        invalidation), so fsck can report the loss after recovery instead
        of silently repairing around it.
        """
        if ino is not None:
            return [(ino, fb, n) for fb, n in self._lost.get(ino, [])]
        return [
            (i, fb, n)
            for i in sorted(self._lost)
            for fb, n in self._lost[i]
        ]

    def clear_lost(self, ino: Optional[int] = None) -> None:
        """Acknowledge reported losses (fsck's reconcile does this)."""
        if ino is None:
            self._lost.clear()
        else:
            self._lost.pop(ino, None)

    # -- invalidation ------------------------------------------------------

    def invalidate(self, ino: int, file_block: int) -> bool:
        """Drop a block (called on writes so the cache never serves stale data).

        A dirty mark on the block is dropped with it: invalidation means
        the backing range itself is being rewritten, truncated or punched,
        so the absorbed data is obsolete, not lost.
        """
        key = (ino, file_block)
        slot = self._slots.pop(key, None)
        if slot is None:
            return False
        self._mglru.remove(key)
        self._free_slots.append(slot)
        self._index_remove(ino, file_block)
        dirty = self._dirty.get(ino)
        if dirty is not None:
            dirty.remove_range(file_block, 1)
            if not dirty:
                del self._dirty[ino]
        self.stats.add("invalidate")
        return True

    def invalidate_range(self, ino: int, first_block: int, count: int) -> int:
        """Drop every cached block of ``ino`` in [first_block, +count).

        Equivalent to calling :meth:`invalidate` per block in ascending
        order; the per-ino index makes it O(blocks-of-the-file) however
        large the cache population or the range.
        """
        if count <= 0:
            return 0
        blocks = self._by_ino.get(ino)
        if not blocks:
            return 0
        end = first_block + count
        if len(blocks) < count:
            targets = sorted(fb for fb in blocks if first_block <= fb < end)
        else:
            targets = [fb for fb in range(first_block, end) if fb in blocks]
        for fb in targets:
            self.invalidate(ino, fb)
        return len(targets)

    def invalidate_file(self, ino: int) -> int:
        """Drop every cached block of a file (unlink/truncate)."""
        blocks = self._by_ino.get(ino)
        self._lost.pop(ino, None)  # dead file: its lost intervals are moot
        if not blocks:
            self._streams.pop(ino, None)
            self._dirty.pop(ino, None)  # defensive: orphaned marks die too
            return 0
        targets = sorted(blocks)
        for fb in targets:
            self.invalidate(ino, fb)
        self._streams.pop(ino, None)
        return len(targets)

    # -- introspection -----------------------------------------------------------

    @property
    def cached_blocks(self) -> int:
        return len(self._slots)

    def hit_ratio(self) -> float:
        hits = self.stats.get("hit")
        total = hits + self.stats.get("miss")
        return hits / total if total else 0.0

    def cache_counters(self) -> Dict[str, int]:
        """Stats snapshot plus the current dirty-block gauge."""
        counters = dict(self.stats.snapshot())
        counters["dirty_blocks"] = self.dirty_block_count
        return counters

    def check_invariants(self) -> None:
        self._mglru.check_invariants()
        assert len(self._slots) + len(self._free_slots) == self.capacity_blocks
        assert len(set(self._slots.values())) == len(self._slots)
        for key in self._slots:
            assert key in self._mglru
        # the per-ino index is exactly the slot keys, grouped
        indexed = {
            (ino, fb) for ino, blocks in self._by_ino.items() for fb in blocks
        }
        assert indexed == set(self._slots)
        assert all(self._by_ino.values()), "index keeps no empty entries"
        # dirty blocks are cache-resident and only exist in write-back mode
        for ino, dirty in self._dirty.items():
            assert dirty, "no empty dirty sets"
            assert self.write_back
            cached = self._by_ino.get(ino, set())
            for fb in dirty:
                assert fb in cached, f"dirty block ({ino}, {fb}) not cached"
