"""Disjoint block-interval sets and run-list algebra.

The OCC synchronizer (§2.4) reasons about *which blocks* were written or
moved, and real migrations touch long contiguous extents.  Representing
those block sets as sorted, disjoint, half-open ``[start, end)`` intervals
(the same technique the PM device uses for dirty-line tracking) turns the
per-block bookkeeping — dirty-set recording on the write path, clean-set
computation, retry lists — into O(runs) work instead of O(blocks).

Everything here is host-side bookkeeping: no simulated-clock charges.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: a run as (start_block, length)
Run = Tuple[int, int]
#: an interval as half-open (start, end)
Interval = Tuple[int, int]


class BlockIntervalSet:
    """A mutable set of block numbers stored as disjoint intervals.

    Drop-in for the ``Set[int]`` previously used for
    ``dirty_during_migration``: supports ``add``/``update``/``clear``,
    truthiness, iteration and equality against plain sets, while keeping
    interval-level access (:meth:`runs`) for the O(runs) OCC path.
    """

    __slots__ = ("_ivals",)

    def __init__(self, blocks: Iterable[int] = ()) -> None:
        self._ivals: List[Interval] = []
        for b in blocks:
            self.add(b)

    # -- mutation ---------------------------------------------------------

    def add(self, block: int) -> None:
        self.add_range(block, 1)

    def add_range(self, start: int, count: int) -> None:
        """Insert ``[start, start+count)``, merging with neighbours."""
        if count <= 0:
            return
        end = start + count
        ivals = self._ivals
        if not ivals:
            ivals.append((start, end))
            return
        # common case on sequential write streams: extend/append at the tail
        last_start, last_end = ivals[-1]
        if start >= last_start:
            if start > last_end:
                ivals.append((start, end))
            elif end > last_end:
                ivals[-1] = (last_start, end)
            return
        # general case: binary search for the insertion point, then merge
        lo, hi = 0, len(ivals)
        while lo < hi:
            mid = (lo + hi) // 2
            if ivals[mid][1] < start:
                lo = mid + 1
            else:
                hi = mid
        first = lo
        new_start, new_end = start, end
        last = first
        while last < len(ivals) and ivals[last][0] <= new_end:
            new_start = min(new_start, ivals[last][0])
            new_end = max(new_end, ivals[last][1])
            last += 1
        ivals[first:last] = [(new_start, new_end)]

    def update(self, blocks: Iterable[int]) -> None:
        for b in blocks:
            self.add(b)

    def discard(self, block: int) -> None:
        self.remove_range(block, 1)

    def remove_range(self, start: int, count: int) -> None:
        """Remove ``[start, start+count)``, splitting intervals as needed."""
        if count <= 0:
            return
        end = start + count
        ivals = self._ivals
        lo, hi = 0, len(ivals)
        while lo < hi:
            mid = (lo + hi) // 2
            if ivals[mid][1] <= start:
                lo = mid + 1
            else:
                hi = mid
        first = lo
        last = first
        replacement: List[Interval] = []
        while last < len(ivals) and ivals[last][0] < end:
            s, e = ivals[last]
            if s < start:
                replacement.append((s, start))
            if e > end:
                replacement.append((end, e))
            last += 1
        if last > first:
            ivals[first:last] = replacement

    def clear(self) -> None:
        self._ivals.clear()

    # -- queries ----------------------------------------------------------

    def runs(self) -> List[Run]:
        """The content as sorted, disjoint (start, length) runs."""
        return [(s, e - s) for s, e in self._ivals]

    def intervals(self) -> List[Interval]:
        return list(self._ivals)

    def __contains__(self, block: int) -> bool:
        ivals = self._ivals
        lo, hi = 0, len(ivals)
        while lo < hi:
            mid = (lo + hi) // 2
            if ivals[mid][1] <= block:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(ivals) and ivals[lo][0] <= block

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __len__(self) -> int:
        return sum(e - s for s, e in self._ivals)

    def __iter__(self) -> Iterator[int]:
        for s, e in self._ivals:
            yield from range(s, e)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BlockIntervalSet):
            return self._ivals == other._ivals
        if isinstance(other, (set, frozenset)):
            return len(self) == len(other) and all(b in self for b in other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"BlockIntervalSet({self.runs()!r})"


# -- run-list algebra (inputs/outputs sorted, disjoint, merged) ------------


def normalize_runs(runs: Iterable[Run]) -> List[Run]:
    """Sort and merge overlapping/adjacent (start, length) runs."""
    items = sorted((s, s + n) for s, n in runs if n > 0)
    merged: List[Interval] = []
    for s, e in items:
        if merged and s <= merged[-1][1]:
            if e > merged[-1][1]:
                merged[-1] = (merged[-1][0], e)
        else:
            merged.append((s, e))
    return [(s, e - s) for s, e in merged]


def runs_length(runs: Iterable[Run]) -> int:
    """Total number of blocks covered by a run list."""
    return sum(n for _, n in runs)


def subtract_runs(a: List[Run], b: List[Run]) -> List[Run]:
    """Blocks in ``a`` but not in ``b`` (both normalized)."""
    if not b:
        return list(a)
    out: List[Run] = []
    j = 0
    for s, n in a:
        e = s + n
        cur = s
        while j < len(b) and b[j][0] + b[j][1] <= cur:
            j = j + 1
        k = j
        while cur < e:
            if k >= len(b) or b[k][0] >= e:
                out.append((cur, e - cur))
                break
            bs, bn = b[k]
            be = bs + bn
            if bs > cur:
                out.append((cur, bs - cur))
            cur = max(cur, be)
            k += 1
    return out


def intersect_runs(a: List[Run], b: List[Run]) -> List[Run]:
    """Blocks in both ``a`` and ``b`` (both normalized)."""
    out: List[Run] = []
    i = j = 0
    while i < len(a) and j < len(b):
        a_s, a_n = a[i]
        b_s, b_n = b[j]
        a_e, b_e = a_s + a_n, b_s + b_n
        s = max(a_s, b_s)
        e = min(a_e, b_e)
        if s < e:
            out.append((s, e - s))
        if a_e <= b_e:
            i += 1
        else:
            j += 1
    return out
