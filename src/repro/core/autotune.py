"""Configuration search for Mux (§4, "Configuring Mux").

"As the Mux design can easily integrate many existing file systems, an
emerging problem is how to find the best configuration of file systems
for a given workload or a given set of storage devices."

Because the whole stack is a deterministic simulation, a configuration
can be *evaluated* rather than guessed: :class:`AutoTuner` replays the
same workload against a fresh stack per candidate configuration and ranks
them by simulated performance.  This is exactly the methodology a real
deployment would use with a trace replayer — here it completes in
milliseconds of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policy import make_policy

#: a workload: takes (FileSystem-like, SimClock), returns an object with
#: ``ops_per_sec`` (the macro workloads fit directly)
WorkloadFn = Callable[..., object]


@dataclass(frozen=True)
class Configuration:
    """One candidate Mux configuration."""

    name: str
    policy: str = "lru"
    policy_kwargs: Dict[str, object] = field(default_factory=dict, hash=False)
    enable_cache: bool = True
    tiers: Sequence[str] = ("pm", "ssd", "hdd")

    def build(self, capacities: Optional[Dict[str, int]] = None):
        # imported lazily: repro.stack itself imports repro.core
        from repro.stack import build_stack

        return build_stack(
            tiers=list(self.tiers),
            capacities=capacities,
            policy=make_policy(self.policy, **self.policy_kwargs),
            enable_cache=self.enable_cache,
        )


#: a reasonable default search space over the built-in policies
DEFAULT_CANDIDATES: List[Configuration] = [
    Configuration("lru+cache", policy="lru"),
    Configuration("lru", policy="lru", enable_cache=False),
    Configuration(
        "lru-aggressive",
        policy="lru",
        policy_kwargs={"high_watermark": 0.6, "low_watermark": 0.4},
    ),
    Configuration("tpfs", policy="tpfs"),
    Configuration("hotcold", policy="hotcold"),
    Configuration("pin-fastest", policy="pinned", policy_kwargs={"tier_id": 0}),
    Configuration("two-tier-pm-ssd", policy="lru", tiers=("pm", "ssd")),
]


@dataclass
class Evaluation:
    configuration: Configuration
    ops_per_sec: float
    simulated_seconds: float

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"{self.configuration.name:18s} {self.ops_per_sec:12,.0f} ops/s "
            f"({self.simulated_seconds * 1e3:8.2f} ms simulated)"
        )


class AutoTuner:
    """Evaluates candidate configurations against one workload."""

    def __init__(
        self,
        workload: WorkloadFn,
        candidates: Optional[List[Configuration]] = None,
        capacities: Optional[Dict[str, int]] = None,
        settle: bool = True,
        **workload_kwargs: object,
    ) -> None:
        self.workload = workload
        self.candidates = (
            list(candidates) if candidates is not None else list(DEFAULT_CANDIDATES)
        )
        self.capacities = capacities
        self.settle = settle
        self.workload_kwargs = workload_kwargs

    def evaluate(self, configuration: Configuration) -> Evaluation:
        """Run the workload on a fresh stack built from ``configuration``.

        The policy's background maintenance runs as part of the evaluation
        (it is part of the configuration's cost), and the score counts the
        whole simulated duration including it.
        """
        stack = configuration.build(self.capacities)
        start = stack.clock.now_ns
        result = self.workload(stack.mux, stack.clock, **self.workload_kwargs)
        if self.settle:
            stack.mux.maintain()
        elapsed = (stack.clock.now_ns - start) / 1e9
        operations = getattr(result, "operations", None)
        if operations is not None and elapsed > 0:
            ops = operations / elapsed  # includes maintenance time
        else:
            ops = getattr(result, "ops_per_sec", 0.0) or (
                1.0 / elapsed if elapsed else 0.0
            )
        return Evaluation(configuration, float(ops), elapsed)

    def run(self) -> List[Evaluation]:
        """Evaluate every candidate; returns results best-first."""
        evaluations = [self.evaluate(c) for c in self.candidates]
        evaluations.sort(key=lambda e: e.ops_per_sec, reverse=True)
        return evaluations

    def best(self) -> Evaluation:
        return self.run()[0]
