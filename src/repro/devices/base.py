"""Base class for simulated storage devices.

A device stores real bytes (so file-system correctness is end-to-end
testable) and charges simulated time to the shared :class:`SimClock`
according to its :class:`DeviceProfile`.  Only blocks that were actually
written are materialized; unwritten blocks read as zeros, which also gives
the sparse-file behaviour the native file systems rely on.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.devices.profile import DeviceProfile
from repro.errors import DeviceError
from repro.sim.clock import SimClock
from repro.sim.stats import DeviceStats

DEFAULT_BLOCK_SIZE = 4096


class Device:
    """A simulated block device backed by an in-memory sparse block store."""

    def __init__(
        self,
        name: str,
        profile: DeviceProfile,
        capacity_bytes: int,
        clock: SimClock,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if block_size <= 0 or capacity_bytes % block_size:
            raise ValueError("capacity must be a multiple of block size")
        self.name = name
        self.profile = profile
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.num_blocks = capacity_bytes // block_size
        self.clock = clock
        self.stats = DeviceStats()
        self._blocks: Dict[int, bytes] = {}
        self._zero_block = bytes(block_size)

    # -- bounds ------------------------------------------------------------

    def _check_range(self, block_no: int, count: int) -> None:
        if count <= 0:
            raise DeviceError(f"{self.name}: non-positive block count {count}")
        if block_no < 0 or block_no + count > self.num_blocks:
            raise DeviceError(
                f"{self.name}: blocks [{block_no}, {block_no + count}) out of "
                f"range (device has {self.num_blocks} blocks)"
            )

    # -- timing hooks (overridden per device type) ---------------------------

    def _access_cost_ns(self, block_no: int, nbytes: int, *, write: bool) -> int:
        """Latency of one contiguous access starting at ``block_no``."""
        latency = (
            self.profile.write_latency_ns if write else self.profile.read_latency_ns
        )
        return latency + self.profile.transfer_ns(nbytes, write=write)

    # -- block I/O -----------------------------------------------------------

    def read_blocks(self, block_no: int, count: int = 1) -> bytes:
        """Read ``count`` contiguous blocks, charging simulated time."""
        self._check_range(block_no, count)
        nbytes = count * self.block_size
        cost = self._access_cost_ns(block_no, nbytes, write=False)
        self.clock.advance_ns(cost)
        self.stats.record_read(nbytes, cost)
        parts = [
            self._blocks.get(bno, self._zero_block)
            for bno in range(block_no, block_no + count)
        ]
        return b"".join(parts)

    def write_blocks(self, block_no: int, data: bytes) -> None:
        """Write whole blocks starting at ``block_no``."""
        if len(data) == 0 or len(data) % self.block_size:
            raise DeviceError(
                f"{self.name}: write size {len(data)} is not block aligned"
            )
        count = len(data) // self.block_size
        self._check_range(block_no, count)
        cost = self._access_cost_ns(block_no, len(data), write=True)
        self.clock.advance_ns(cost)
        self.stats.record_write(len(data), cost)
        for i in range(count):
            chunk = data[i * self.block_size : (i + 1) * self.block_size]
            self._blocks[block_no + i] = bytes(chunk)

    def discard_block(self, block_no: int) -> None:
        """Drop a block's contents (TRIM-style); it reads back as zeros."""
        self._check_range(block_no, 1)
        self._blocks.pop(block_no, None)

    def flush(self) -> None:
        """Drain any volatile device buffer.  No-op for the base device."""

    # -- introspection ---------------------------------------------------------

    @property
    def materialized_blocks(self) -> int:
        """Number of blocks holding real data (for space accounting tests)."""
        return len(self._blocks)

    def peek_block(self, block_no: int) -> Optional[bytes]:
        """Read block contents without charging time (test/debug helper)."""
        self._check_range(block_no, 1)
        return self._blocks.get(block_no)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"capacity={self.capacity_bytes}, block_size={self.block_size})"
        )
