"""Base class for simulated storage devices.

A device stores real bytes (so file-system correctness is end-to-end
testable) and charges simulated time to the shared :class:`SimClock`
according to its :class:`DeviceProfile`.  Only blocks that were actually
written are materialized; unwritten blocks read as zeros, which also gives
the sparse-file behaviour the native file systems rely on.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.devices.profile import DeviceProfile
from repro.errors import DeviceError
from repro.sim.clock import SimClock
from repro.sim.stats import DeviceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devices.faults import FaultInjector

DEFAULT_BLOCK_SIZE = 4096

#: arena granularity: blocks per lazily-allocated backing chunk (2 MiB of
#: data per chunk at the default 4 KiB block size)
ARENA_CHUNK_BLOCKS = 512


class DeviceTimeline:
    """Per-device completion-time bookkeeping for the parallel I/O engine.

    Each device owns ``queue_depth`` internal channels (NVMe queue pairs,
    interleaved PM DIMM lanes, or the single HDD spindle), each with its
    own ``busy_until`` horizon.  A request submitted at time T begins on
    the least-busy eligible channel at ``max(T, busy_until)`` and
    completes ``cost`` later.  Background work (migration copies, destage
    batches) is restricted to a reserved tail quarter of the channels, so
    it delays foreground requests only when the device is genuinely
    saturated; on a single-channel device both classes share the spindle.

    Ties are broken by channel index and requests are booked in submit
    order, so the whole schedule is a pure function of the op sequence —
    determinism survives.

    With a saturation knee configured (``knee_depth > 0``), service time
    inflates convexly once the backlog at submit time reaches the knee:
    ``cost * (1 + knee_penalty * excess**2)`` where ``excess`` counts
    requests at or past the threshold.  With the knee disabled (the
    default) the flat per-channel model is preserved bit-for-bit,
    including the :meth:`snapshot` keys that feed golden fingerprints.
    """

    __slots__ = (
        "nchannels",
        "busy_until",
        "_bg_channels",
        "_inflight",
        "foreground_ops",
        "background_ops",
        "wait_ns",
        "busy_ns",
        "max_queued",
        "knee_depth",
        "knee_penalty",
        "knee_ops",
        "knee_extra_ns",
    )

    def __init__(
        self, nchannels: int, knee_depth: int = 0, knee_penalty: float = 0.0
    ) -> None:
        self.nchannels = max(1, nchannels)
        self.busy_until = [0] * self.nchannels
        nbg = max(1, self.nchannels // 4)
        self._bg_channels = (
            tuple(range(self.nchannels))
            if self.nchannels == 1
            else tuple(range(self.nchannels - nbg, self.nchannels))
        )
        #: completion times of requests still in flight at the last submit
        self._inflight: list = []
        self.foreground_ops = 0
        self.background_ops = 0
        #: total time requests spent queued behind a busy channel
        self.wait_ns = 0
        #: total channel service time booked (for utilization gauges)
        self.busy_ns = 0
        #: deepest backlog seen at any submit instant (incl. the new request)
        self.max_queued = 0
        self.knee_depth = knee_depth
        self.knee_penalty = knee_penalty
        #: requests whose service time the knee inflated / total added ns
        self.knee_ops = 0
        self.knee_extra_ns = 0

    def acquire(self, start_ns: int, cost_ns: int, background: bool = False):
        """Book one request; returns ``(begin_ns, complete_ns)``."""
        if self.knee_depth > 0:
            self._inflight = [c for c in self._inflight if c > start_ns]
            backlog = len(self._inflight)
            if backlog >= self.knee_depth:
                excess = backlog - self.knee_depth + 1
                inflated = round(cost_ns * (1.0 + self.knee_penalty * excess * excess))
                self.knee_ops += 1
                self.knee_extra_ns += inflated - cost_ns
                cost_ns = inflated
        channels = self._bg_channels if background else range(self.nchannels)
        best = -1
        best_free = 0
        for ch in channels:
            free = self.busy_until[ch]
            if best < 0 or free < best_free:
                best, best_free = ch, free
        begin = start_ns if start_ns > best_free else best_free
        complete = begin + cost_ns
        self.busy_until[best] = complete
        self.wait_ns += begin - start_ns
        self.busy_ns += cost_ns
        if background:
            self.background_ops += 1
        else:
            self.foreground_ops += 1
        self._inflight = [c for c in self._inflight if c > start_ns]
        self._inflight.append(complete)
        if len(self._inflight) > self.max_queued:
            self.max_queued = len(self._inflight)
        return begin, complete

    def queued_at(self, now_ns: int) -> int:
        """Requests still in flight at ``now_ns`` (pure; does not prune).

        The backlog signal the pressure monitor samples: completions
        booked past ``now_ns`` are work the device still owes.
        """
        count = 0
        for complete in self._inflight:
            if complete > now_ns:
                count += 1
        return count

    def utilization(self, now_ns: int) -> float:
        """Fraction of total channel-time spent servicing requests."""
        if now_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / (now_ns * self.nchannels))

    def snapshot(self) -> Dict[str, int]:
        """Queue/utilization gauges (deterministic, fingerprint-safe).

        Knee gauges appear only when the knee is configured, so goldens
        recorded under the flat model compare unchanged.
        """
        snap = {
            "channels": self.nchannels,
            "fg_ops": self.foreground_ops,
            "bg_ops": self.background_ops,
            "wait_ns": self.wait_ns,
            "busy_ns": self.busy_ns,
            "max_queued": self.max_queued,
        }
        if self.knee_depth > 0:
            snap["knee_ops"] = self.knee_ops
            snap["knee_extra_ns"] = self.knee_extra_ns
        return snap


class Device:
    """A simulated block device backed by a chunked bytearray arena.

    The store is sparse at two levels: backing chunks are allocated lazily
    on first write, and a per-chunk presence bitmask tracks which blocks
    were actually materialized (unwritten blocks read as zeros, which the
    native file systems rely on for sparse files).  Keeping runs of blocks
    contiguous in one ``bytearray`` makes multi-block reads/writes single
    slice operations instead of per-block dict lookups.
    """

    def __init__(
        self,
        name: str,
        profile: DeviceProfile,
        capacity_bytes: int,
        clock: SimClock,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if block_size <= 0 or capacity_bytes % block_size:
            raise ValueError("capacity must be a multiple of block size")
        self.name = name
        self.profile = profile
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.num_blocks = capacity_bytes // block_size
        self.clock = clock
        self.stats = DeviceStats()
        self.timeline = DeviceTimeline(
            profile.queue_depth,
            knee_depth=profile.knee_depth,
            knee_penalty=profile.knee_penalty,
        )
        self._chunk_blocks = ARENA_CHUNK_BLOCKS
        self._chunk_bytes = self._chunk_blocks * block_size
        self._chunks: Dict[int, bytearray] = {}
        self._present: Dict[int, int] = {}
        self._materialized = 0
        self._zero_block = bytes(block_size)
        #: optional fault schedule; None keeps the healthy path branch-free
        self.faults: Optional["FaultInjector"] = None

    def set_fault_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Attach (or detach, with None) a deterministic fault schedule."""
        self.faults = injector

    # -- bounds ------------------------------------------------------------

    def _check_range(self, block_no: int, count: int) -> None:
        if count <= 0:
            raise DeviceError(f"{self.name}: non-positive block count {count}")
        if block_no < 0 or block_no + count > self.num_blocks:
            raise DeviceError(
                f"{self.name}: blocks [{block_no}, {block_no + count}) out of "
                f"range (device has {self.num_blocks} blocks)"
            )

    # -- timing hooks (overridden per device type) ---------------------------

    def _access_cost_ns(self, block_no: int, nbytes: int, *, write: bool) -> int:
        """Latency of one contiguous access starting at ``block_no``."""
        latency = (
            self.profile.write_latency_ns if write else self.profile.read_latency_ns
        )
        return latency + self.profile.transfer_ns(nbytes, write=write)

    def _occupy(self, cost_ns: int) -> int:
        """Submit one access at the current instant; sync to its completion.

        On an idle device this degenerates to ``clock.advance_ns(cost_ns)``
        exactly; queueing delay appears only when the chosen channel is
        still busy with earlier overlapped or background work.
        """
        begin, complete = self.timeline.acquire(
            self.clock.now_ns, cost_ns, background=self.clock.in_background
        )
        self.clock.advance_to(complete)
        return complete

    # -- arena plumbing (no simulated-time charges) ----------------------------

    def _read_span_raw(self, block_no: int, count: int) -> bytes:
        """Copy ``count`` blocks out of the arena (zeros where unwritten)."""
        bs = self.block_size
        out = bytearray(count * bs)
        bno, remaining, pos = block_no, count, 0
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            chunk = self._chunks.get(ci)
            if chunk is not None:
                off = cb * bs
                out[pos : pos + take * bs] = chunk[off : off + take * bs]
            bno += take
            remaining -= take
            pos += take * bs
        return bytes(out)

    def _write_span_raw(self, block_no: int, data) -> None:
        """Copy block-aligned ``data`` into the arena, marking presence."""
        bs = self.block_size
        src = memoryview(data)
        bno, remaining, pos = block_no, len(data) // bs, 0
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            chunk = self._chunks.get(ci)
            if chunk is None:
                chunk = bytearray(self._chunk_bytes)
                self._chunks[ci] = chunk
            off = cb * bs
            chunk[off : off + take * bs] = src[pos : pos + take * bs]
            run_mask = ((1 << take) - 1) << cb
            mask = self._present.get(ci, 0)
            added = run_mask & ~mask
            if added:
                self._materialized += added.bit_count()
                self._present[ci] = mask | run_mask
            bno += take
            remaining -= take
            pos += take * bs

    def _mark_present(self, block_no: int, count: int) -> None:
        """Flag [block_no, block_no+count) as materialized."""
        bno, remaining = block_no, count
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            run_mask = ((1 << take) - 1) << cb
            mask = self._present.get(ci, 0)
            added = run_mask & ~mask
            if added:
                self._materialized += added.bit_count()
                self._present[ci] = mask | run_mask
            bno += take
            remaining -= take

    # -- block I/O -----------------------------------------------------------

    def read_blocks(self, block_no: int, count: int = 1) -> bytes:
        """Read ``count`` contiguous blocks, charging simulated time."""
        self._check_range(block_no, count)
        nbytes = count * self.block_size
        cost = self._access_cost_ns(block_no, nbytes, write=False)
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_read(nbytes, cost)
        if self.faults is not None:
            # Time is charged even for failing accesses: the controller did
            # the work before reporting the error.
            self.faults.check_read(block_no, count)
        return self._read_span_raw(block_no, count)

    def write_blocks(self, block_no: int, data: bytes) -> None:
        """Write whole blocks starting at ``block_no``."""
        if len(data) == 0 or len(data) % self.block_size:
            raise DeviceError(
                f"{self.name}: write size {len(data)} is not block aligned"
            )
        count = len(data) // self.block_size
        self._check_range(block_no, count)
        cost = self._access_cost_ns(block_no, len(data), write=True)
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_write(len(data), cost)
        if self.faults is not None:
            fault = self.faults.check_write(block_no, count)
            if fault is not None:
                prefix_blocks, exc = fault
                if prefix_blocks > 0:
                    # Torn write: a prefix of the payload reached media
                    # before power/controller failure.
                    self._write_span_raw(
                        block_no, data[: prefix_blocks * self.block_size]
                    )
                raise exc
        self._write_span_raw(block_no, data)

    def discard_block(self, block_no: int) -> None:
        """Drop a block's contents (TRIM-style); it reads back as zeros."""
        self._check_range(block_no, 1)
        ci, cb = divmod(block_no, self._chunk_blocks)
        mask = self._present.get(ci, 0)
        bit = 1 << cb
        if not mask & bit:
            return
        mask &= ~bit
        self._materialized -= 1
        if mask:
            self._present[ci] = mask
            off = cb * self.block_size
            self._chunks[ci][off : off + self.block_size] = self._zero_block
        else:
            del self._present[ci]
            self._chunks.pop(ci, None)

    def flush(self) -> None:
        """Drain any volatile device buffer.  No-op for the base device."""

    # -- introspection ---------------------------------------------------------

    @property
    def materialized_blocks(self) -> int:
        """Number of blocks holding real data (for space accounting tests)."""
        return self._materialized

    def peek_block(self, block_no: int) -> Optional[bytes]:
        """Read block contents without charging time (test/debug helper)."""
        self._check_range(block_no, 1)
        ci, cb = divmod(block_no, self._chunk_blocks)
        if not (self._present.get(ci, 0) >> cb) & 1:
            return None
        off = cb * self.block_size
        return bytes(self._chunks[ci][off : off + self.block_size])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"capacity={self.capacity_bytes}, block_size={self.block_size})"
        )
