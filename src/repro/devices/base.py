"""Base class for simulated storage devices.

A device stores real bytes (so file-system correctness is end-to-end
testable) and charges simulated time to the shared :class:`SimClock`
according to its :class:`DeviceProfile`.  Only blocks that were actually
written are materialized; unwritten blocks read as zeros, which also gives
the sparse-file behaviour the native file systems rely on.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from repro.devices.profile import DeviceProfile
from repro.errors import DeviceError
from repro.sim.clock import SimClock
from repro.sim.stats import DeviceStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devices.faults import FaultInjector

DEFAULT_BLOCK_SIZE = 4096

#: arena granularity: blocks per lazily-allocated backing chunk (2 MiB of
#: data per chunk at the default 4 KiB block size)
ARENA_CHUNK_BLOCKS = 512


class Device:
    """A simulated block device backed by a chunked bytearray arena.

    The store is sparse at two levels: backing chunks are allocated lazily
    on first write, and a per-chunk presence bitmask tracks which blocks
    were actually materialized (unwritten blocks read as zeros, which the
    native file systems rely on for sparse files).  Keeping runs of blocks
    contiguous in one ``bytearray`` makes multi-block reads/writes single
    slice operations instead of per-block dict lookups.
    """

    def __init__(
        self,
        name: str,
        profile: DeviceProfile,
        capacity_bytes: int,
        clock: SimClock,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if block_size <= 0 or capacity_bytes % block_size:
            raise ValueError("capacity must be a multiple of block size")
        self.name = name
        self.profile = profile
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.num_blocks = capacity_bytes // block_size
        self.clock = clock
        self.stats = DeviceStats()
        self._chunk_blocks = ARENA_CHUNK_BLOCKS
        self._chunk_bytes = self._chunk_blocks * block_size
        self._chunks: Dict[int, bytearray] = {}
        self._present: Dict[int, int] = {}
        self._materialized = 0
        self._zero_block = bytes(block_size)
        #: optional fault schedule; None keeps the healthy path branch-free
        self.faults: Optional["FaultInjector"] = None

    def set_fault_injector(self, injector: Optional["FaultInjector"]) -> None:
        """Attach (or detach, with None) a deterministic fault schedule."""
        self.faults = injector

    # -- bounds ------------------------------------------------------------

    def _check_range(self, block_no: int, count: int) -> None:
        if count <= 0:
            raise DeviceError(f"{self.name}: non-positive block count {count}")
        if block_no < 0 or block_no + count > self.num_blocks:
            raise DeviceError(
                f"{self.name}: blocks [{block_no}, {block_no + count}) out of "
                f"range (device has {self.num_blocks} blocks)"
            )

    # -- timing hooks (overridden per device type) ---------------------------

    def _access_cost_ns(self, block_no: int, nbytes: int, *, write: bool) -> int:
        """Latency of one contiguous access starting at ``block_no``."""
        latency = (
            self.profile.write_latency_ns if write else self.profile.read_latency_ns
        )
        return latency + self.profile.transfer_ns(nbytes, write=write)

    # -- arena plumbing (no simulated-time charges) ----------------------------

    def _read_span_raw(self, block_no: int, count: int) -> bytes:
        """Copy ``count`` blocks out of the arena (zeros where unwritten)."""
        bs = self.block_size
        out = bytearray(count * bs)
        bno, remaining, pos = block_no, count, 0
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            chunk = self._chunks.get(ci)
            if chunk is not None:
                off = cb * bs
                out[pos : pos + take * bs] = chunk[off : off + take * bs]
            bno += take
            remaining -= take
            pos += take * bs
        return bytes(out)

    def _write_span_raw(self, block_no: int, data) -> None:
        """Copy block-aligned ``data`` into the arena, marking presence."""
        bs = self.block_size
        src = memoryview(data)
        bno, remaining, pos = block_no, len(data) // bs, 0
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            chunk = self._chunks.get(ci)
            if chunk is None:
                chunk = bytearray(self._chunk_bytes)
                self._chunks[ci] = chunk
            off = cb * bs
            chunk[off : off + take * bs] = src[pos : pos + take * bs]
            run_mask = ((1 << take) - 1) << cb
            mask = self._present.get(ci, 0)
            added = run_mask & ~mask
            if added:
                self._materialized += added.bit_count()
                self._present[ci] = mask | run_mask
            bno += take
            remaining -= take
            pos += take * bs

    def _mark_present(self, block_no: int, count: int) -> None:
        """Flag [block_no, block_no+count) as materialized."""
        bno, remaining = block_no, count
        while remaining:
            ci, cb = divmod(bno, self._chunk_blocks)
            take = min(remaining, self._chunk_blocks - cb)
            run_mask = ((1 << take) - 1) << cb
            mask = self._present.get(ci, 0)
            added = run_mask & ~mask
            if added:
                self._materialized += added.bit_count()
                self._present[ci] = mask | run_mask
            bno += take
            remaining -= take

    # -- block I/O -----------------------------------------------------------

    def read_blocks(self, block_no: int, count: int = 1) -> bytes:
        """Read ``count`` contiguous blocks, charging simulated time."""
        self._check_range(block_no, count)
        nbytes = count * self.block_size
        cost = self._access_cost_ns(block_no, nbytes, write=False)
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self.clock.advance_ns(cost)
        self.stats.record_read(nbytes, cost)
        if self.faults is not None:
            # Time is charged even for failing accesses: the controller did
            # the work before reporting the error.
            self.faults.check_read(block_no, count)
        return self._read_span_raw(block_no, count)

    def write_blocks(self, block_no: int, data: bytes) -> None:
        """Write whole blocks starting at ``block_no``."""
        if len(data) == 0 or len(data) % self.block_size:
            raise DeviceError(
                f"{self.name}: write size {len(data)} is not block aligned"
            )
        count = len(data) // self.block_size
        self._check_range(block_no, count)
        cost = self._access_cost_ns(block_no, len(data), write=True)
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self.clock.advance_ns(cost)
        self.stats.record_write(len(data), cost)
        if self.faults is not None:
            fault = self.faults.check_write(block_no, count)
            if fault is not None:
                prefix_blocks, exc = fault
                if prefix_blocks > 0:
                    # Torn write: a prefix of the payload reached media
                    # before power/controller failure.
                    self._write_span_raw(
                        block_no, data[: prefix_blocks * self.block_size]
                    )
                raise exc
        self._write_span_raw(block_no, data)

    def discard_block(self, block_no: int) -> None:
        """Drop a block's contents (TRIM-style); it reads back as zeros."""
        self._check_range(block_no, 1)
        ci, cb = divmod(block_no, self._chunk_blocks)
        mask = self._present.get(ci, 0)
        bit = 1 << cb
        if not mask & bit:
            return
        mask &= ~bit
        self._materialized -= 1
        if mask:
            self._present[ci] = mask
            off = cb * self.block_size
            self._chunks[ci][off : off + self.block_size] = self._zero_block
        else:
            del self._present[ci]
            self._chunks.pop(ci, None)

    def flush(self) -> None:
        """Drain any volatile device buffer.  No-op for the base device."""

    # -- introspection ---------------------------------------------------------

    @property
    def materialized_blocks(self) -> int:
        """Number of blocks holding real data (for space accounting tests)."""
        return self._materialized

    def peek_block(self, block_no: int) -> Optional[bytes]:
        """Read block contents without charging time (test/debug helper)."""
        self._check_range(block_no, 1)
        ci, cb = divmod(block_no, self._chunk_blocks)
        if not (self._present.get(ci, 0) >> cb) & 1:
            return None
        off = cb * self.block_size
        return bytes(self._chunks[ci][off : off + self.block_size])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"capacity={self.capacity_bytes}, block_size={self.block_size})"
        )
