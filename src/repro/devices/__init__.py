"""Simulated storage devices: PM, SSD and HDD timing + data models."""

from repro.devices.base import DEFAULT_BLOCK_SIZE, Device
from repro.devices.cxl import ARCHIVAL, CXL_SSD, ArchivalDevice, CxlSsd
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import CACHE_LINE, PersistentMemoryDevice
from repro.devices.profile import (
    CATALOG,
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
    DeviceKind,
    DeviceProfile,
)
from repro.devices.ssd import SolidStateDrive

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "Device",
    "ARCHIVAL",
    "CXL_SSD",
    "ArchivalDevice",
    "CxlSsd",
    "HardDiskDrive",
    "CACHE_LINE",
    "PersistentMemoryDevice",
    "CATALOG",
    "OPTANE_PMEM_200",
    "OPTANE_SSD_P4800X",
    "SEAGATE_EXOS_X18",
    "DeviceKind",
    "DeviceProfile",
    "SolidStateDrive",
]
