"""Deterministic fault injection for simulated devices.

A :class:`FaultInjector` sits between a :class:`~repro.devices.base.Device`
and its callers and decides, per access, whether to inject a media error,
tear a multi-block write (materializing only a prefix), stretch latency by
a spike multiplier, or reject everything because the device is offline.

Every decision draws from a :class:`~repro.sim.rng.DeterministicRng`
substream owned by the injector, so a (seed, workload) pair replays the
exact same fault schedule — goldens and CI stay deterministic.  A device
with no injector attached takes zero extra branches beyond a single
``is None`` check, keeping healthy-path fingerprints bit-identical.

Persistent errors latch: once a block range draws a persistent fault, the
same blocks keep failing until the device is repaired (``clear_latched``),
modelling grown media defects rather than independent coin flips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.errors import DeviceIoError, DeviceOffline
from repro.sim.rng import DeterministicRng
from repro.sim.stats import CounterSet


@dataclass
class FaultConfig:
    """Tunable fault probabilities for one device.

    All probabilities are per *operation* (not per block) so the fault rate
    a test configures is independent of request coalescing.
    """

    read_error_p: float = 0.0
    write_error_p: float = 0.0
    #: fraction of injected errors that are transient (succeed on retry);
    #: the remainder latch as persistent media defects on the target blocks
    transient_fraction: float = 1.0
    #: probability a multi-block write tears, materializing only a prefix
    torn_write_p: float = 0.0
    latency_spike_p: float = 0.0
    #: cost multiplier applied to an access that draws a spike; ``None``
    #: lets the stack builder pick a per-device-kind default
    #: (:data:`repro.devices.profile.DEFAULT_SPIKE_MULT`)
    latency_spike_mult: Optional[float] = None

    def any_enabled(self) -> bool:
        return (
            self.read_error_p > 0.0
            or self.write_error_p > 0.0
            or self.torn_write_p > 0.0
            or self.latency_spike_p > 0.0
        )


class FaultInjector:
    """Per-device fault schedule, seeded and fully deterministic.

    The draw order inside each check is fixed (spike, then error, then torn)
    so adding or removing one fault class never perturbs the schedule of the
    others for the same seed.
    """

    def __init__(self, name: str, config: FaultConfig, rng: DeterministicRng) -> None:
        self.name = name
        self.config = config
        self.rng = rng
        self.stats = CounterSet()
        self.offline = False
        self._latched_read: Set[int] = set()
        self._latched_write: Set[int] = set()

    # -- administrative controls ------------------------------------------------

    def set_offline(self) -> None:
        """Reject every subsequent access until :meth:`set_online`."""
        self.offline = True
        self.stats.add("offline_transitions")

    def set_online(self) -> None:
        self.offline = False

    def fail_block(self, block_no: int, *, write: bool = True, read: bool = True) -> None:
        """Latch a persistent media defect on ``block_no`` (test helper)."""
        if read:
            self._latched_read.add(block_no)
        if write:
            self._latched_write.add(block_no)

    def clear_latched(self) -> None:
        """Repair all latched media defects (device replacement)."""
        self._latched_read.clear()
        self._latched_write.clear()

    # -- latency ---------------------------------------------------------------

    def extra_latency_ns(self, base_cost_ns: int) -> int:
        """Extra simulated ns for this access (0 unless a spike fires)."""
        p = self.config.latency_spike_p
        if p <= 0.0:
            return 0
        if self.rng.random() >= p:
            return 0
        self.stats.add("latency_spikes")
        mult = self.config.latency_spike_mult
        if mult is None:
            mult = 8.0
        return int(base_cost_ns * (mult - 1.0))

    # -- fault decisions ---------------------------------------------------------

    def _hit_latched(self, block_no: int, count: int, latched: Set[int]) -> bool:
        if not latched:
            return False
        return any((block_no + i) in latched for i in range(count))

    def check_read(self, block_no: int, count: int) -> None:
        """Raise if this read should fail.  Called after time is charged."""
        if self.offline:
            self.stats.add("offline_rejections")
            raise DeviceOffline(f"{self.name}: device offline")
        if self._hit_latched(block_no, count, self._latched_read):
            self.stats.add("read_errors_persistent")
            raise DeviceIoError(
                f"{self.name}: persistent read error in blocks "
                f"[{block_no}, {block_no + count})",
                transient=False,
            )
        p = self.config.read_error_p
        if p > 0.0 and self.rng.random() < p:
            transient = self.rng.random() < self.config.transient_fraction
            if transient:
                self.stats.add("read_errors_transient")
                raise DeviceIoError(
                    f"{self.name}: transient read error at block {block_no}",
                    transient=True,
                )
            for i in range(count):
                self._latched_read.add(block_no + i)
            self.stats.add("read_errors_persistent")
            raise DeviceIoError(
                f"{self.name}: persistent read error at block {block_no}",
                transient=False,
            )

    def check_write(
        self, block_no: int, count: int, torn_units: Optional[int] = None
    ) -> Optional[Tuple[int, DeviceIoError]]:
        """Decide this write's fate.  Called after time is charged.

        Returns ``None`` for success, or ``(torn_prefix_units, exc)``: the
        device must materialize the first ``torn_prefix_units`` units of the
        payload and then raise ``exc``.  A unit is a block for the block
        path and a chunk for the PM store_run path (``torn_units`` overrides
        the unit count; it defaults to ``count`` blocks).  A plain error
        uses a prefix of 0.  Offline rejection raises directly.
        """
        if self.offline:
            self.stats.add("offline_rejections")
            raise DeviceOffline(f"{self.name}: device offline")
        if self._hit_latched(block_no, count, self._latched_write):
            self.stats.add("write_errors_persistent")
            return 0, DeviceIoError(
                f"{self.name}: persistent write error in blocks "
                f"[{block_no}, {block_no + count})",
                transient=False,
            )
        p = self.config.write_error_p
        if p > 0.0 and self.rng.random() < p:
            transient = self.rng.random() < self.config.transient_fraction
            if transient:
                self.stats.add("write_errors_transient")
                return 0, DeviceIoError(
                    f"{self.name}: transient write error at block {block_no}",
                    transient=True,
                )
            for i in range(count):
                self._latched_write.add(block_no + i)
            self.stats.add("write_errors_persistent")
            return 0, DeviceIoError(
                f"{self.name}: persistent write error at block {block_no}",
                transient=False,
            )
        units = count if torn_units is None else torn_units
        p = self.config.torn_write_p
        if units > 1 and p > 0.0 and self.rng.random() < p:
            prefix = self.rng.randint(1, units - 1)
            self.stats.add("torn_writes")
            return prefix, DeviceIoError(
                f"{self.name}: torn write at block {block_no}: "
                f"{prefix}/{units} units materialized",
                transient=True,
            )
        return None
