"""Simulated NVMe SSD (Optane SSD P4800X class).

The model adds an internal DRAM write buffer on top of the base block
device: writes land in the buffer at near-zero cost until it fills, after
which each write pays the full device cost while the buffer drains.  A
``flush()`` (issued by the file system on fsync) drains the buffer and
charges the drain time.  This reproduces the burst-absorbing behaviour
enterprise SSDs show under the paper's write benchmarks.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.profile import DeviceProfile, OPTANE_SSD_P4800X
from repro.sim.clock import SimClock


class SolidStateDrive(Device):
    """Block device with fixed access latency and an internal write buffer."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = OPTANE_SSD_P4800X,
        block_size: int = 4096,
    ) -> None:
        super().__init__(name, profile, capacity_bytes, clock, block_size)
        self._buffered_bytes = 0

    def _access_cost_ns(self, block_no: int, nbytes: int, *, write: bool) -> int:
        base = self.profile.write_latency_ns if write else self.profile.read_latency_ns
        transfer = self.profile.transfer_ns(nbytes, write=write)
        if not write or self.profile.write_buffer_bytes == 0:
            return base + transfer
        # Writes that fit in the device buffer complete at interface speed
        # (PCIe DMA, modeled as 4x the media bandwidth) and drain later.
        if self._buffered_bytes + nbytes <= self.profile.write_buffer_bytes:
            self._buffered_bytes += nbytes
            return base + transfer // 4
        # Buffer full: pay the full media cost.
        return base + transfer

    def flush(self) -> None:
        """Drain the internal write buffer to media (charged)."""
        if self._buffered_bytes == 0:
            return
        cost = self.profile.transfer_ns(self._buffered_bytes, write=True)
        self._occupy(cost)
        self.stats.record_flush(cost)
        self._buffered_bytes = 0

    @property
    def buffered_bytes(self) -> int:
        """Bytes currently sitting in the volatile device buffer."""
        return self._buffered_bytes
