"""Timing profiles for the simulated storage devices.

Each profile captures the latency/bandwidth class of one of the devices
used in the paper's testbed (§3.1):

* Intel Optane Persistent Memory 200 (PM tier),
* Intel Optane SSD DC P4800X (SSD tier),
* Seagate Exos X18 (HDD tier).

The constants are drawn from public spec sheets and published
measurements of those device classes; they are inputs to the simulation,
not claims of exactness.  The tiering results only require that the
*relative* ordering and rough magnitudes hold (PM ≪ SSD ≪ HDD latency;
HDD random ≪ HDD sequential bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class DeviceKind(Enum):
    """Broad device class; policies and the I/O scheduler key off this."""

    PERSISTENT_MEMORY = "pm"
    SOLID_STATE = "ssd"
    HARD_DISK = "hdd"


@dataclass(frozen=True)
class DeviceProfile:
    """Performance characteristics of one device model.

    Latencies are fixed per-operation setup costs in nanoseconds;
    bandwidths are sustained transfer rates in bytes/second.  A transfer of
    ``n`` bytes costs ``latency + n / bandwidth``.
    """

    name: str
    kind: DeviceKind
    read_latency_ns: int
    write_latency_ns: int
    read_bandwidth: float  # bytes / second
    write_bandwidth: float  # bytes / second
    byte_addressable: bool = False
    # PM-only: cost of one cache-line flush (CLWB + fence amortized).
    flush_latency_ns: int = 0
    # HDD-only: average seek and half-rotation costs for random access.
    seek_latency_ns: int = 0
    rotational_latency_ns: int = 0
    # SSD-only: device DRAM write buffer that absorbs bursts.
    write_buffer_bytes: int = 0
    # Internal parallelism: how many requests the device services
    # concurrently (NVMe queue pairs / interleaved PM DIMM lanes).  An HDD
    # has one spindle, so queue_depth stays 1 and requests serialize.
    queue_depth: int = 1
    # Saturation knee: once the backlog at submit time reaches
    # ``knee_depth`` requests, per-request service time inflates by
    # ``knee_penalty * excess**2`` (convex — controller arbitration, die
    # contention and head scheduling all degrade superlinearly past the
    # device's sweet spot).  ``knee_depth=0`` disables the knee entirely
    # and preserves the flat per-channel model bit-for-bit.
    knee_depth: int = 0
    knee_penalty: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False)

    def transfer_ns(self, nbytes: int, *, write: bool) -> int:
        """Pure transfer time for ``nbytes`` at the sustained bandwidth."""
        bandwidth = self.write_bandwidth if write else self.read_bandwidth
        return round(nbytes * 1e9 / bandwidth)


#: Intel Optane Persistent Memory 200 series (per-DIMM class numbers).
OPTANE_PMEM_200 = DeviceProfile(
    name="Intel Optane PMem 200",
    kind=DeviceKind.PERSISTENT_MEMORY,
    read_latency_ns=170,
    write_latency_ns=90,
    read_bandwidth=30e9,
    write_bandwidth=8e9,
    byte_addressable=True,
    # per-line CLWB cost with store pipelining; a 4 KiB block flush is 64
    # lines -> ~640 ns, comparable to its transfer time at 8 GB/s
    flush_latency_ns=10,
    # six interleaved DIMMs per socket in the paper's testbed; eight lanes
    # rounds to a power of two and matches iMC queue behaviour
    queue_depth=8,
    # Published loaded-latency curves for Optane DIMMs show read latency
    # roughly flat until the iMC write-pending queue fills, then rising
    # ~2.5x by twice the lane count: excess=9 -> 1 + 0.02*81 ~ 2.6x.
    knee_depth=8,
    knee_penalty=0.02,
)

#: Intel Optane SSD DC P4800X (3D XPoint NVMe SSD, ~10 µs access).
OPTANE_SSD_P4800X = DeviceProfile(
    name="Intel Optane SSD DC P4800X",
    kind=DeviceKind.SOLID_STATE,
    read_latency_ns=10_000,
    write_latency_ns=10_000,
    read_bandwidth=2.4e9,
    write_bandwidth=2.0e9,
    write_buffer_bytes=32 * 1024 * 1024,
    # NVMe multi-queue: the P4800X sustains its rated IOPS at QD8; deeper
    # queues add latency without throughput, so 8 channels model it well
    queue_depth=8,
    # Spec sheet: ~10 us at low QD, ~550K IOPS ceiling.  Little's law at
    # QD16 gives ~29 us -> ~2.4x the QD8 latency; excess=9 at backlog 16
    # with penalty 0.015 inflates 1 + 0.015*81 ~ 2.2x, matching the
    # published latency-vs-QD curve's gentle knee past the sweet spot.
    knee_depth=8,
    knee_penalty=0.015,
)

#: Seagate Exos X18 (7200 rpm enterprise HDD).
SEAGATE_EXOS_X18 = DeviceProfile(
    name="Seagate Exos X18",
    kind=DeviceKind.HARD_DISK,
    read_latency_ns=50_000,  # controller + command overhead
    write_latency_ns=50_000,
    read_bandwidth=270e6,
    write_bandwidth=260e6,
    seek_latency_ns=4_160_000,  # average seek ~4.16 ms
    rotational_latency_ns=4_160_000,  # 7200 rpm -> 8.33 ms/rev, avg half
    queue_depth=1,  # one spindle: everything serializes behind the head
    # Rotational latency-vs-QD: a short NCQ queue reorders well, but once
    # more than a few commands are pending, average service degrades from
    # seek thrash between distant streams (vendor curves show ~1.5-3x by
    # QD8): excess=5 at backlog 8 -> 1 + 0.05*25 ~ 2.2x.
    knee_depth=4,
    knee_penalty=0.05,
)

#: All catalog profiles by tier nickname.
CATALOG = {
    "pm": OPTANE_PMEM_200,
    "ssd": OPTANE_SSD_P4800X,
    "hdd": SEAGATE_EXOS_X18,
}

#: Default latency-spike multipliers per device class, used when a
#: :class:`~repro.devices.faults.FaultConfig` doesn't pin its own.  HDDs
#: spike hardest (thermal recalibration / retry storms), SSDs moderately
#: (GC pauses), PM barely (memory-bus contention).
DEFAULT_SPIKE_MULT = {
    DeviceKind.PERSISTENT_MEMORY: 2.0,
    DeviceKind.SOLID_STATE: 8.0,
    DeviceKind.HARD_DISK: 20.0,
}
