"""Simulated enterprise hard disk (Seagate Exos X18 class).

The defining property of an HDD — the one every tiering policy exploits —
is the gap between sequential and random access.  The model tracks the head
position: an access contiguous with the previous one pays only transfer
time, while a non-contiguous access pays an average seek plus half a
rotation.  Short seeks (nearby tracks) are cheaper than full-stroke seeks.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.profile import DeviceProfile, SEAGATE_EXOS_X18
from repro.sim.clock import SimClock


class HardDiskDrive(Device):
    """Block device with a seek/rotation model and head-position tracking."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = SEAGATE_EXOS_X18,
        block_size: int = 4096,
    ) -> None:
        super().__init__(name, profile, capacity_bytes, clock, block_size)
        self._head_block = 0

    def _seek_cost_ns(self, block_no: int) -> int:
        """Seek + rotational cost to move the head to ``block_no``."""
        if block_no == self._head_block:
            return 0
        distance = abs(block_no - self._head_block)
        # Seek time scales sub-linearly with distance: short seeks between
        # adjacent tracks cost ~1/4 of the average, full-stroke ~2x average.
        fraction = min(1.0, distance / max(1, self.num_blocks))
        seek = round(self.profile.seek_latency_ns * (0.25 + 1.75 * fraction**0.5))
        self.stats.record_seek()
        return seek + self.profile.rotational_latency_ns

    def _access_cost_ns(self, block_no: int, nbytes: int, *, write: bool) -> int:
        base = self.profile.write_latency_ns if write else self.profile.read_latency_ns
        seek = self._seek_cost_ns(block_no)
        transfer = self.profile.transfer_ns(nbytes, write=write)
        self._head_block = block_no + nbytes // self.block_size
        return base + seek + transfer

    @property
    def head_block(self) -> int:
        """Current head position in blocks (sequentiality tests)."""
        return self._head_block
