"""Emerging device types: CXL SSD and glass/DNA-class archival storage.

The paper's opening problem statement: "The emergence of new storage
technologies, such as persistent memory, CXL SSD, and others, are
producing faster, larger, and cheaper storage devices ... New devices are
commonly integrated into heterogeneous storage hierarchies."  Mux's whole
pitch is that integrating such a device requires only a file system that
speaks VFS — no tiered-FS surgery.

Two device classes beyond the paper's testbed:

* :class:`CxlSsd` — a byte-addressable, cache-coherent flash device behind
  a CXL link: load/store semantics like PM (so NOVA runs on it unchanged)
  but with flash-backed latency.  Capacity-tier pricing, memory-tier
  interface.
* :class:`ArchivalDevice` — a glass/DNA/tape-class cold store: enormous
  capacity, block interface, access latencies in the hundreds of
  milliseconds.  Ext4 runs on it unchanged (journaling still applies).
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import DeviceKind, DeviceProfile
from repro.sim.clock import SimClock

#: CXL-attached SSD (e.g. Samsung CMM-H class): byte addressable through
#: the CXL.mem protocol, flash latency behind a DRAM buffer.
CXL_SSD = DeviceProfile(
    name="CXL SSD",
    kind=DeviceKind.PERSISTENT_MEMORY,  # byte-addressable: ranks with PM
    read_latency_ns=450,  # CXL round trip + device buffer
    write_latency_ns=600,
    read_bandwidth=12e9,
    write_bandwidth=4e9,
    byte_addressable=True,
    flush_latency_ns=25,
    queue_depth=4,  # one CXL link: fewer lanes than socket-local PM
)

#: Archival cold storage (glass / DNA / tape library class).
ARCHIVAL = DeviceProfile(
    name="Archival cold store",
    kind=DeviceKind.HARD_DISK,  # slowest class for ranking purposes
    read_latency_ns=250_000_000,  # media fetch: hundreds of ms
    write_latency_ns=150_000_000,
    read_bandwidth=120e6,
    write_bandwidth=100e6,
    seek_latency_ns=0,
    rotational_latency_ns=0,
)


class CxlSsd(PersistentMemoryDevice):
    """Byte-addressable CXL flash device — NOVA runs on it unchanged."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = CXL_SSD,
        block_size: int = 4096,
    ) -> None:
        super().__init__(name, capacity_bytes, clock, profile, block_size)


class ArchivalDevice(Device):
    """Cold-store block device — Ext4 runs on it unchanged."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = ARCHIVAL,
        block_size: int = 4096,
    ) -> None:
        super().__init__(name, profile, capacity_bytes, clock, block_size)
