"""Simulated persistent-memory device (Optane PMem class).

Persistent memory is byte addressable and accessed with CPU loads/stores;
durability requires explicitly flushing cache lines (CLWB/CLFLUSH, which
§3.1 highlights as the reason NOVA beats Strata's log-then-digest design).
The model exposes :meth:`load` / :meth:`store` at byte granularity plus
:meth:`flush_range`, and keeps track of how many cache lines were flushed.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.profile import DeviceProfile, OPTANE_PMEM_200
from repro.errors import DeviceError
from repro.sim.clock import SimClock

CACHE_LINE = 64


class PersistentMemoryDevice(Device):
    """Byte-addressable persistent memory with explicit flush semantics."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = OPTANE_PMEM_200,
        block_size: int = 4096,
    ) -> None:
        if not profile.byte_addressable:
            raise ValueError("PersistentMemoryDevice needs a byte-addressable profile")
        super().__init__(name, profile, capacity_bytes, clock, block_size)
        #: bytes store()d since the last flush_range covering them; tracked
        #: at cache-line granularity for persistence-ordering tests.
        self._dirty_lines: set[int] = set()

    # -- byte-granular DAX path ------------------------------------------------

    def _check_span(self, addr: int, length: int) -> None:
        if length < 0:
            raise DeviceError(f"{self.name}: negative length {length}")
        if addr < 0 or addr + length > self.capacity_bytes:
            raise DeviceError(
                f"{self.name}: span [{addr}, {addr + length}) exceeds capacity"
            )

    def load(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at ``addr`` via the DAX path."""
        self._check_span(addr, length)
        if length == 0:
            return b""
        cost = self.profile.read_latency_ns + self.profile.transfer_ns(
            length, write=False
        )
        self.clock.advance_ns(cost)
        self.stats.record_read(length, cost)
        return self._peek_span(addr, length)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` via the DAX path (volatile until flush)."""
        self._check_span(addr, len(data))
        if not data:
            return
        cost = self.profile.write_latency_ns + self.profile.transfer_ns(
            len(data), write=True
        )
        self.clock.advance_ns(cost)
        self.stats.record_write(len(data), cost)
        self._poke_span(addr, data)
        first = addr // CACHE_LINE
        last = (addr + len(data) - 1) // CACHE_LINE
        self._dirty_lines.update(range(first, last + 1))

    def flush_range(self, addr: int, length: int) -> None:
        """Flush the cache lines covering [addr, addr+length) (CLWB model)."""
        self._check_span(addr, length)
        if length == 0:
            return
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        lines = last - first + 1
        cost = lines * self.profile.flush_latency_ns
        self.clock.advance_ns(cost)
        self.stats.record_flush(cost)
        for line in range(first, last + 1):
            self._dirty_lines.discard(line)

    def drain(self) -> None:
        """SFENCE model: order prior flushes.  Charged as one flush op."""
        self.clock.advance_ns(self.profile.flush_latency_ns)
        self.stats.record_flush(self.profile.flush_latency_ns)

    @property
    def unflushed_lines(self) -> int:
        """Cache lines written but not yet flushed (crash-consistency tests)."""
        return len(self._dirty_lines)

    # -- span helpers over the block store --------------------------------------

    def _peek_span(self, addr: int, length: int) -> bytes:
        out = bytearray()
        pos = addr
        remaining = length
        while remaining > 0:
            bno, off = divmod(pos, self.block_size)
            take = min(remaining, self.block_size - off)
            block = self._blocks.get(bno, self._zero_block)
            out += block[off : off + take]
            pos += take
            remaining -= take
        return bytes(out)

    def _poke_span(self, addr: int, data: bytes) -> None:
        pos = addr
        idx = 0
        while idx < len(data):
            bno, off = divmod(pos, self.block_size)
            take = min(len(data) - idx, self.block_size - off)
            block = bytearray(self._blocks.get(bno, self._zero_block))
            block[off : off + take] = data[idx : idx + take]
            self._blocks[bno] = bytes(block)
            pos += take
            idx += take
