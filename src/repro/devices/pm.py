"""Simulated persistent-memory device (Optane PMem class).

Persistent memory is byte addressable and accessed with CPU loads/stores;
durability requires explicitly flushing cache lines (CLWB/CLFLUSH, which
§3.1 highlights as the reason NOVA beats Strata's log-then-digest design).
The model exposes :meth:`load` / :meth:`store` at byte granularity plus
:meth:`flush_range`, and keeps track of how many cache lines were flushed.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.devices.profile import DeviceProfile, OPTANE_PMEM_200
from repro.errors import DeviceError
from repro.sim.clock import SimClock

CACHE_LINE = 64


class PersistentMemoryDevice(Device):
    """Byte-addressable persistent memory with explicit flush semantics."""

    def __init__(
        self,
        name: str,
        capacity_bytes: int,
        clock: SimClock,
        profile: DeviceProfile = OPTANE_PMEM_200,
        block_size: int = 4096,
    ) -> None:
        if not profile.byte_addressable:
            raise ValueError("PersistentMemoryDevice needs a byte-addressable profile")
        super().__init__(name, profile, capacity_bytes, clock, block_size)
        #: bytes store()d since the last flush_range covering them; tracked
        #: at cache-line granularity for persistence-ordering tests.  Kept
        #: as disjoint half-open [start, end) line intervals so a span
        #: store/flush is O(intervals), not O(lines).
        self._dirty_runs: list[tuple[int, int]] = []

    def _mark_dirty(self, first_line: int, end_line: int) -> None:
        merged_lo, merged_hi = first_line, end_line
        keep: list[tuple[int, int]] = []
        for s, e in self._dirty_runs:
            if e < merged_lo or s > merged_hi:
                keep.append((s, e))
            else:
                merged_lo = min(merged_lo, s)
                merged_hi = max(merged_hi, e)
        keep.append((merged_lo, merged_hi))
        keep.sort()
        self._dirty_runs = keep

    def _clear_dirty(self, first_line: int, end_line: int) -> None:
        keep: list[tuple[int, int]] = []
        for s, e in self._dirty_runs:
            if e <= first_line or s >= end_line:
                keep.append((s, e))
            else:
                if s < first_line:
                    keep.append((s, first_line))
                if e > end_line:
                    keep.append((end_line, e))
        self._dirty_runs = keep

    # -- byte-granular DAX path ------------------------------------------------

    def _check_span(self, addr: int, length: int) -> None:
        if length < 0:
            raise DeviceError(f"{self.name}: negative length {length}")
        if addr < 0 or addr + length > self.capacity_bytes:
            raise DeviceError(
                f"{self.name}: span [{addr}, {addr + length}) exceeds capacity"
            )

    def _fault_blocks(self, addr: int, length: int) -> tuple[int, int]:
        """Block range covering [addr, addr+length) for fault decisions."""
        first = addr // self.block_size
        last = (addr + length - 1) // self.block_size
        return first, last - first + 1

    def load(self, addr: int, length: int) -> bytes:
        """Read ``length`` bytes at ``addr`` via the DAX path."""
        self._check_span(addr, length)
        if length == 0:
            return b""
        cost = self.profile.read_latency_ns + self.profile.transfer_ns(
            length, write=False
        )
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_read(length, cost)
        if self.faults is not None:
            self.faults.check_read(*self._fault_blocks(addr, length))
        return self._peek_span(addr, length)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` via the DAX path (volatile until flush)."""
        self._check_span(addr, len(data))
        if not data:
            return
        cost = self.profile.write_latency_ns + self.profile.transfer_ns(
            len(data), write=True
        )
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_write(len(data), cost)
        if self.faults is not None:
            # A single CPU store is atomic at this model's granularity:
            # torn_units=1 disables tearing, error/offline still apply.
            bno, cnt = self._fault_blocks(addr, len(data))
            fault = self.faults.check_write(bno, cnt, torn_units=1)
            if fault is not None:
                raise fault[1]
        self._poke_span(addr, data)
        first = addr // CACHE_LINE
        last = (addr + len(data) - 1) // CACHE_LINE
        self._mark_dirty(first, last + 1)

    def load_run(self, addr: int, count: int, chunk: int) -> bytes:
        """``count`` back-to-back loads of ``chunk`` bytes each.

        Timing-equivalent to ``count`` sequential :meth:`load` calls over a
        contiguous span (each charged its own latency), but the bytes move
        with one arena copy and the stats record ``count`` read ops.
        """
        length = count * chunk
        self._check_span(addr, length)
        if length == 0:
            return b""
        cost = count * (
            self.profile.read_latency_ns
            + self.profile.transfer_ns(chunk, write=False)
        )
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_read(length, cost, ops=count)
        if self.faults is not None:
            self.faults.check_read(*self._fault_blocks(addr, length))
        return self._peek_span(addr, length)

    def store_run(self, addr: int, data, chunk: int) -> None:
        """``count`` back-to-back stores of ``chunk`` bytes each.

        Timing-equivalent to storing ``data`` in ``chunk``-sized pieces at
        contiguous addresses, one :meth:`store` per piece.
        """
        length = len(data)
        if length % chunk:
            raise DeviceError(
                f"{self.name}: store_run length {length} not a multiple of {chunk}"
            )
        self._check_span(addr, length)
        if length == 0:
            return
        count = length // chunk
        cost = count * (
            self.profile.write_latency_ns
            + self.profile.transfer_ns(chunk, write=True)
        )
        if self.faults is not None:
            cost += self.faults.extra_latency_ns(cost)
        self._occupy(cost)
        self.stats.record_write(length, cost, ops=count)
        if self.faults is not None:
            bno, cnt = self._fault_blocks(addr, length)
            fault = self.faults.check_write(bno, cnt, torn_units=count)
            if fault is not None:
                prefix_chunks, exc = fault
                if prefix_chunks > 0:
                    # Torn run: only the first stores reached media.
                    torn = bytes(data[: prefix_chunks * chunk])
                    self._poke_span(addr, torn)
                    self._mark_dirty(
                        addr // CACHE_LINE,
                        (addr + len(torn) - 1) // CACHE_LINE + 1,
                    )
                raise exc
        self._poke_span(addr, data)
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        self._mark_dirty(first, last + 1)

    def flush_range(self, addr: int, length: int, ops: int = 1) -> None:
        """Flush the cache lines covering [addr, addr+length) (CLWB model).

        ``ops`` lets one contiguous flush stand in for ``ops`` logical
        flush calls (same line count either way, so the cost is identical).
        """
        self._check_span(addr, length)
        if length == 0:
            return
        first = addr // CACHE_LINE
        last = (addr + length - 1) // CACHE_LINE
        lines = last - first + 1
        cost = lines * self.profile.flush_latency_ns
        self._occupy(cost)
        self.stats.record_flush(cost, ops=ops)
        self._clear_dirty(first, last + 1)

    def drain(self) -> None:
        """SFENCE model: order prior flushes.  Charged as one flush op."""
        self.clock.advance_ns(self.profile.flush_latency_ns)
        self.stats.record_flush(self.profile.flush_latency_ns)

    @property
    def unflushed_lines(self) -> int:
        """Cache lines written but not yet flushed (crash-consistency tests)."""
        return sum(e - s for s, e in self._dirty_runs)

    # -- span helpers over the arena --------------------------------------------

    def _peek_span(self, addr: int, length: int) -> bytes:
        out = bytearray(length)
        idx = 0
        while idx < length:
            ci, off = divmod(addr + idx, self._chunk_bytes)
            take = min(length - idx, self._chunk_bytes - off)
            chunk = self._chunks.get(ci)
            if chunk is not None:
                out[idx : idx + take] = chunk[off : off + take]
            idx += take
        return bytes(out)

    def _poke_span(self, addr: int, data) -> None:
        length = len(data)
        if length == 0:
            return
        src = memoryview(data)
        idx = 0
        while idx < length:
            ci, off = divmod(addr + idx, self._chunk_bytes)
            take = min(length - idx, self._chunk_bytes - off)
            chunk = self._chunks.get(ci)
            if chunk is None:
                chunk = bytearray(self._chunk_bytes)
                self._chunks[ci] = chunk
            chunk[off : off + take] = src[idx : idx + take]
            idx += take
        first_b = addr // self.block_size
        last_b = (addr + length - 1) // self.block_size
        self._mark_present(first_b, last_b - first_b + 1)
