"""Exception hierarchy for the whole reproduction.

File-system errors mirror the POSIX errno values the real VFS would
return, so tests can assert on precise failure modes.
"""

from __future__ import annotations

import errno


class ReproError(Exception):
    """Base class for every error raised by this package."""


class DeviceError(ReproError):
    """A simulated device rejected an operation (bounds, alignment, ...)."""


class DeviceIoError(DeviceError):
    """An injected media error on a block range.

    ``transient`` distinguishes faults that succeed on retry from latched
    media failures that persist for the life of the device.
    """

    def __init__(self, message: str = "", *, transient: bool = True) -> None:
        super().__init__(message or self.__class__.__doc__)
        self.transient = transient


class DeviceOffline(DeviceError):
    """The whole device is offline; every access is rejected."""


class FsError(ReproError):
    """A file-system operation failed; carries a POSIX errno."""

    errno: int = errno.EIO

    def __init__(self, message: str = "") -> None:
        super().__init__(message or self.__class__.__doc__)


class FileNotFound(FsError):
    """No such file or directory (ENOENT)."""

    errno = errno.ENOENT


class FileExists(FsError):
    """File already exists (EEXIST)."""

    errno = errno.EEXIST


class NotADirectory(FsError):
    """A path component is not a directory (ENOTDIR)."""

    errno = errno.ENOTDIR


class IsADirectory(FsError):
    """The operation requires a regular file but got a directory (EISDIR)."""

    errno = errno.EISDIR


class DirectoryNotEmpty(FsError):
    """Directory not empty (ENOTEMPTY)."""

    errno = errno.ENOTEMPTY


class NoSpace(FsError):
    """Device out of space (ENOSPC)."""

    errno = errno.ENOSPC


class InvalidArgument(FsError):
    """Invalid argument to a file-system call (EINVAL)."""

    errno = errno.EINVAL


class BadFileHandle(FsError):
    """Stale or closed file handle (EBADF)."""

    errno = errno.EBADF


class ReadOnly(FsError):
    """Write attempted on a read-only mount or handle (EROFS)."""

    errno = errno.EROFS


class CrossDevice(FsError):
    """Operation would illegally span file systems (EXDEV)."""

    errno = errno.EXDEV


class NotSupported(FsError):
    """Operation not supported by this file system (ENOTSUP)."""

    errno = errno.ENOTSUP


class WritebackError(FsError):
    """A previously buffered writeback failed; reported at fsync (EIO).

    Mirrors the kernel's ``errseq_t`` contract: the failure is latched on
    the inode when writeback gives up on dirty pages, and each open fd
    observes it exactly once — the first fsync after the failure returns
    EIO, subsequent fsyncs on the same fd succeed (what happened to the
    data meanwhile is per-FS policy: ext4 dropped it, XFS kept retrying).
    """

    errno = errno.EIO


class TierUnavailable(FsError):
    """The tier holding the requested blocks is offline (EIO).

    Raised by the mux only for operations whose BLT extents resolve to a
    dead tier; data on surviving tiers keeps serving (degraded mode).
    """

    errno = errno.EIO


class MigrationError(ReproError):
    """Data movement between tiers failed."""


class MigrationUnsupported(MigrationError):
    """The tiered FS has no wired path between this device pair.

    This is how the Strata baseline reports the N/S cells of Figure 3a.
    """


class MigrationConflict(MigrationError):
    """OCC detected a conflicting user write; the attempt was discarded."""


class PolicyError(ReproError):
    """A user-defined tiering policy misbehaved (bad tier id, ...)."""


class CrashTriggered(ReproError):
    """Raised by fault injection to simulate a machine crash."""
