"""Ext4 model: block-group FS with a JBD2-style ordered journal."""

from repro.fs.ext4.fs import Ext4FileSystem

__all__ = ["Ext4FileSystem"]
