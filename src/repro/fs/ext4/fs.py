"""Ext4 model: the HDD-tier file system (Mathur et al., OLS '07).

The behaviours that matter to the Mux evaluation:

* **Allocate-on-write** — extents are assigned when the write enters the
  page cache (no delayed allocation), with a next-block hint that keeps
  sequential files mostly contiguous on disk;
* **JBD2 ordered journal** — data pages reach the disk before the metadata
  transaction commits; namespace changes journal immediately;
* **Page cache write-back** — dirty pages accumulate in DRAM and are
  written back on fsync or memory pressure, so the HDD sees batched,
  mostly-sequential I/O for well-behaved workloads.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.fscommon.allocator import BitmapAllocator
from repro.fscommon.journaledfs import JournaledFileSystem
from repro.sim.clock import SimClock


class Ext4FileSystem(JournaledFileSystem):
    """Block-group journaling file system with allocate-on-write."""

    op_cost_ns = 2200
    delayed_allocation = False
    journal_fraction = 0.02  # ext4 reserves a relatively larger journal
    #: ext4's failed-fsync behavior: dirty pages are marked clean and
    #: forgotten, so the *next* fsync succeeds even though the data never
    #: reached the disk — the loss is visible only through the errseq
    #: report on each open fd (and our fsck lost-interval audit)
    wb_failure_policy = "clean"

    def __init__(self, fs_name: str, device: Device, clock: SimClock) -> None:
        super().__init__(fs_name, device, clock)

    def _make_allocator(self, base: int, count: int) -> BitmapAllocator:
        return BitmapAllocator(base, count)
