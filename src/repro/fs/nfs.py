"""Networked file system adapter — the first step toward Distributed Mux.

§4 ("Distributed Mux"): "it is possible that a set of machines mounting
traditional file systems can be integrated into a distributed storage
system ... We plan to start with attaching networked file systems as one
of the underlying file systems."

:class:`NetworkFileSystem` wraps any local :class:`FileSystem` behind a
simulated network: every operation pays a round trip, and data-bearing
operations additionally pay transfer time at the link bandwidth.  Because
it implements the same VFS interface, it plugs into Mux as just another
tier — no Mux changes required, which is precisely the extensibility
argument the paper makes.
"""

from __future__ import annotations

from typing import List

from repro.devices.profile import DeviceKind, DeviceProfile
from repro.errors import DeviceIoError, DeviceOffline, TierUnavailable
from repro.sim.clock import SimClock
from repro.sim.stats import CounterSet
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags
from repro.vfs.stat import FsStats, Stat


def network_profile(rtt_us: float, bandwidth: float) -> DeviceProfile:
    """A device profile describing the remote tier for Mux's scheduler
    and policies (latency = RTT, bandwidth = link rate)."""
    return DeviceProfile(
        name=f"network (rtt {rtt_us:.0f}us)",
        kind=DeviceKind.HARD_DISK,  # slowest class: policies rank it last
        read_latency_ns=round(rtt_us * 1000),
        write_latency_ns=round(rtt_us * 1000),
        read_bandwidth=bandwidth,
        write_bandwidth=bandwidth,
    )


class NetworkFileSystem(FileSystem):
    """A remote file system reached over a simulated network link."""

    def __init__(
        self,
        fs_name: str,
        remote: FileSystem,
        clock: SimClock,
        rtt_us: float = 100.0,
        bandwidth: float = 1.25e9,  # 10 GbE
    ) -> None:
        self.fs_name = fs_name
        self.remote = remote
        self.clock = clock
        self.rtt_ns = round(rtt_us * 1000)
        self.bandwidth = bandwidth
        self.block_size = getattr(remote, "block_size", 4096)
        self.stats = CounterSet()

    # -- network accounting --------------------------------------------------

    def _rpc(self, payload_bytes: int = 0) -> None:
        """One request/response round trip plus payload transfer."""
        transfer = round(payload_bytes * 1e9 / self.bandwidth)
        self.clock.advance_ns(self.rtt_ns + transfer)
        self.stats.add("rpcs")
        self.stats.add("bytes_on_wire", payload_bytes)

    def _remote_call(self, fn, *args, **kwargs):
        """Run a remote operation, translating remote health failures.

        Mux's ``_tier_io`` drives a tier's HEALTHY→SUSPECT→OFFLINE
        machine exclusively from :class:`DeviceIoError` /
        :class:`DeviceOffline`; a remote shard whose own tiers are
        degraded raises :class:`TierUnavailable` (EIO) instead, which
        would leak to the local caller as a raw error the local health
        machine never sees.  Translating those into local
        ``DeviceIoError``\\ s makes a sick *remote* mount indistinguishable
        from a sick *local* device — the local tier goes SUSPECT, gets
        retried with backoff, and is routed around, exactly like any
        other tier.  Namespace errors (ENOENT, EEXIST, ...) pass through
        untranslated: those are answers, not failures.
        """
        try:
            return fn(*args, **kwargs)
        except DeviceOffline as exc:
            self.stats.add("remote_offline")
            raise DeviceOffline(f"{self.fs_name}: remote offline: {exc}") from exc
        except TierUnavailable as exc:
            # the remote stack exhausted its own retries; locally this is
            # one failed RPC, worth re-probing after backoff
            self.stats.add("remote_errors")
            raise DeviceIoError(
                f"{self.fs_name}: remote tier unavailable: {exc}", transient=True
            ) from exc
        except DeviceIoError as exc:
            self.stats.add("remote_errors")
            raise DeviceIoError(
                f"{self.fs_name}: remote I/O error: {exc}",
                transient=exc.transient,
            ) from exc

    # -- handle translation -----------------------------------------------------

    def _remote_handle(self, handle: FileHandle) -> FileHandle:
        handle.ensure_open()
        inner = handle.private
        if inner is None or not isinstance(inner, FileHandle):
            raise RuntimeError("foreign handle passed to NetworkFileSystem")
        return inner

    def _wrap(self, inner: FileHandle, path: str, flags: int) -> FileHandle:
        handle = FileHandle(self, inner.ino, path, flags)
        handle.private = inner
        return handle

    # -- namespace ------------------------------------------------------------

    def create(self, path: str, mode: int = 0o644) -> FileHandle:
        self._rpc()
        return self._wrap(self._remote_call(self.remote.create, path, mode), path, OpenFlags.RDWR)

    def open(self, path: str, flags: int = OpenFlags.RDWR) -> FileHandle:
        self._rpc()
        return self._wrap(self._remote_call(self.remote.open, path, flags), path, flags)

    def close(self, handle: FileHandle) -> None:
        inner = self._remote_handle(handle)
        handle.mark_closed()
        self._rpc()
        self._remote_call(self.remote.close, inner)

    def unlink(self, path: str) -> None:
        self._rpc()
        self._remote_call(self.remote.unlink, path)

    def rename(self, old_path: str, new_path: str) -> None:
        self._rpc()
        self._remote_call(self.remote.rename, old_path, new_path)

    def mkdir(self, path: str, mode: int = 0o755) -> None:
        self._rpc()
        self._remote_call(self.remote.mkdir, path, mode)

    def rmdir(self, path: str) -> None:
        self._rpc()
        self._remote_call(self.remote.rmdir, path)

    def readdir(self, path: str) -> List[str]:
        names = self._remote_call(self.remote.readdir, path)
        self._rpc(payload_bytes=sum(len(n) for n in names))
        return names

    # -- data -------------------------------------------------------------------

    def read(self, handle: FileHandle, offset: int, length: int) -> bytes:
        data = self._remote_call(self.remote.read, self._remote_handle(handle), offset, length)
        self._rpc(payload_bytes=len(data))
        return data

    def write(self, handle: FileHandle, offset: int, data: bytes) -> int:
        self._rpc(payload_bytes=len(data))
        return self._remote_call(self.remote.write, self._remote_handle(handle), offset, data)

    def truncate(self, handle: FileHandle, size: int) -> None:
        self._rpc()
        self._remote_call(self.remote.truncate, self._remote_handle(handle), size)

    def fsync(self, handle: FileHandle) -> None:
        self._rpc()
        self._remote_call(self.remote.fsync, self._remote_handle(handle))

    def punch_hole(self, handle: FileHandle, offset: int, length: int) -> None:
        self._rpc()
        self._remote_call(self.remote.punch_hole, self._remote_handle(handle), offset, length)

    # -- metadata ----------------------------------------------------------------

    def getattr(self, path: str) -> Stat:
        self._rpc(payload_bytes=128)
        return self._remote_call(self.remote.getattr, path)

    def setattr(self, path: str, **attrs: object) -> Stat:
        self._rpc(payload_bytes=128)
        return self._remote_call(self.remote.setattr, path, **attrs)

    def statfs(self) -> FsStats:
        # cached on real clients; modeled as free
        return self.remote.statfs()

    def sync(self) -> None:
        self._rpc()
        self._remote_call(self.remote.sync)

    def crash(self) -> None:
        self.remote.crash()

    def recover(self) -> None:
        self.remote.recover()
