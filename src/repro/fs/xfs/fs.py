"""XFS model: the SSD-tier file system (Sweeney, USENIX '96).

The behaviours that matter to the Mux evaluation:

* **Allocation groups** — the device is split into independent allocators,
  modeling XFS's parallel AG design; new files rotate across groups.
* **Delayed allocation** — buffered writes reserve nothing; extents are
  allocated in large contiguous runs at writeback/fsync, which turns long
  sequential writes into few large device I/Os (the SSD-friendly batching
  §3.1 credits the production file systems with).
* **Metadata journaling** — ordered-mode write-ahead journal inherited from
  :class:`~repro.fscommon.journaledfs.JournaledFileSystem`.
"""

from __future__ import annotations

from repro.devices.base import Device
from repro.fscommon.allocator import AllocationGroups
from repro.fscommon.journaledfs import JournaledFileSystem
from repro.sim.clock import SimClock


class XfsFileSystem(JournaledFileSystem):
    """Extent-based journaling file system with delayed allocation."""

    #: XFS's buffered-I/O path is a little heavier than Ext4's (B+tree
    #: lookups, log grant locks) but amortizes across batched extents
    op_cost_ns = 2600
    delayed_allocation = True
    journal_fraction = 0.01
    #: number of allocation groups (real XFS default: 4 per device)
    allocation_groups = 4
    #: XFS keeps pages dirty after a failed writeback and retries on the
    #: next fsync; the retry budget bounds how long a latched media error
    #: can pin dirty pages before they are dropped (and recorded as lost)
    wb_failure_policy = "keep"
    wb_retry_limit = 3

    def __init__(self, fs_name: str, device: Device, clock: SimClock) -> None:
        super().__init__(fs_name, device, clock)

    def _make_allocator(self, base: int, count: int) -> AllocationGroups:
        return AllocationGroups(base, count, self.allocation_groups)
