"""XFS model: extent-based FS with allocation groups + delayed allocation."""

from repro.fs.xfs.fs import XfsFileSystem

__all__ = ["XfsFileSystem"]
