"""Device-specific native file systems used as Mux tiers."""

from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem

__all__ = ["Ext4FileSystem", "NovaFileSystem", "XfsFileSystem"]
