"""NOVA model: a log-structured file system for persistent memory."""

from repro.fs.nova.fs import NovaFileSystem

__all__ = ["NovaFileSystem"]
