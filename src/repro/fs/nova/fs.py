"""NOVA: log-structured persistent-memory file system (Xu & Swanson,
FAST '16), modeled at the level the paper's evaluation depends on.

The properties §3.1 of the Mux paper attributes NOVA's advantage to are all
present in the model:

* **DAX data path** — reads and writes go straight to the PM device with
  loads/stores; there is no DRAM page cache and no block-layer copy.
* **Flush-based persistence** — every store is followed by cache-line
  flushes (CLWB model) and a fence, so data is durable at syscall return;
  there is *no* log-then-digest write amplification.
* **Per-inode operation log** — each metadata mutation appends a small log
  entry (one cache line) with an atomic tail update; data writes are
  copy-on-write: new blocks are populated and the index flips atomically.

Because everything is durable at operation return, ``crash()`` loses
nothing and ``recover()`` only charges the log-scan cost — the semantic
model of NOVA's guarantee.
"""

from __future__ import annotations

from typing import List, Optional

from repro.devices.pm import CACHE_LINE, PersistentMemoryDevice
from repro.fscommon.allocator import BitmapAllocator
from repro.fscommon.basefs import MetaRecord, NativeFileSystem
from repro.fscommon.inode import Inode
from repro.sim.clock import SimClock

#: size of one NOVA log entry (a cache line)
LOG_ENTRY_BYTES = CACHE_LINE


class NovaFileSystem(NativeFileSystem):
    """Log-structured PM file system with a DAX data path."""

    #: per-op software cost: NOVA's syscall path is short (no page cache,
    #: no block layer); measured NOVA syscalls are a couple of microseconds
    op_cost_ns = 1200
    #: DAX writes persist in place at syscall return: there is no deferred
    #: writeback, hence no writeback *loss* — a failing store surfaces at
    #: write() time and the errseq ledger stays empty
    wb_failure_policy = "none"
    #: fraction of the device reserved for inode logs and the inode table
    log_reserve_fraction = 0.02

    def __init__(
        self, fs_name: str, device: PersistentMemoryDevice, clock: SimClock
    ) -> None:
        if not isinstance(device, PersistentMemoryDevice):
            raise TypeError("NOVA requires a PersistentMemoryDevice")
        super().__init__(fs_name, device, clock)
        self.pm = device
        reserve = max(16, int(device.num_blocks * self.log_reserve_fraction))
        self._data_base = reserve
        self._data_blocks = device.num_blocks - reserve
        self.allocator = BitmapAllocator(self._data_base, self._data_blocks)
        self._log_cursor = 0  # rotating offset inside the log reserve

    # ------------------------------------------------------------------
    # per-inode log
    # ------------------------------------------------------------------

    def _log_append(self, entries: int = 1) -> None:
        """Append ``entries`` log entries: store a cache line each, flush,
        then atomically bump the log tail (8-byte store + flush + fence)."""
        reserve_bytes = self._data_base * self.block_size
        for _ in range(entries):
            addr = self._log_cursor % max(LOG_ENTRY_BYTES, reserve_bytes - LOG_ENTRY_BYTES)
            addr -= addr % LOG_ENTRY_BYTES
            self.pm.store(addr, bytes(LOG_ENTRY_BYTES))
            self.pm.flush_range(addr, LOG_ENTRY_BYTES)
            self._log_cursor += LOG_ENTRY_BYTES
        # atomic tail pointer update
        self.pm.store(0, bytes(8))
        self.pm.flush_range(0, 8)
        self.pm.drain()
        self.stats.add("log_entries", entries)

    def _record_namespace(self, records: List[MetaRecord]) -> None:
        self._log_append(len(records))

    def _record_data_meta(self, inode: Inode, records: List[MetaRecord]) -> None:
        # size/mtime ride in the same write entry that carried the data; a
        # single tail update makes the whole operation visible atomically.
        self._log_append(1)

    # ------------------------------------------------------------------
    # DAX data path
    # ------------------------------------------------------------------

    def _block_addr(self, dev_block: int) -> int:
        return dev_block * self.block_size

    def _read_block(self, inode: Inode, file_block: int) -> Optional[bytes]:
        dev_block = inode.blockmap.lookup(file_block)
        if dev_block is None:
            return None
        return self.pm.load(self._block_addr(dev_block), self.block_size)

    def _read_span_into(
        self, inode: Inode, offset: int, length: int, out: bytearray, out_off: int
    ) -> None:
        """Run-level DAX reads: one :meth:`PersistentMemoryDevice.load_run`
        per device-contiguous extent instead of one load per file block."""
        bs = self.block_size
        first_fb = offset // bs
        last_fb = (offset + length - 1) // bs
        end = offset + length
        for run_start, run_len, value in inode.blockmap.runs(
            first_fb, last_fb - first_fb + 1
        ):
            lo = max(run_start * bs, offset)
            hi = min((run_start + run_len) * bs, end)
            if value is None:
                out[out_off + lo - offset : out_off + hi - offset] = bytes(hi - lo)
                continue
            fb_lo = lo // bs
            fb_hi = (hi - 1) // bs
            dev_block = value + (fb_lo - run_start)
            data = self.pm.load_run(
                self._block_addr(dev_block), fb_hi - fb_lo + 1, bs
            )
            src = lo - fb_lo * bs
            out[out_off + lo - offset : out_off + hi - offset] = data[
                src : src + (hi - lo)
            ]

    def _write_span(self, inode: Inode, offset: int, data: bytes) -> None:
        """Copy-on-write: populate fresh blocks, then flip the index."""
        bs = self.block_size
        first_fb = offset // bs
        end = offset + len(data)
        last_fb = (end - 1) // bs
        count = last_fb - first_fb + 1

        # Assemble the new contents of the touched span in one buffer;
        # only the edge blocks need a base read (RMW of a partial block).
        buf = bytearray(count * bs)
        head_off = offset - first_fb * bs
        if head_off or (first_fb == last_fb and end % bs):
            base = self._read_block(inode, first_fb)
            if base is not None:
                buf[0:bs] = base
        if last_fb != first_fb and end % bs:
            base = self._read_block(inode, last_fb)
            if base is not None:
                buf[(count - 1) * bs :] = base
        buf[head_off : head_off + len(data)] = data

        # Allocate fresh blocks (log-structured: never overwrite in place).
        hint = inode.blockmap.lookup(first_fb - 1) if first_fb else None
        runs = self.allocator.alloc_extent(count, None if hint is None else hint + 1)

        # Store + flush the new data via DAX, one store per allocated run.
        mv = memoryview(buf)
        done = 0
        for dev_start, got in runs:
            addr = self._block_addr(dev_start)
            self.pm.store(addr, mv[done * bs : (done + got) * bs])
            self.pm.flush_range(addr, got * bs)
            done += got
        self.pm.drain()

        # Commit: flip the mapping to the new blocks, free the old runs.
        old_runs = [
            (value, run_len)
            for _, run_len, value in inode.blockmap.runs(first_fb, count)
            if value is not None
        ]
        inode.allocated_blocks += count - sum(r for _, r in old_runs)
        fb = first_fb
        for dev_start, got in runs:
            inode.blockmap.map_range(fb, got, dev_start)
            fb += got
        for old_start, run_len in old_runs:
            self.allocator.free_run(old_start, run_len)
        self.stats.add("cow_blocks", count)

    def _punch_range(self, inode: Inode, start_block: int, count: int) -> None:
        for start, run_len, value in list(inode.blockmap.runs(start_block, count)):
            if value is None:
                continue
            self.allocator.free_run(value, run_len)
            inode.allocated_blocks -= run_len
        inode.blockmap.unmap_range(start_block, count)
        self._log_append(1)

    def _fsync_inode(self, inode: Inode) -> None:
        # NOVA data is durable at write return; fsync is just a fence.
        self.pm.drain()

    # ------------------------------------------------------------------
    # space accounting / recovery
    # ------------------------------------------------------------------

    def _total_data_blocks(self) -> int:
        return self._data_blocks

    def _free_data_blocks(self) -> int:
        return self.allocator.free_blocks

    def crash(self) -> None:
        """NOVA loses nothing: all state was flushed at operation return."""
        self._open_handles.clear()

    def recover(self) -> None:
        """Charge the mount-time log scan and rebuild volatile state.

        NOVA keeps no persistent allocator: the free list is volatile and
        reconstructed from the per-inode logs at mount (Xu & Swanson
        §3.6).  The same scan resolves half-applied operations: an inode
        whose last log commit left it unreachable from the root (a crash
        inside the unlink window) is reaped, and blocks reserved for a
        copy-on-write whose index flip never committed return to the free
        pool instead of leaking.
        """
        scan_entries = max(1, self.stats.get("log_entries"))
        self.pm.load(0, min(scan_entries * LOG_ENTRY_BYTES, self.pm.capacity_bytes))
        reachable = set()
        stack = [self._root]
        while stack:
            inode = stack.pop()
            if inode.ino in reachable:
                continue
            reachable.add(inode.ino)
            if inode.is_dir:
                for child_ino in inode.entries.values():
                    child = self.inodes.maybe_get(child_ino)
                    if child is not None:
                        stack.append(child)
        for inode in list(self.inodes):
            if inode.ino not in reachable:
                self.inodes.free(inode.ino)
                self.stats.add("reaped_orphans")
        rebuilt = BitmapAllocator(self._data_base, self._data_blocks)
        for inode in self.inodes:
            if inode.is_dir:
                continue
            for extent in inode.blockmap:
                rebuilt.mark_allocated(extent.value, extent.count)
        self.allocator = rebuilt
