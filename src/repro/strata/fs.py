"""Strata baseline: a monolithic cross-media tiered file system
(Kwon et al., SOSP '17), modeled at the level the Mux paper compares
against (§3.1).

The model captures the three properties the paper attributes Strata's
deficits to:

* **Log-then-digest writes** — every write first lands in an operation log
  on persistent memory and is later *digested* to its final device.  Data
  whose final home is PM is therefore written twice (write amplification);
  data bound for SSD/HDD is moved in small fixed digest units instead of
  the large batched extents a production file system would issue.
* **A single global extent tree** — "the file extent tree that contains
  both block offset and device index has to be partially locked during
  block-level data migration"; every digest/migration unit charges the
  tree-lock cost, and operations racing a digest pay it too.
* **Static migration routing** — only the PM→SSD and PM→HDD paths are
  wired ("adding a path requires manually matching the threading model,
  block size, and call context of the paired devices"); every other pair
  raises :class:`MigrationUnsupported` — the N/S cells of Figure 3a.

The namespace machinery is inherited from the same skeleton the native
file systems use; everything below the namespace is Strata-specific.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core import calibration as cal
from repro.core.migration import PairStats
from repro.devices.base import Device
from repro.devices.pm import PersistentMemoryDevice
from repro.errors import MigrationUnsupported, NoSpace
from repro.fscommon.allocator import BitmapAllocator
from repro.fscommon.basefs import MetaRecord, NativeFileSystem
from repro.fscommon.inode import Inode
from repro.sim.clock import SimClock

#: extent-tree encoding: value = device_index * STRIDE + device_block
DEVICE_STRIDE = 1 << 40

#: device indices inside the monolithic extent tree
PM, SSD, HDD = 0, 1, 2
DEVICE_NAMES = {PM: "pm", SSD: "ssd", HDD: "hdd"}
DEVICE_INDICES = {v: k for k, v in DEVICE_NAMES.items()}

#: the migration paths Strata has wired (Figure 3a)
SUPPORTED_MIGRATIONS = {(PM, SSD), (PM, HDD)}


def encode(device_index: int, block: int) -> int:
    return device_index * DEVICE_STRIDE + block

def decode(value: int) -> Tuple[int, int]:
    return value // DEVICE_STRIDE, value % DEVICE_STRIDE


class StrataFileSystem(NativeFileSystem):
    """Monolithic tiered file system over PM + SSD + HDD devices."""

    op_cost_ns = cal.STRATA_OP_NS
    #: fraction of PM reserved for the operation log
    log_fraction = 0.25

    def __init__(
        self,
        fs_name: str,
        pm: PersistentMemoryDevice,
        ssd: Device,
        hdd: Device,
        clock: SimClock,
        pin_target: Optional[str] = None,
        digest_threshold_fraction: float = 0.75,
    ) -> None:
        super().__init__(fs_name, pm, clock)
        self.pm = pm
        self.devices: Dict[int, Device] = {PM: pm, SSD: ssd, HDD: hdd}
        log_blocks = max(64, int(pm.num_blocks * self.log_fraction))
        self._log_blocks = log_blocks
        # block 0 holds the metadata log head/tail; data log starts at 1
        self._log_alloc = BitmapAllocator(1, log_blocks - 1)
        self.allocators: Dict[int, BitmapAllocator] = {
            PM: BitmapAllocator(log_blocks, pm.num_blocks - log_blocks),
            SSD: BitmapAllocator(0, ssd.num_blocks),
            HDD: BitmapAllocator(0, hdd.num_blocks),
        }
        #: (ino, file_block) -> log block, in append (digest) order
        self._log_entries: "OrderedDict[Tuple[int, int], int]" = OrderedDict()
        self._digest_threshold = int(log_blocks * digest_threshold_fraction)
        #: static per-file placement ("always directed to the target
        #: device" in the paper's microbenchmark); None = capacity fill
        self.pin_target = pin_target
        #: digest/migration in flight => extent-tree partial lock charges
        self._tree_busy = False
        self.pair_stats: Dict[Tuple[str, str], PairStats] = {}

    # ------------------------------------------------------------------
    # metadata: everything goes through the PM operation log
    # ------------------------------------------------------------------

    def _log_meta_append(self, records: int) -> None:
        """Metadata log entry: one cache line per record + tail update."""
        for _ in range(records):
            self.clock.advance_ns(cal.STRATA_LOG_ENTRY_NS)
            self.pm.store(0, bytes(64))
            self.pm.flush_range(0, 64)
        self.pm.drain()

    def _record_namespace(self, records: List[MetaRecord]) -> None:
        self._log_meta_append(len(records))

    def _record_data_meta(self, inode: Inode, records: List[MetaRecord]) -> None:
        self._log_meta_append(1)

    # ------------------------------------------------------------------
    # data path: log-then-digest
    # ------------------------------------------------------------------

    def _charge_tree_lock(self) -> None:
        """Partial extent-tree lock: charged while a digest is racing."""
        if self._tree_busy:
            self.clock.advance_ns(cal.STRATA_TREE_LOCK_NS)

    def _read_block(self, inode: Inode, file_block: int) -> Optional[bytes]:
        self._charge_tree_lock()
        value = inode.blockmap.lookup(file_block)
        if value is None:
            return None
        device_index, block = decode(value)
        device = self.devices[device_index]
        if isinstance(device, PersistentMemoryDevice):
            return device.load(block * self.block_size, self.block_size)
        return device.read_blocks(block, 1)

    def _write_span(self, inode: Inode, offset: int, data: bytes) -> None:
        """Append every touched block to the PM log."""
        self._charge_tree_lock()
        bs = self.block_size
        pos = offset
        idx = 0
        while idx < len(data):
            fb, block_off = divmod(pos, bs)
            take = min(len(data) - idx, bs - block_off)
            if take == bs:
                content = bytes(data[idx : idx + take])
            else:
                base = self._read_block(inode, fb)
                page = bytearray(base if base is not None else bytes(bs))
                page[block_off : block_off + take] = data[idx : idx + take]
                content = bytes(page)
            self._append_to_log(inode, fb, content)
            pos += take
            idx += take
        if len(self._log_entries) >= self._digest_threshold:
            self.digest()

    def _append_to_log(self, inode: Inode, fb: int, content: bytes) -> None:
        try:
            log_block = self._log_alloc.alloc_block()
        except NoSpace:
            self.digest()
            log_block = self._log_alloc.alloc_block()
        addr = log_block * self.block_size
        self.pm.store(addr, content)
        self.pm.flush_range(addr, len(content))
        self.clock.advance_ns(cal.STRATA_LOG_ENTRY_NS)
        self._release_old(inode, fb)
        inode.blockmap.map_range(fb, 1, encode(PM, log_block))
        inode.allocated_blocks += 1
        self._log_entries[(inode.ino, fb)] = log_block
        self.stats.add("log_appends")

    def _release_old(self, inode: Inode, fb: int) -> None:
        """Free the superseded copy of a file block, wherever it lives."""
        value = inode.blockmap.lookup(fb)
        if value is None:
            return
        device_index, block = decode(value)
        if device_index == PM and block < self._log_blocks:
            self._log_alloc.free_run(block, 1)
            self._log_entries.pop((inode.ino, fb), None)
        else:
            self.allocators[device_index].free_run(block, 1)
        inode.allocated_blocks -= 1
        inode.blockmap.unmap_range(fb, 1)

    # ------------------------------------------------------------------
    # digest: drain the log to final devices in small units
    # ------------------------------------------------------------------

    def _placement_device(self) -> int:
        """Final home for digested data: pinned target or capacity fill."""
        if self.pin_target is not None:
            return DEVICE_INDICES[self.pin_target]
        for device_index in (PM, SSD, HDD):
            if self.allocators[device_index].free_blocks > 0:
                return device_index
        raise NoSpace("strata: all devices full")

    def digest(self, max_entries: Optional[int] = None) -> int:
        """Move log entries to their final device; returns blocks digested."""
        digested = 0
        self._tree_busy = True
        self.stats.add("digests")
        try:
            while self._log_entries:
                if max_entries is not None and digested >= max_entries:
                    break
                unit: List[Tuple[Tuple[int, int], int]] = []
                while self._log_entries and len(unit) < cal.STRATA_DIGEST_UNIT_BLOCKS:
                    unit.append(self._log_entries.popitem(last=False))
                target = self._placement_device()
                # per-unit extent-tree partial lock
                self.clock.advance_ns(cal.STRATA_TREE_LOCK_NS)
                live: List[Tuple[Inode, int, bytes]] = []
                for (ino, fb), log_block in unit:
                    data = self.pm.load(
                        log_block * self.block_size, self.block_size
                    )
                    self._log_alloc.free_run(log_block, 1)
                    inode = self.inodes.maybe_get(ino)
                    if inode is not None:
                        live.append((inode, fb, data))
                    digested += 1
                self._digest_unit_out(target, live)
                self.stats.add("digest_units")
            self.stats.add("blocks_digested", digested)
            return digested
        finally:
            self._tree_busy = False

    def _digest_unit_out(
        self,
        target: int,
        live: List[Tuple[Inode, int, bytes]],
        batch_blocks: Optional[int] = None,
    ) -> None:
        """Write one digest unit to its final device, log-entry batched."""
        if not live:
            return
        if batch_blocks is None:
            batch_blocks = cal.STRATA_DEVICE_BATCH_BLOCKS
        runs = self.allocators[target].alloc_extent(len(live))
        index = 0
        for run_start, run_len in runs:
            offset = 0
            while offset < run_len:
                batch = min(batch_blocks, run_len - offset)
                datas = [live[index + offset + i][2] for i in range(batch)]
                self._write_device_blocks(target, run_start + offset, datas)
                offset += batch
            for i in range(run_len):
                inode, fb, _ = live[index + i]
                inode.blockmap.map_range(fb, 1, encode(target, run_start + i))
            index += run_len

    def _write_device_blocks(
        self, device_index: int, start_block: int, datas: List[bytes]
    ) -> None:
        device = self.devices[device_index]
        payload = b"".join(datas)
        if isinstance(device, PersistentMemoryDevice):
            addr = start_block * self.block_size
            device.store(addr, payload)
            device.flush_range(addr, len(payload))
        else:
            device.write_blocks(start_block, payload)

    def _write_device_block(self, device_index: int, block: int, data: bytes) -> None:
        self._write_device_blocks(device_index, block, [data])

    # ------------------------------------------------------------------
    # migration: static routing (Figure 3a)
    # ------------------------------------------------------------------

    def supports_migration(self, src: str, dst: str) -> bool:
        pair = (DEVICE_INDICES[src], DEVICE_INDICES[dst])
        return pair in SUPPORTED_MIGRATIONS

    def migrate_blocks(
        self, path: str, block_start: int, count: int, src: str, dst: str
    ) -> int:
        """Lock-based migration of a block range between devices.

        Raises :class:`MigrationUnsupported` for pairs Strata has not
        wired — everything except PM→SSD and PM→HDD.
        """
        src_index = DEVICE_INDICES[src]
        dst_index = DEVICE_INDICES[dst]
        if (src_index, dst_index) not in SUPPORTED_MIGRATIONS:
            raise MigrationUnsupported(
                f"strata: no migration path {src} -> {dst} (N/S)"
            )
        inode = self._resolve(path)
        stats = self.pair_stats.setdefault((src, dst), PairStats())
        started_ns = self.clock.now_ns
        moved = 0
        self._tree_busy = True
        try:
            pending: List[Tuple[int, int]] = []
            for fb in range(block_start, block_start + count):
                value = inode.blockmap.lookup(fb)
                if value is None:
                    continue
                device_index, block = decode(value)
                if device_index != src_index:
                    continue
                if device_index == PM and block < self._log_blocks:
                    continue  # still in the log; digest owns it
                pending.append((fb, block))
            for unit_start in range(0, len(pending), cal.STRATA_DIGEST_UNIT_BLOCKS):
                unit = pending[unit_start : unit_start + cal.STRATA_DIGEST_UNIT_BLOCKS]
                # lock the extent-tree region covering the unit
                self.clock.advance_ns(cal.STRATA_TREE_LOCK_NS)
                live: List[Tuple[Inode, int, bytes]] = []
                for fb, src_block in unit:
                    data = self._read_device_block(src_index, src_block)
                    self.allocators[src_index].free_run(src_block, 1)
                    live.append((inode, fb, data))
                    moved += 1
                self._digest_unit_out(
                    dst_index, live, batch_blocks=cal.STRATA_MIGRATION_BATCH_BLOCKS
                )
        finally:
            self._tree_busy = False
        stats.bytes_moved += moved * self.block_size
        stats.busy_ns += self.clock.now_ns - started_ns
        stats.migrations += 1
        self.stats.add("blocks_migrated", moved)
        return moved

    def _read_device_block(self, device_index: int, block: int) -> bytes:
        device = self.devices[device_index]
        if isinstance(device, PersistentMemoryDevice):
            return device.load(block * self.block_size, self.block_size)
        return device.read_blocks(block, 1)

    def throughput_matrix(self) -> Dict[Tuple[str, str], float]:
        return {
            pair: stats.throughput_mb_s()
            for pair, stats in self.pair_stats.items()
            if stats.bytes_moved
        }

    # ------------------------------------------------------------------
    # remaining NativeFileSystem hooks
    # ------------------------------------------------------------------

    def _punch_range(self, inode: Inode, start_block: int, count: int) -> None:
        for fb in range(start_block, start_block + count):
            self._release_old(inode, fb)
        self._log_meta_append(1)

    def _fsync_inode(self, inode: Inode) -> None:
        # the log is on PM and flushed at append; fsync is a fence
        self.pm.drain()
        for device in self.devices.values():
            device.flush()

    def _total_data_blocks(self) -> int:
        return sum(a.count for a in self.allocators.values())

    def _free_data_blocks(self) -> int:
        return sum(a.free_blocks for a in self.allocators.values())

    @property
    def log_utilization(self) -> float:
        return self._log_alloc.used_blocks / self._log_alloc.count

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Strata's log lives on PM and every append is flushed before the
        operation returns, so (like NOVA) a crash loses nothing that a
        completed operation wrote."""
        self._open_handles.clear()
        self._tree_busy = False

    def recover(self) -> None:
        """Charge the mount-time log scan; state is already durable."""
        scan_entries = max(1, self.stats.get("log_appends"))
        self.pm.load(0, min(scan_entries * 64, self.pm.capacity_bytes))
