"""Strata baseline: monolithic tiered file system (log + digest design)."""

from repro.strata.fs import (
    DEVICE_INDICES,
    DEVICE_NAMES,
    SUPPORTED_MIGRATIONS,
    StrataFileSystem,
)

__all__ = [
    "DEVICE_INDICES",
    "DEVICE_NAMES",
    "SUPPORTED_MIGRATIONS",
    "StrataFileSystem",
]
