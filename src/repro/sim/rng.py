"""Deterministic random number generation for workloads and policies.

Everything random in the reproduction (workload offsets, policy tie-breaks,
fault injection) draws from a :class:`DeterministicRng` seeded explicitly,
so every test and benchmark run is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, explicitly seeded wrapper around :class:`random.Random`.

    The wrapper exists so that (a) call sites never reach for the global
    ``random`` module by accident, and (b) substreams can be forked for
    independent components without correlating their draws.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent substream keyed by ``label``.

        Python's built-in ``hash`` on strings is salted per process, which
        would make forked streams (and any goldens derived from them)
        irreproducible across runs; crc32 gives a stable derivation.
        """
        sub_seed = (self._seed * 0x9E3779B1 + zlib.crc32(label.encode("utf-8"))) & 0x7FFF_FFFF_FFFF_FFFF
        return DeterministicRng(sub_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def sample_offsets(self, span: int, count: int, align: int = 1) -> List[int]:
        """``count`` uniform offsets in [0, span), aligned to ``align``."""
        if span <= 0:
            raise ValueError("span must be positive")
        if align <= 0:
            raise ValueError("alignment must be positive")
        slots = max(1, span // align)
        return [self._random.randrange(slots) * align for _ in range(count)]

    def bytes(self, n: int) -> bytes:
        """``n`` pseudo-random bytes."""
        return self._random.randbytes(n)
