"""Cooperative task runner used for asynchronous data movement.

The paper's Mux performs block migration *asynchronously* with respect to
user requests (§2.4).  In a deterministic simulation we model asynchrony
with cooperative tasks: a migration is a Python generator that yields
between steps, and a :class:`TaskRunner` interleaves those steps with user
operations.  Tests can drive the interleaving explicitly to construct the
exact races the OCC Synchronizer must survive.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator, List, Optional

Step = Generator[None, None, Any]


class Task:
    """One cooperative task wrapping a generator."""

    _next_id = 1

    def __init__(self, gen: Step, name: str = "") -> None:
        self._gen = gen
        self.name = name or f"task-{Task._next_id}"
        Task._next_id += 1
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None

    def step(self) -> bool:
        """Advance one step; returns True while the task is still running."""
        if self.done:
            return False
        try:
            next(self._gen)
            return True
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return False
        except BaseException as exc:  # surfaced via .error, re-raised by join
            self.done = True
            self.error = exc
            return False

    def join(self) -> Any:
        """Run the task to completion; returns its result or re-raises."""
        while self.step():
            pass
        if self.error is not None:
            raise self.error
        return self.result


class TaskRunner:
    """Round-robin scheduler for cooperative tasks.

    ``spawn`` registers a generator; ``tick`` advances every live task by
    one step; ``drain`` runs everything to completion.  Errors raised inside
    a task are stored on the task and re-raised when the runner drains (so a
    failed background migration cannot vanish silently).
    """

    def __init__(self) -> None:
        self._tasks: List[Task] = []

    def spawn(self, gen: Step, name: str = "") -> Task:
        task = Task(gen, name=name)
        self._tasks.append(task)
        return task

    @property
    def pending(self) -> int:
        return sum(1 for t in self._tasks if not t.done)

    def tick(self) -> int:
        """Advance every live task by one step; returns live-task count."""
        live = 0
        for task in list(self._tasks):
            if task.step():
                live += 1
        self._reap()
        return live

    def drain(self) -> None:
        """Run all tasks to completion, re-raising the first task error."""
        while self.tick():
            pass
        self._raise_errors()

    def _reap(self) -> None:
        finished = [t for t in self._tasks if t.done and t.error is None]
        for task in finished:
            self._tasks.remove(task)

    def _raise_errors(self) -> None:
        for task in list(self._tasks):
            if task.error is not None:
                self._tasks.remove(task)
                raise task.error

    def __iter__(self) -> Iterator[Task]:
        return iter(list(self._tasks))


def run_interleaved(task: Task, between_steps: Callable[[int], None]) -> Any:
    """Run ``task`` to completion, calling ``between_steps(i)`` after step i.

    This is the deterministic race harness used by OCC tests: the callback
    issues user writes at chosen points *during* a migration.
    """
    i = 0
    while task.step():
        between_steps(i)
        i += 1
    if task.error is not None:
        raise task.error
    return task.result
