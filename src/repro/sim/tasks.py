"""Cooperative task runner used for asynchronous data movement.

The paper's Mux performs block migration *asynchronously* with respect to
user requests (§2.4).  In a deterministic simulation we model asynchrony
with cooperative tasks: a migration is a Python generator that yields
between steps, and a :class:`TaskRunner` interleaves those steps with user
operations.  Tests can drive the interleaving explicitly to construct the
exact races the OCC Synchronizer must survive.

With the parallel I/O engine, a task can additionally run on *background
time*: give it the shared clock and ``background=True`` and every step
executes inside a background clock frame.  The task keeps its own time
cursor (it resumes where its previous step completed, or at the global
now if the world has moved on), its device accesses land on the devices'
reserved background channels, and the global clock is only advanced when
someone synchronizes with the task (``join``/``drain``) — so background
copies overlap foreground ops instead of stalling them.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.clock import SimClock

Step = Generator[None, None, Any]


class Task:
    """One cooperative task wrapping a generator.

    Anonymous tasks get the name ``"task"``; :meth:`TaskRunner.spawn`
    assigns per-runner sequential names instead, so task-name-dependent
    traces are reproducible regardless of what ran earlier in the process.
    """

    def __init__(
        self,
        gen: Step,
        name: str = "",
        clock: Optional["SimClock"] = None,
        background: bool = False,
    ) -> None:
        self._gen = gen
        self.name = name or "task"
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._clock = clock
        self._background = background and clock is not None
        #: where this task's last step completed on its own timeline
        self.cursor_ns: Optional[int] = None

    def step(self) -> bool:
        """Advance one step; returns True while the task is still running."""
        if self.done:
            return False
        if not self._background:
            return self._step_inner()
        clock = self._clock
        # resume where the previous step completed, unless the foreground
        # has already moved past it (a task cannot run in the past)
        start = clock.now_ns
        if self.cursor_ns is not None and self.cursor_ns > start:
            start = self.cursor_ns
        clock.push_frame(start, background=True)
        try:
            return self._step_inner()
        finally:
            self.cursor_ns = clock.pop_frame()

    def _step_inner(self) -> bool:
        try:
            next(self._gen)
            return True
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return False
        except BaseException as exc:  # surfaced via .error, re-raised by join
            self.done = True
            self.error = exc
            return False

    def join(self) -> Any:
        """Run the task to completion; returns its result or re-raises.

        Joining a background task is a synchronization point: the caller
        waits for it, so the global clock advances to its completion.
        """
        while self.step():
            pass
        if self._background and self.cursor_ns is not None:
            self._clock.advance_to(self.cursor_ns)
        if self.error is not None:
            raise self.error
        return self.result


class TaskRunner:
    """Round-robin scheduler for cooperative tasks.

    ``spawn`` registers a generator; ``tick`` advances every live task by
    one step; ``drain`` runs everything to completion.  Errors raised inside
    a task are stored on the task and re-raised when the runner drains (so a
    failed background migration cannot vanish silently).

    Task names are per-runner sequential (``task-1``, ``task-2``, ...), so
    traces keyed on names don't depend on process-global state.  A runner
    constructed with a clock can host background tasks (see :class:`Task`);
    ``drain`` then advances the global clock to the latest background
    completion, because draining means the caller waited for everything.
    """

    def __init__(self, clock: Optional["SimClock"] = None) -> None:
        self._tasks: List[Task] = []
        self._next_id = 1
        self._clock = clock
        #: latest background-task completion seen so far
        self.completed_until_ns = 0

    def spawn(self, gen: Step, name: str = "", background: bool = False) -> Task:
        if not name:
            name = f"task-{self._next_id}"
        self._next_id += 1
        task = Task(gen, name=name, clock=self._clock, background=background)
        self._tasks.append(task)
        return task

    @property
    def pending(self) -> int:
        return sum(1 for t in self._tasks if not t.done)

    def tick(self, gate: Optional[Callable[[Task], bool]] = None) -> int:
        """Advance every live task by one step; returns live-task count.

        ``gate(task)`` may veto stepping a live task this tick (it still
        counts as live) — the hook drivers use to hold back background
        tasks whose time cursor has raced ahead of the global clock.
        """
        live = 0
        for task in list(self._tasks):
            if gate is not None and not task.done and not gate(task):
                live += 1
                continue
            if task.step():
                live += 1
        self._reap()
        return live

    def drain(self) -> None:
        """Run all tasks to completion, re-raising the first task error.

        Synchronization point: the global clock catches up to the latest
        background completion before control returns.
        """
        while self.tick():
            pass
        if self._clock is not None and self.completed_until_ns:
            self._clock.advance_to(self.completed_until_ns)
        self._raise_errors()

    def _reap(self) -> None:
        finished = [t for t in self._tasks if t.done and t.error is None]
        for task in finished:
            if task.cursor_ns is not None and task.cursor_ns > self.completed_until_ns:
                self.completed_until_ns = task.cursor_ns
            self._tasks.remove(task)

    def _raise_errors(self) -> None:
        for task in list(self._tasks):
            if task.error is not None:
                if (
                    task.cursor_ns is not None
                    and task.cursor_ns > self.completed_until_ns
                ):
                    self.completed_until_ns = task.cursor_ns
                self._tasks.remove(task)
                raise task.error

    def __iter__(self) -> Iterator[Task]:
        return iter(list(self._tasks))


def run_interleaved(task: Task, between_steps: Callable[[int], None]) -> Any:
    """Run ``task`` to completion, calling ``between_steps(i)`` after step i.

    This is the deterministic race harness used by OCC tests: the callback
    issues user writes at chosen points *during* a migration.
    """
    i = 0
    while task.step():
        between_steps(i)
        i += 1
    if task.error is not None:
        raise task.error
    return task.result
