"""Deterministic virtual clock used by every simulated component.

The whole reproduction runs on *simulated* time: devices, file systems and
Mux itself charge their latencies to a shared :class:`SimClock` instead of
sleeping.  This makes every benchmark deterministic and machine-independent
— throughput and latency numbers depend only on the timing models, never on
the host CPU.

Time is kept in integer **nanoseconds** internally to avoid floating-point
drift when billions of small charges are accumulated; the public API speaks
seconds (floats) for convenience.
"""

from __future__ import annotations

from typing import Optional

NSEC_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounding to nearest)."""
    return round(value * NSEC_PER_SEC)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * 1_000)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * 1_000_000)


class SimClock:
    """A monotonically advancing virtual clock.

    All simulated components share one instance.  Components call
    :meth:`charge` (or :meth:`advance_ns`) to account for the time their
    operation takes; measurement harnesses bracket a workload with
    :meth:`now_ns` reads.

    **Frames** are the parallel-I/O-engine extension: :meth:`push_frame`
    starts an independent time cursor, so code running inside the frame
    charges its latency to the cursor instead of the global clock.  The
    caller pops the frame, collects its completion time, and folds the
    overlap back in with :meth:`advance_to` — typically as the *max* over
    several sibling frames (sub-requests of one split op on different
    devices) or not at all (background work that only meets the foreground
    on the device timelines).  Frames move *time accounting* only; state
    mutations still happen in program order, which is what keeps the
    simulation deterministic.
    """

    __slots__ = ("_now_ns", "_frames", "_background_depth")

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_ns = start_ns
        #: active frame cursors, innermost last: [cursor_ns, background]
        self._frames: list = []
        self._background_depth = 0

    # -- reading ---------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds (frame cursor if active)."""
        if self._frames:
            return self._frames[-1][0]
        return self._now_ns

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.now_ns / NSEC_PER_SEC

    @property
    def global_now_ns(self) -> int:
        """The global (foreground) time, ignoring any active frame."""
        return self._now_ns

    # -- frames ----------------------------------------------------------

    @property
    def in_frame(self) -> bool:
        """True while at least one frame is active."""
        return bool(self._frames)

    @property
    def in_background(self) -> bool:
        """True while the innermost active frames include a background one.

        Devices use this to steer a request onto their reserved
        background channels.
        """
        return self._background_depth > 0

    def push_frame(self, start_ns: Optional[int] = None, background: bool = False) -> int:
        """Start a new time frame at ``start_ns`` (default: current instant).

        Returns the frame's starting cursor.  All ``advance_*`` calls and
        ``now_ns`` reads operate on this cursor until :meth:`pop_frame`.
        """
        start = self.now_ns if start_ns is None else start_ns
        if start < 0:
            raise ValueError("frame cannot start before t=0")
        self._frames.append([start, background])
        if background:
            self._background_depth += 1
        return start

    def pop_frame(self) -> int:
        """End the innermost frame; returns its completion cursor.

        The global clock is *not* advanced — the caller decides how the
        frame's completion folds back (``advance_to(max(...))`` for
        overlapped foreground sub-requests, nothing for background work).
        """
        if not self._frames:
            raise RuntimeError("pop_frame with no active frame")
        cursor, background = self._frames.pop()
        if background:
            self._background_depth -= 1
        return cursor

    def suspend_frames(self) -> tuple:
        """Escape every active frame onto the global (foreground) clock.

        Returns an opaque token for :meth:`resume_frames`.  Used by code
        that must charge foreground time no matter what context it runs
        in — e.g. a pessimistic lock taken by a background migration
        blocks every user operation, so the locked copy stalls the global
        clock instead of hiding on background time.
        """
        token = (self._frames, self._background_depth)
        self._frames = []
        self._background_depth = 0
        return token

    def resume_frames(self, token: tuple) -> None:
        """Reinstate frames suspended by :meth:`suspend_frames`.

        Frames cannot resume in the past: any cursor behind the global
        clock (which the foreground work just advanced) is pulled up.
        """
        frames, depth = token
        for frame in frames:
            if frame[0] < self._now_ns:
                frame[0] = self._now_ns
        self._frames = frames
        self._background_depth = depth

    # -- advancing -------------------------------------------------------

    def advance_ns(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` nanoseconds; returns new time.

        Raises ``ValueError`` on negative deltas — simulated time never
        runs backwards.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by {delta_ns}ns")
        if self._frames:
            frame = self._frames[-1]
            frame[0] += delta_ns
            return frame[0]
        self._now_ns += delta_ns
        return self._now_ns

    def advance_to(self, t_ns: int) -> int:
        """Advance to ``t_ns`` if it is in the future; never moves backwards.

        This is the completion-time primitive: a device hands back "your
        request completes at C" and the caller syncs with ``advance_to(C)``.
        """
        if self._frames:
            frame = self._frames[-1]
            if t_ns > frame[0]:
                frame[0] = t_ns
            return frame[0]
        if t_ns > self._now_ns:
            self._now_ns = t_ns
        return self._now_ns

    def charge(self, delta_seconds: float) -> int:
        """Advance the clock by ``delta_seconds`` (float seconds)."""
        return self.advance_ns(seconds(delta_seconds))

    def charge_us(self, delta_us: float) -> int:
        """Advance the clock by ``delta_us`` microseconds."""
        return self.advance_ns(microseconds(delta_us))

    # -- measurement helper ----------------------------------------------

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch started at the current instant."""
        return Stopwatch(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(t={self.now():.9f}s)"


class Stopwatch:
    """Measures elapsed simulated time between two instants."""

    __slots__ = ("_clock", "_start_ns")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_ns = clock.now_ns

    def restart(self) -> None:
        """Reset the start point to now."""
        self._start_ns = self._clock.now_ns

    @property
    def elapsed_ns(self) -> int:
        return self._clock.now_ns - self._start_ns

    @property
    def elapsed(self) -> float:
        """Elapsed simulated seconds since start/restart."""
        return self.elapsed_ns / NSEC_PER_SEC
