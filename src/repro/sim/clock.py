"""Deterministic virtual clock used by every simulated component.

The whole reproduction runs on *simulated* time: devices, file systems and
Mux itself charge their latencies to a shared :class:`SimClock` instead of
sleeping.  This makes every benchmark deterministic and machine-independent
— throughput and latency numbers depend only on the timing models, never on
the host CPU.

Time is kept in integer **nanoseconds** internally to avoid floating-point
drift when billions of small charges are accumulated; the public API speaks
seconds (floats) for convenience.
"""

from __future__ import annotations

NSEC_PER_SEC = 1_000_000_000


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounding to nearest)."""
    return round(value * NSEC_PER_SEC)


def microseconds(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * 1_000)


def milliseconds(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * 1_000_000)


class SimClock:
    """A monotonically advancing virtual clock.

    All simulated components share one instance.  Components call
    :meth:`charge` (or :meth:`advance_ns`) to account for the time their
    operation takes; measurement harnesses bracket a workload with
    :meth:`now_ns` reads.
    """

    __slots__ = ("_now_ns",)

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_ns = start_ns

    # -- reading ---------------------------------------------------------

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / NSEC_PER_SEC

    # -- advancing -------------------------------------------------------

    def advance_ns(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` nanoseconds; returns new time.

        Raises ``ValueError`` on negative deltas — simulated time never
        runs backwards.
        """
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by {delta_ns}ns")
        self._now_ns += delta_ns
        return self._now_ns

    def charge(self, delta_seconds: float) -> int:
        """Advance the clock by ``delta_seconds`` (float seconds)."""
        return self.advance_ns(seconds(delta_seconds))

    def charge_us(self, delta_us: float) -> int:
        """Advance the clock by ``delta_us`` microseconds."""
        return self.advance_ns(microseconds(delta_us))

    # -- measurement helper ----------------------------------------------

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch started at the current instant."""
        return Stopwatch(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(t={self.now():.9f}s)"


class Stopwatch:
    """Measures elapsed simulated time between two instants."""

    __slots__ = ("_clock", "_start_ns")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start_ns = clock.now_ns

    def restart(self) -> None:
        """Reset the start point to now."""
        self._start_ns = self._clock.now_ns

    @property
    def elapsed_ns(self) -> int:
        return self._clock.now_ns - self._start_ns

    @property
    def elapsed(self) -> float:
        """Elapsed simulated seconds since start/restart."""
        return self.elapsed_ns / NSEC_PER_SEC
