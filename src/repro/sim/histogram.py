"""Latency histograms for simulated operations.

Benchmarks and examples use these to report tail latencies (p50/p99/max)
without storing every sample: values land in exponentially sized buckets,
so memory stays constant while percentile error stays within one bucket
(~7% with the default growth factor).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class LatencyHistogram:
    """Exponential-bucket histogram over nanosecond latencies."""

    def __init__(self, growth: float = 1.07, min_ns: int = 10) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1")
        self.growth = growth
        self.min_ns = min_ns
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self.min_seen_ns = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError("negative latency")
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if self.min_seen_ns is None or latency_ns < self.min_seen_ns:
            self.min_seen_ns = latency_ns
        index = self._bucket_index(latency_ns)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def _bucket_index(self, latency_ns: int) -> int:
        if latency_ns < self.min_ns:
            return 0
        return 1 + int(math.log(latency_ns / self.min_ns) / self._log_growth)

    def _bucket_upper_ns(self, index: int) -> float:
        if index == 0:
            return float(self.min_ns)
        return self.min_ns * self.growth**index

    # -- queries -----------------------------------------------------------

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket containing the given quantile (ns)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        need = math.ceil(self.count * fraction)
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= need:
                return min(self._bucket_upper_ns(index), float(self.max_ns))
        return float(self.max_ns)

    def summary_us(self) -> Dict[str, float]:
        """Mean/median/p99/max in microseconds."""
        return {
            "count": self.count,
            "mean_us": self.mean_ns / 1000.0,
            "p50_us": self.percentile(0.50) / 1000.0,
            "p99_us": self.percentile(0.99) / 1000.0,
            "max_us": self.max_ns / 1000.0,
        }

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same parameters) into this one."""
        if other.growth != self.growth or other.min_ns != self.min_ns:
            raise ValueError("histogram parameters differ")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total_ns += other.total_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        if other.min_seen_ns is not None:
            if self.min_seen_ns is None:
                self.min_seen_ns = other.min_seen_ns
            else:
                self.min_seen_ns = min(self.min_seen_ns, other.min_seen_ns)

    def buckets(self) -> List[Tuple[float, int]]:
        """(bucket upper bound ns, count) pairs, ascending."""
        return [
            (self._bucket_upper_ns(i), self._buckets[i])
            for i in sorted(self._buckets)
        ]
