"""Latency histograms for simulated operations.

Benchmarks and examples use these to report tail latencies (p50/p99/p999)
without storing every sample: values land in exponentially sized buckets,
so memory stays constant while percentile error stays within one bucket
(~7% with the default growth factor).  Percentile queries interpolate
linearly *within* the winning bucket, so a quantile moves smoothly with
the sample distribution instead of quantizing to bucket boundaries —
which matters for p999 sweeps, where adjacent load points would otherwise
snap to the same bucket upper bound.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class LatencyHistogram:
    """Exponential-bucket histogram over nanosecond latencies."""

    def __init__(self, growth: float = 1.07, min_ns: int = 10) -> None:
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1")
        self.growth = growth
        self.min_ns = min_ns
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0
        self.min_seen_ns = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError("negative latency")
        self.count += 1
        self.total_ns += latency_ns
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if self.min_seen_ns is None or latency_ns < self.min_seen_ns:
            self.min_seen_ns = latency_ns
        index = self._bucket_index(latency_ns)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def _bucket_index(self, latency_ns: int) -> int:
        if latency_ns < self.min_ns:
            return 0
        return 1 + int(math.log(latency_ns / self.min_ns) / self._log_growth)

    def _bucket_upper_ns(self, index: int) -> float:
        if index == 0:
            return float(self.min_ns)
        return self.min_ns * self.growth**index

    def _bucket_lower_ns(self, index: int) -> float:
        if index == 0:
            return 0.0
        return self.min_ns * self.growth ** (index - 1)

    # -- queries -----------------------------------------------------------

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """The given quantile in ns, interpolated within its bucket.

        The quantile's rank is located in the exponential bucket list, then
        placed linearly between the bucket's bounds according to how far
        into the bucket's population the rank falls.  The result is clamped
        to the observed [min_seen_ns, max_ns] envelope, so ``percentile(1.0)``
        is exactly the maximum and a single-bucket histogram cannot report
        a value outside what was recorded.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        if self.count == 0:
            return 0.0
        need = math.ceil(self.count * fraction)
        seen = 0
        for index in sorted(self._buckets):
            here = self._buckets[index]
            if seen + here >= need:
                lower = self._bucket_lower_ns(index)
                upper = self._bucket_upper_ns(index)
                value = lower + (upper - lower) * (need - seen) / here
                value = min(value, float(self.max_ns))
                if self.min_seen_ns is not None:
                    value = max(value, float(self.min_seen_ns))
                return value
            seen += here
        return float(self.max_ns)

    def percentiles_ns(self, *fractions: float) -> Dict[str, int]:
        """Rounded-integer quantiles keyed ``p50``/``p99``/``p999``-style.

        Integer ns keeps the values fingerprint-safe (exact comparison in
        the golden drift guard) while staying well within one bucket of
        the true quantile.
        """
        out: Dict[str, int] = {}
        for fraction in fractions:
            key = f"p{fraction * 100:g}".replace(".", "")
            out[key] = round(self.percentile(fraction))
        return out

    def summary_us(self) -> Dict[str, float]:
        """Mean/median/p99/max in microseconds."""
        return {
            "count": self.count,
            "mean_us": self.mean_ns / 1000.0,
            "p50_us": self.percentile(0.50) / 1000.0,
            "p99_us": self.percentile(0.99) / 1000.0,
            "max_us": self.max_ns / 1000.0,
        }

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same parameters) into this one."""
        if other.growth != self.growth or other.min_ns != self.min_ns:
            raise ValueError("histogram parameters differ")
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self.total_ns += other.total_ns
        self.max_ns = max(self.max_ns, other.max_ns)
        if other.min_seen_ns is not None:
            if self.min_seen_ns is None:
                self.min_seen_ns = other.min_seen_ns
            else:
                self.min_seen_ns = min(self.min_seen_ns, other.min_seen_ns)

    def buckets(self) -> List[Tuple[float, int]]:
        """(bucket upper bound ns, count) pairs, ascending."""
        return [
            (self._bucket_upper_ns(i), self._buckets[i])
            for i in sorted(self._buckets)
        ]
