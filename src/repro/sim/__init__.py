"""Deterministic simulation substrate: virtual clock, counters, RNG, tasks."""

from repro.sim.clock import NSEC_PER_SEC, SimClock, Stopwatch, microseconds, milliseconds, seconds
from repro.sim.histogram import LatencyHistogram
from repro.sim.rng import DeterministicRng
from repro.sim.stats import CounterSet, DeviceStats
from repro.sim.tasks import Task, TaskRunner, run_interleaved

__all__ = [
    "NSEC_PER_SEC",
    "SimClock",
    "Stopwatch",
    "microseconds",
    "milliseconds",
    "seconds",
    "LatencyHistogram",
    "DeterministicRng",
    "CounterSet",
    "DeviceStats",
    "Task",
    "TaskRunner",
    "run_interleaved",
]
