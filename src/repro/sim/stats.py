"""Operation counters shared by devices, file systems and Mux.

Every component exposes a :class:`CounterSet` so benchmarks and tests can
inspect exactly how much work flowed where (bytes written per device, ops
per file system, migration retries, cache hits, ...).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class CounterSet:
    """A named bag of monotonically increasing integer counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)

    def add(self, name: str, amount: int = 1) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease ({amount})")
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never touched)."""
        return self._counters.get(name, 0)

    def reset(self) -> None:
        """Zero every counter."""
        self._counters.clear()

    def snapshot(self) -> Dict[str, int]:
        """An independent copy of all counters."""
        return dict(self._counters)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counters.items()))

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CounterSet({inner})"


class DeviceStats:
    """I/O accounting for one simulated device."""

    __slots__ = (
        "read_ops",
        "write_ops",
        "flush_ops",
        "bytes_read",
        "bytes_written",
        "busy_ns",
        "seeks",
    )

    def __init__(self) -> None:
        self.read_ops = 0
        self.write_ops = 0
        self.flush_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_ns = 0
        self.seeks = 0

    def record_read(self, nbytes: int, latency_ns: int, ops: int = 1) -> None:
        """Account ``nbytes``/``latency_ns``; ``ops`` lets a batched call
        stand in for ``ops`` logical operations without skewing counters."""
        self.read_ops += ops
        self.bytes_read += nbytes
        self.busy_ns += latency_ns

    def record_write(self, nbytes: int, latency_ns: int, ops: int = 1) -> None:
        self.write_ops += ops
        self.bytes_written += nbytes
        self.busy_ns += latency_ns

    def record_flush(self, latency_ns: int, ops: int = 1) -> None:
        self.flush_ops += ops
        self.busy_ns += latency_ns

    def record_seek(self) -> None:
        self.seeks += 1

    def reset(self) -> None:
        self.__init__()

    @property
    def total_ops(self) -> int:
        return self.read_ops + self.write_ops + self.flush_ops

    def snapshot(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeviceStats(reads={self.read_ops}, writes={self.write_ops}, "
            f"bytes_read={self.bytes_read}, bytes_written={self.bytes_written})"
        )
