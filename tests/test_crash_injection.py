"""Fault injection: crash at an arbitrary device-write boundary.

A wrapper device raises :class:`CrashTriggered` after a budgeted number of
writes, simulating power loss at that exact point in the I/O stream.  The
file system then runs recovery, after which:

* fsck must report a consistent file system, and
* the one-sided durability contract holds: every byte that was fsync'd
  and never modified afterwards must read back exactly; bytes the
  application modified after the last completed fsync may hold either the
  old or the new value (or zeros, if the size update didn't commit) — but
  never garbage.

Hypothesis drives the crash point across the whole workload, so every
write boundary eventually gets hit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devices.hdd import HardDiskDrive
from repro.devices.ssd import SolidStateDrive
from repro.errors import CrashTriggered
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.tools.fsck import check_native_fs

MIB = 1024 * 1024
BS = 4096


class CrashyDevice:
    """Proxy device that cuts the power after ``budget`` block writes."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.budget = None  # None = never crash
        self.writes_seen = 0

    def arm(self, budget: int) -> None:
        self.budget = budget
        self.writes_seen = 0

    def disarm(self) -> None:
        self.budget = None

    def write_blocks(self, block_no, data):
        self.writes_seen += 1
        if self.budget is not None and self.writes_seen > self.budget:
            raise CrashTriggered(f"power lost at device write #{self.writes_seen}")
        return self._inner.write_blocks(block_no, data)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def make_fs(kind: str):
    clock = SimClock()
    if kind == "xfs":
        crashy = CrashyDevice(SolidStateDrive("ssd", 32 * MIB, clock))
        return XfsFileSystem("xfs", crashy, clock), crashy
    crashy = CrashyDevice(HardDiskDrive("hdd", 32 * MIB, clock))
    return Ext4FileSystem("ext4", crashy, clock), crashy


class DurabilityOracle:
    """Tracks what the app wrote, what each completed fsync made durable."""

    def __init__(self, fs) -> None:
        self.fs = fs
        #: what the application has written so far (per path)
        self.written: dict = {}
        #: snapshot of `written` at the last fsync that *returned*
        self.synced: dict = {}
        self.deleted: set = set()

    def write(self, handle, path, offset, data) -> None:
        self.fs.write(handle, offset, data)
        buf = bytearray(self.written.get(path, b""))
        if len(buf) < offset + len(data):
            buf.extend(bytes(offset + len(data) - len(buf)))
        buf[offset : offset + len(data)] = data
        self.written[path] = bytes(buf)

    def fsync(self, handle, path) -> None:
        self.fs.fsync(handle)
        self.synced[path] = self.written[path]

    def unlink(self, path) -> None:
        self.fs.unlink(path)
        self.written.pop(path, None)
        self.deleted.add(path)

    def verify_after_recovery(self) -> None:
        for path, old in self.synced.items():
            new = self.written.get(path)
            if not self.fs.exists(path):
                assert path in self.deleted, f"{path} vanished without unlink"
                continue
            got = self.fs.read_file(path)
            lengths = {len(old)}
            if new is not None:
                lengths.add(len(new))
            assert len(got) in lengths, (path, len(got), lengths)
            for i, byte in enumerate(got):
                allowed = set()
                if i < len(old):
                    allowed.add(old[i])
                if new is not None and i < len(new):
                    allowed.add(new[i])
                allowed.add(0)  # un-committed size growth reads as holes
                assert byte in allowed, (path, i, byte, allowed)
                # the hard guarantee: stable fsync'd bytes must match
                if (
                    i < len(old)
                    and (new is None or (i < len(new) and new[i] == old[i]))
                ):
                    assert byte == old[i], (path, i, "fsync'd byte lost")


def workload(oracle: DurabilityOracle) -> None:
    fs = oracle.fs
    a = fs.create("/a")
    oracle.write(a, "/a", 0, b"A" * (8 * BS))
    oracle.fsync(a, "/a")
    oracle.write(a, "/a", 2 * BS, b"B" * BS)
    oracle.fsync(a, "/a")
    b = fs.create("/b")
    oracle.write(b, "/b", 0, b"C" * (4 * BS))
    oracle.fsync(b, "/b")
    oracle.write(a, "/a", 6 * BS, b"D" * (2 * BS))
    oracle.fsync(a, "/a")
    fs.close(a)
    fs.close(b)
    oracle.unlink("/b")
    fs.sync()


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(crash_after=st.integers(0, 80), kind=st.sampled_from(["xfs", "ext4"]))
def test_crash_at_any_write_boundary_is_recoverable(crash_after, kind):
    fs, crashy = make_fs(kind)
    oracle = DurabilityOracle(fs)
    crashy.arm(crash_after)
    crashed = False
    try:
        workload(oracle)
    except CrashTriggered:
        crashed = True
    finally:
        crashy.disarm()
    if crashed:
        fs.crash()
        fs.recover()
    # structural consistency, crash or not
    assert check_native_fs(fs) == []
    oracle.verify_after_recovery()
    # and the recovered file system remains fully usable
    handle = fs.create("/post-crash")
    fs.write(handle, 0, b"alive")
    fs.fsync(handle)
    assert fs.read_file("/post-crash") == b"alive"
    fs.close(handle)


@pytest.mark.parametrize("kind", ["xfs", "ext4"])
def test_crash_with_zero_budget_loses_everything_cleanly(kind):
    fs, crashy = make_fs(kind)
    crashy.arm(0)
    with pytest.raises(CrashTriggered):
        handle = fs.create("/f")  # namespace txn needs a journal write
        fs.write(handle, 0, b"x")
        fs.fsync(handle)
    crashy.disarm()
    fs.crash()
    fs.recover()
    assert check_native_fs(fs) == []
    assert fs.readdir("/") == []
