"""Fault injection: crash at an arbitrary device-write boundary.

A wrapper device raises :class:`CrashTriggered` after a budgeted number of
writes, simulating power loss at that exact point in the I/O stream.  The
file system then runs recovery, after which:

* fsck must report a consistent file system, and
* the one-sided durability contract holds: every byte that was fsync'd
  and never modified afterwards must read back exactly; bytes the
  application modified after the last completed fsync may hold either the
  old or the new value (or zeros, if the size update didn't commit) — but
  never garbage.

Hypothesis drives the crash point across the whole workload, so every
write boundary eventually gets hit.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import MigrationOrder
from repro.devices.hdd import HardDiskDrive
from repro.devices.ssd import SolidStateDrive
from repro.errors import CrashTriggered
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.stack import build_stack
from repro.tools.fsck import check_mux, check_native_fs, reconcile_cache

MIB = 1024 * 1024
BS = 4096


class CrashyDevice:
    """Proxy device that cuts the power after ``budget`` block writes."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.budget = None  # None = never crash
        self.writes_seen = 0

    def arm(self, budget: int) -> None:
        self.budget = budget
        self.writes_seen = 0

    def disarm(self) -> None:
        self.budget = None

    def write_blocks(self, block_no, data):
        self.writes_seen += 1
        if self.budget is not None and self.writes_seen > self.budget:
            raise CrashTriggered(f"power lost at device write #{self.writes_seen}")
        return self._inner.write_blocks(block_no, data)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def make_fs(kind: str):
    clock = SimClock()
    if kind == "xfs":
        crashy = CrashyDevice(SolidStateDrive("ssd", 32 * MIB, clock))
        return XfsFileSystem("xfs", crashy, clock), crashy
    crashy = CrashyDevice(HardDiskDrive("hdd", 32 * MIB, clock))
    return Ext4FileSystem("ext4", crashy, clock), crashy


class DurabilityOracle:
    """Tracks what the app wrote, what each completed fsync made durable."""

    def __init__(self, fs) -> None:
        self.fs = fs
        #: what the application has written so far (per path)
        self.written: dict = {}
        #: snapshot of `written` at the last fsync that *returned*
        self.synced: dict = {}
        self.deleted: set = set()

    def write(self, handle, path, offset, data) -> None:
        self.fs.write(handle, offset, data)
        buf = bytearray(self.written.get(path, b""))
        if len(buf) < offset + len(data):
            buf.extend(bytes(offset + len(data) - len(buf)))
        buf[offset : offset + len(data)] = data
        self.written[path] = bytes(buf)

    def fsync(self, handle, path) -> None:
        self.fs.fsync(handle)
        self.synced[path] = self.written[path]

    def unlink(self, path) -> None:
        self.fs.unlink(path)
        self.written.pop(path, None)
        self.deleted.add(path)

    def verify_after_recovery(self) -> None:
        for path, old in self.synced.items():
            new = self.written.get(path)
            if not self.fs.exists(path):
                assert path in self.deleted, f"{path} vanished without unlink"
                continue
            got = self.fs.read_file(path)
            lengths = {len(old)}
            if new is not None:
                lengths.add(len(new))
            assert len(got) in lengths, (path, len(got), lengths)
            for i, byte in enumerate(got):
                allowed = set()
                if i < len(old):
                    allowed.add(old[i])
                if new is not None and i < len(new):
                    allowed.add(new[i])
                allowed.add(0)  # un-committed size growth reads as holes
                assert byte in allowed, (path, i, byte, allowed)
                # the hard guarantee: stable fsync'd bytes must match
                if (
                    i < len(old)
                    and (new is None or (i < len(new) and new[i] == old[i]))
                ):
                    assert byte == old[i], (path, i, "fsync'd byte lost")


def workload(oracle: DurabilityOracle) -> None:
    fs = oracle.fs
    a = fs.create("/a")
    oracle.write(a, "/a", 0, b"A" * (8 * BS))
    oracle.fsync(a, "/a")
    oracle.write(a, "/a", 2 * BS, b"B" * BS)
    oracle.fsync(a, "/a")
    b = fs.create("/b")
    oracle.write(b, "/b", 0, b"C" * (4 * BS))
    oracle.fsync(b, "/b")
    oracle.write(a, "/a", 6 * BS, b"D" * (2 * BS))
    oracle.fsync(a, "/a")
    fs.close(a)
    fs.close(b)
    oracle.unlink("/b")
    fs.sync()


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(crash_after=st.integers(0, 80), kind=st.sampled_from(["xfs", "ext4"]))
def test_crash_at_any_write_boundary_is_recoverable(crash_after, kind):
    fs, crashy = make_fs(kind)
    oracle = DurabilityOracle(fs)
    crashy.arm(crash_after)
    crashed = False
    try:
        workload(oracle)
    except CrashTriggered:
        crashed = True
    finally:
        crashy.disarm()
    if crashed:
        fs.crash()
        fs.recover()
    # structural consistency, crash or not
    assert check_native_fs(fs) == []
    oracle.verify_after_recovery()
    # and the recovered file system remains fully usable
    handle = fs.create("/post-crash")
    fs.write(handle, 0, b"alive")
    fs.fsync(handle)
    assert fs.read_file("/post-crash") == b"alive"
    fs.close(handle)


class TestMuxDestageCrash:
    """Power loss inside a write-back destage on the full tiered stack.

    A crash mid-destage is *not* a destage failure: nothing may enter the
    lost-interval ledger, and recovery plus cache reconciliation must
    restore a clean, usable stack.  Losses recorded *before* the crash
    live in the PM-resident ledger and must still be reported after it.
    """

    @staticmethod
    def _dirty_absorbed_file(stack, path="/hot", blocks=4):
        """A file demoted to HDD whose blocks are dirty in the SCM cache."""
        mux = stack.mux
        handle = mux.create(path)
        mux.write(handle, 0, bytes(blocks * BS))
        mux.fsync(handle)
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("hdd")
            )
        )
        mux.read(handle, 0, blocks * BS)
        for fb in range(blocks):
            mux.write(handle, fb * BS, bytes([0x60 + fb]) * BS)
        assert mux.cache.dirty_block_count == blocks
        return handle

    @staticmethod
    def _arm(device, budget: int) -> None:
        """Cut the power after ``budget`` further writes on ``device``."""
        real = type(device).write_blocks
        state = {"seen": 0}

        def crashy(block_no, data):
            state["seen"] += 1
            if state["seen"] > budget:
                raise CrashTriggered(
                    f"power lost at destage write #{state['seen']}"
                )
            return real(device, block_no, data)

        device.write_blocks = crashy

    def test_crash_mid_destage_reports_precrash_losses_not_the_crash(self):
        wb = build_stack(cache_write_back=True)
        mux = wb.mux
        handle = self._dirty_absorbed_file(wb)
        # a destage failure from before the outage sits in the ledger
        mux.cache._lost.setdefault(handle.ino, []).append((0, 1))
        self._arm(wb.filesystems["hdd"].device, 0)
        with pytest.raises(CrashTriggered):
            mux.fsync(handle)
        # a crash is not a loss: only the pre-crash entry is on record
        assert mux.cache.stats.get("destage_lost") == 0
        del wb.filesystems["hdd"].device.write_blocks
        mux.crash()
        mux.recover()
        for name, fs in wb.filesystems.items():
            assert check_native_fs(fs) == [], name
        # the PM-resident ledger survived the crash and is reported...
        assert any(
            "lost to a failed destage" in p for p in check_mux(mux, deep=True)
        )
        report: list = []
        reconcile_cache(mux, report)
        assert any("lost to a failed destage" in line for line in report)
        # ...and reconciliation drains it back to a clean stack
        assert check_mux(mux, deep=True) == []

    def test_crash_at_every_destage_write_boundary_is_recoverable(self):
        # census pass: count the media writes a clean destage issues
        probe = build_stack(cache_write_back=True)
        handle = self._dirty_absorbed_file(probe)
        device = probe.filesystems["hdd"].device
        real = type(device).write_blocks
        seen = []

        def spy(block_no, data):
            seen.append(block_no)
            return real(device, block_no, data)

        device.write_blocks = spy
        probe.mux.fsync(handle)
        assert len(seen) >= 2  # data writeback + journal commit
        # explore pass: crash at each interior boundary and recover
        for budget in range(1, len(seen)):
            wb = build_stack(cache_write_back=True)
            mux = wb.mux
            handle = self._dirty_absorbed_file(wb)
            self._arm(wb.filesystems["hdd"].device, budget)
            with pytest.raises(CrashTriggered):
                mux.fsync(handle)
            assert mux.cache.stats.get("destage_lost") == 0
            del wb.filesystems["hdd"].device.write_blocks
            mux.crash()
            mux.recover()
            for name, fs in wb.filesystems.items():
                assert check_native_fs(fs) == [], (budget, name)
            assert check_mux(mux, deep=True) == []
            reconcile_cache(mux, [])
            assert check_mux(mux, deep=True) == []
            # one-sided durability: each block holds the fsync'd zeros or
            # the absorbed overwrite — never garbage
            handle = mux.open("/hot")
            got = mux.read(handle, 0, 4 * BS)
            for fb in range(4):
                block = got[fb * BS : (fb + 1) * BS]
                assert block in (bytes(BS), bytes([0x60 + fb]) * BS), (
                    budget,
                    fb,
                )
            # the recovered stack remains fully usable
            post = mux.create("/post-crash")
            mux.write(post, 0, b"alive")
            mux.fsync(post)
            assert mux.read(post, 0, 5) == b"alive"


@pytest.mark.parametrize("kind", ["xfs", "ext4"])
def test_crash_with_zero_budget_loses_everything_cleanly(kind):
    fs, crashy = make_fs(kind)
    crashy.arm(0)
    with pytest.raises(CrashTriggered):
        handle = fs.create("/f")  # namespace txn needs a journal write
        fs.write(handle, 0, b"x")
        fs.fsync(handle)
    crashy.disarm()
    fs.crash()
    fs.recover()
    assert check_native_fs(fs) == []
    assert fs.readdir("/") == []
