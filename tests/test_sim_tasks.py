"""Unit tests for the cooperative task runner."""

import pytest

from repro.sim.tasks import Task, TaskRunner, run_interleaved


def counting(n, log, tag):
    for i in range(n):
        log.append((tag, i))
        yield
    return f"{tag}-done"


class TestTask:
    def test_join_returns_result(self):
        task = Task(counting(3, [], "a"))
        assert task.join() == "a-done"
        assert task.done

    def test_step_by_step(self):
        log = []
        task = Task(counting(2, log, "a"))
        assert task.step() is True
        assert task.step() is True
        assert task.step() is False
        assert log == [("a", 0), ("a", 1)]

    def test_step_after_done(self):
        task = Task(counting(0, [], "a"))
        task.join()
        assert task.step() is False

    def test_error_captured_and_reraised(self):
        def boom():
            yield
            raise RuntimeError("nope")

        task = Task(boom())
        task.step()
        assert task.step() is False
        assert isinstance(task.error, RuntimeError)
        with pytest.raises(RuntimeError):
            task.join()


class TestTaskRunner:
    def test_round_robin_interleaving(self):
        log = []
        runner = TaskRunner()
        runner.spawn(counting(2, log, "a"))
        runner.spawn(counting(2, log, "b"))
        runner.drain()
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_pending_count(self):
        runner = TaskRunner()
        runner.spawn(counting(3, [], "a"))
        assert runner.pending == 1
        runner.drain()
        assert runner.pending == 0

    def test_drain_raises_task_error(self):
        def boom():
            yield
            raise ValueError("x")

        runner = TaskRunner()
        runner.spawn(boom())
        with pytest.raises(ValueError):
            runner.drain()

    def test_finished_tasks_reaped(self):
        runner = TaskRunner()
        runner.spawn(counting(1, [], "a"))
        runner.drain()
        assert list(runner) == []


class TestRunInterleaved:
    def test_callback_between_steps(self):
        log = []
        task = Task(counting(3, log, "a"))
        result = run_interleaved(task, lambda i: log.append(("cb", i)))
        assert result == "a-done"
        assert log == [
            ("a", 0),
            ("cb", 0),
            ("a", 1),
            ("cb", 1),
            ("a", 2),
            ("cb", 2),
        ]

    def test_error_propagates(self):
        def boom():
            yield
            raise KeyError("k")

        with pytest.raises(KeyError):
            run_interleaved(Task(boom()), lambda i: None)
