"""Unit tests for the cooperative task runner."""

import pytest

from repro.sim.tasks import Task, TaskRunner, run_interleaved


def counting(n, log, tag):
    for i in range(n):
        log.append((tag, i))
        yield
    return f"{tag}-done"


class TestTask:
    def test_join_returns_result(self):
        task = Task(counting(3, [], "a"))
        assert task.join() == "a-done"
        assert task.done

    def test_step_by_step(self):
        log = []
        task = Task(counting(2, log, "a"))
        assert task.step() is True
        assert task.step() is True
        assert task.step() is False
        assert log == [("a", 0), ("a", 1)]

    def test_step_after_done(self):
        task = Task(counting(0, [], "a"))
        task.join()
        assert task.step() is False

    def test_error_captured_and_reraised(self):
        def boom():
            yield
            raise RuntimeError("nope")

        task = Task(boom())
        task.step()
        assert task.step() is False
        assert isinstance(task.error, RuntimeError)
        with pytest.raises(RuntimeError):
            task.join()


class TestTaskRunner:
    def test_round_robin_interleaving(self):
        log = []
        runner = TaskRunner()
        runner.spawn(counting(2, log, "a"))
        runner.spawn(counting(2, log, "b"))
        runner.drain()
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_pending_count(self):
        runner = TaskRunner()
        runner.spawn(counting(3, [], "a"))
        assert runner.pending == 1
        runner.drain()
        assert runner.pending == 0

    def test_drain_raises_task_error(self):
        def boom():
            yield
            raise ValueError("x")

        runner = TaskRunner()
        runner.spawn(boom())
        with pytest.raises(ValueError):
            runner.drain()

    def test_finished_tasks_reaped(self):
        runner = TaskRunner()
        runner.spawn(counting(1, [], "a"))
        runner.drain()
        assert list(runner) == []


class TestRunInterleaved:
    def test_callback_between_steps(self):
        log = []
        task = Task(counting(3, log, "a"))
        result = run_interleaved(task, lambda i: log.append(("cb", i)))
        assert result == "a-done"
        assert log == [
            ("a", 0),
            ("cb", 0),
            ("a", 1),
            ("cb", 1),
            ("a", 2),
            ("cb", 2),
        ]

    def test_error_propagates(self):
        def boom():
            yield
            raise KeyError("k")

        with pytest.raises(KeyError):
            run_interleaved(Task(boom()), lambda i: None)


class TestTaskNaming:
    def test_names_are_per_runner(self):
        # regression: Task used to hold a class-level counter, so names
        # depended on how many tasks *any* earlier test had spawned
        def gen():
            yield

        a, b = TaskRunner(), TaskRunner()
        assert a.spawn(gen()).name == "task-1"
        assert a.spawn(gen()).name == "task-2"
        assert b.spawn(gen()).name == "task-1"

    def test_explicit_name_still_counts(self):
        def gen():
            yield

        runner = TaskRunner()
        runner.spawn(gen(), name="mig-7-0")
        assert runner.spawn(gen()).name == "task-2"

    def test_bare_task_has_stable_name(self):
        def gen():
            yield

        assert Task(gen()).name == "task"


class TestBackgroundTasks:
    def _clock(self):
        from repro.sim.clock import SimClock

        return SimClock()

    def test_steps_run_on_background_time(self):
        clock = self._clock()

        def copy():
            for _ in range(3):
                clock.advance_ns(100)
                yield

        task = Task(copy(), clock=clock, background=True)
        while task.step():
            pass
        assert clock.now_ns == 0  # foreground never stalled
        assert task.cursor_ns == 300  # the task's own timeline advanced

    def test_cursor_resumes_across_steps(self):
        clock = self._clock()

        def copy():
            clock.advance_ns(100)
            yield
            clock.advance_ns(50)
            yield

        task = Task(copy(), clock=clock, background=True)
        task.step()
        clock.advance_ns(10)  # foreground does a little work meanwhile
        task.step()
        # second step resumed at cursor 100 (> global 10), not at 10
        assert task.cursor_ns == 150

    def test_task_cannot_run_in_the_past(self):
        clock = self._clock()

        def copy():
            clock.advance_ns(5)
            yield
            clock.advance_ns(5)
            yield

        task = Task(copy(), clock=clock, background=True)
        task.step()
        clock.advance_ns(1000)  # foreground races far ahead
        task.step()
        assert task.cursor_ns == 1005  # resumed at global now, not cursor 5

    def test_join_synchronizes_global_clock(self):
        clock = self._clock()

        def copy():
            clock.advance_ns(700)
            yield

        task = Task(copy(), clock=clock, background=True)
        task.join()
        assert clock.now_ns == 700

    def test_drain_synchronizes_global_clock(self):
        clock = self._clock()

        def copy(cost):
            clock.advance_ns(cost)
            yield

        runner = TaskRunner(clock=clock)
        runner.spawn(copy(300), background=True)
        runner.spawn(copy(900), background=True)
        runner.drain()
        assert clock.now_ns == 900  # max over tasks, not sum
