"""Unit tests for counters and device stats."""

import pytest

from repro.sim.stats import CounterSet, DeviceStats


class TestCounterSet:
    def test_starts_empty(self):
        counters = CounterSet()
        assert len(counters) == 0
        assert counters.get("anything") == 0

    def test_add(self):
        counters = CounterSet()
        counters.add("ops")
        counters.add("ops", 4)
        assert counters.get("ops") == 5

    def test_negative_rejected(self):
        counters = CounterSet()
        with pytest.raises(ValueError):
            counters.add("ops", -1)

    def test_snapshot_is_copy(self):
        counters = CounterSet()
        counters.add("a", 2)
        snap = counters.snapshot()
        counters.add("a")
        assert snap == {"a": 2}

    def test_reset(self):
        counters = CounterSet()
        counters.add("a")
        counters.reset()
        assert counters.get("a") == 0

    def test_iteration_sorted(self):
        counters = CounterSet()
        counters.add("b")
        counters.add("a")
        assert [k for k, _ in counters] == ["a", "b"]


class TestDeviceStats:
    def test_record_read(self):
        stats = DeviceStats()
        stats.record_read(4096, 1000)
        assert stats.read_ops == 1
        assert stats.bytes_read == 4096
        assert stats.busy_ns == 1000

    def test_record_write(self):
        stats = DeviceStats()
        stats.record_write(8192, 2000)
        assert stats.write_ops == 1
        assert stats.bytes_written == 8192

    def test_record_flush(self):
        stats = DeviceStats()
        stats.record_flush(500)
        assert stats.flush_ops == 1
        assert stats.busy_ns == 500

    def test_total_ops(self):
        stats = DeviceStats()
        stats.record_read(1, 1)
        stats.record_write(1, 1)
        stats.record_flush(1)
        assert stats.total_ops == 3

    def test_seeks(self):
        stats = DeviceStats()
        stats.record_seek()
        stats.record_seek()
        assert stats.seeks == 2

    def test_reset(self):
        stats = DeviceStats()
        stats.record_read(1, 1)
        stats.reset()
        assert stats.total_ops == 0

    def test_snapshot(self):
        stats = DeviceStats()
        stats.record_write(10, 7)
        snap = stats.snapshot()
        assert snap["write_ops"] == 1
        assert snap["bytes_written"] == 10
