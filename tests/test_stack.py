"""Stack assembly helper."""

import pytest

from repro.core.policies import TpfsPolicy
from repro.errors import InvalidArgument
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.stack import build_stack

MIB = 1024 * 1024


class TestBuildStack:
    def test_default_three_tiers(self):
        stack = build_stack()
        assert set(stack.tier_ids) == {"pm", "ssd", "hdd"}
        assert isinstance(stack.filesystems["pm"], NovaFileSystem)
        assert isinstance(stack.filesystems["ssd"], XfsFileSystem)
        assert isinstance(stack.filesystems["hdd"], Ext4FileSystem)

    def test_mux_mounted(self):
        stack = build_stack()
        fs, inner = stack.vfs.resolve("/mux/some/file")
        assert fs is stack.mux
        assert inner == "/some/file"

    def test_subset_of_tiers(self):
        stack = build_stack(tiers=["ssd"])
        assert list(stack.tier_ids) == ["ssd"]
        assert stack.mux.cache is None

    def test_custom_capacities(self):
        stack = build_stack(capacities={"pm": 8 * MIB})
        assert stack.devices["pm"].capacity_bytes == 8 * MIB

    def test_custom_policy(self):
        policy = TpfsPolicy()
        stack = build_stack(policy=policy)
        assert stack.mux.policy is policy

    def test_unknown_tier_rejected(self):
        with pytest.raises(InvalidArgument):
            build_stack(tiers=["tape"])

    def test_cache_provisioned_with_pm_and_slower_tier(self):
        stack = build_stack()
        assert stack.mux.cache is not None

    def test_shared_clock(self):
        stack = build_stack()
        assert stack.clock is stack.mux.clock
        for device in stack.devices.values():
            assert device.clock is stack.clock

    def test_end_to_end_through_vfs_mount(self):
        stack = build_stack()
        stack.vfs.write_file("/mux/hello.txt", b"via the vfs")
        assert stack.vfs.read_file("/mux/hello.txt") == b"via the vfs"

    def test_tier_id_lookup(self):
        stack = build_stack()
        assert stack.tier_id("pm") in stack.mux.tier_ids()
