"""Property-based test: every file system matches a flat reference model
under arbitrary interleavings of write / read / truncate / punch / fsync /
crash+recover.

The model is a plain bytearray; the system under test is a full file
system over a simulated device.  This is the single strongest correctness
check in the suite: it exercises sparse files, copy-on-write, delayed
allocation, the page cache, journaling and recovery together.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.ssd import SolidStateDrive
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock

MIB = 1024 * 1024
SPAN = 64 * 1024  # the file's working span for offsets

write_op = st.tuples(
    st.just("write"),
    st.integers(0, SPAN - 1),
    st.integers(1, 9000),
    st.integers(0, 255),
)
read_op = st.tuples(
    st.just("read"), st.integers(0, SPAN - 1), st.integers(1, 9000), st.just(0)
)
truncate_op = st.tuples(
    st.just("truncate"), st.integers(0, SPAN), st.just(0), st.just(0)
)
punch_op = st.tuples(
    st.just("punch"), st.integers(0, 15), st.integers(1, 4), st.just(0)
)
fsync_op = st.tuples(st.just("fsync"), st.just(0), st.just(0), st.just(0))

ops_strategy = st.lists(
    st.one_of(write_op, read_op, truncate_op, punch_op, fsync_op), max_size=30
)


def make_fs(kind: str):
    clock = SimClock()
    if kind == "nova":
        return NovaFileSystem("nova", PersistentMemoryDevice("pm", 16 * MIB, clock), clock)
    if kind == "xfs":
        return XfsFileSystem("xfs", SolidStateDrive("ssd", 16 * MIB, clock), clock)
    return Ext4FileSystem("ext4", HardDiskDrive("hdd", 16 * MIB, clock), clock)


def apply_ops(fs, ops, crash_at=None):
    """Run ops against fs and the bytearray model in lockstep."""
    model = bytearray()
    durable_model = bytearray()
    handle = fs.create("/f")
    bs = fs.block_size
    for index, (op, a, b, c) in enumerate(ops):
        if op == "write":
            data = bytes([c]) * b
            fs.write(handle, a, data)
            if len(model) < a + b:
                model.extend(bytes(a + b - len(model)))
            model[a : a + b] = data
        elif op == "read":
            expect = bytes(model[a : a + b])
            assert fs.read(handle, a, b) == expect
        elif op == "truncate":
            fs.truncate(handle, a)
            if a <= len(model):
                del model[a:]
            else:
                model.extend(bytes(a - len(model)))
        elif op == "punch":
            offset, length = a * bs, b * bs
            fs.punch_hole(handle, offset, length)
            if len(model) > offset:
                end = min(len(model), offset + length)
                model[offset:end] = bytes(end - offset)
        elif op == "fsync":
            fs.fsync(handle)
            durable_model = bytearray(model)
    return handle, model


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
@pytest.mark.parametrize("kind", ["nova", "xfs", "ext4"])
def test_fs_matches_reference_model(kind, ops):
    fs = make_fs(kind)
    handle, model = apply_ops(fs, ops)
    assert fs.getattr("/f").size == len(model)
    assert fs.read(handle, 0, len(model) + 10) == bytes(model)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
@pytest.mark.parametrize("kind", ["xfs", "ext4"])
def test_fsync_all_then_crash_preserves_model(kind, ops):
    """If we fsync after the whole op sequence, a crash loses nothing."""
    fs = make_fs(kind)
    handle, model = apply_ops(fs, ops)
    fs.fsync(handle)
    fs.crash()
    fs.recover()
    assert fs.getattr("/f").size == len(model)
    assert fs.read_file("/f") == bytes(model)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_nova_crash_anywhere_preserves_model(ops):
    """NOVA never needs the fsync: crash after any op sequence is safe."""
    fs = make_fs("nova")
    handle, model = apply_ops(fs, ops)
    fs.crash()
    fs.recover()
    assert fs.read_file("/f") == bytes(model)
