"""Unit tests for path utilities."""

import pytest

from repro.errors import InvalidArgument
from repro.vfs import path as vpath


class TestNormalize:
    def test_plain(self):
        assert vpath.normalize("/a/b") == "/a/b"

    def test_root(self):
        assert vpath.normalize("/") == "/"

    def test_double_slash(self):
        assert vpath.normalize("//a///b") == "/a/b"

    def test_dot(self):
        assert vpath.normalize("/a/./b") == "/a/b"

    def test_dotdot(self):
        assert vpath.normalize("/a/b/../c") == "/a/c"

    def test_trailing_slash(self):
        assert vpath.normalize("/a/b/") == "/a/b"

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgument):
            vpath.normalize("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgument):
            vpath.normalize("")

    def test_escape_root_rejected(self):
        with pytest.raises(InvalidArgument):
            vpath.normalize("/../x")


class TestSplitJoin:
    def test_split(self):
        assert vpath.split("/a/b/c") == ("/a/b", "c")

    def test_split_top_level(self):
        assert vpath.split("/a") == ("/", "a")

    def test_split_root(self):
        assert vpath.split("/") == ("/", "")

    def test_join(self):
        assert vpath.join("/a", "b", "c") == "/a/b/c"

    def test_join_normalizes(self):
        assert vpath.join("/a/", "/b/") == "/a/b"

    def test_basename_dirname(self):
        assert vpath.basename("/x/y") == "y"
        assert vpath.dirname("/x/y") == "/x"


class TestRelations:
    def test_components(self):
        assert vpath.components("/a/b") == ["a", "b"]
        assert vpath.components("/") == []

    def test_is_under(self):
        assert vpath.is_under("/a/b", "/a")
        assert vpath.is_under("/a", "/a")
        assert not vpath.is_under("/ab", "/a")
        assert vpath.is_under("/anything", "/")

    def test_relative_to(self):
        assert vpath.relative_to("/mnt/pm/a/b", "/mnt/pm") == "/a/b"
        assert vpath.relative_to("/mnt/pm", "/mnt/pm") == "/"
        assert vpath.relative_to("/a/b", "/") == "/a/b"

    def test_relative_to_not_under(self):
        with pytest.raises(InvalidArgument):
            vpath.relative_to("/x", "/y")

    def test_ancestors(self):
        assert vpath.ancestors("/a/b/c") == ["/", "/a", "/a/b"]
        assert vpath.ancestors("/a") == ["/"]
        assert vpath.ancestors("/") == []
