"""Tiering policies: placement rules, recency tracking, migration plans."""

import pytest

from repro.core.policies import (
    CHUNK_BLOCKS,
    HotColdPolicy,
    LruTieringPolicy,
    PinnedPolicy,
    TpfsPolicy,
)
from repro.core.policy import (
    FileView,
    PlacementRequest,
    TierState,
    fastest_with_room,
    make_policy,
    registered_policies,
)
from repro.devices.profile import DeviceKind
from repro.errors import PolicyError

MIB = 1024 * 1024


def tier(tier_id, rank, free, total=64 * MIB, kind=DeviceKind.SOLID_STATE):
    return TierState(
        tier_id=tier_id,
        name=f"t{tier_id}",
        rank=rank,
        kind=kind,
        free_bytes=free,
        total_bytes=total,
    )


def request(length=4096, ino=1, synchronous=False):
    return PlacementRequest(
        path="/f",
        ino=ino,
        offset=0,
        length=length,
        file_size=0,
        is_append=True,
        synchronous=synchronous,
    )


THREE_TIERS = [
    tier(0, 0, 32 * MIB, kind=DeviceKind.PERSISTENT_MEMORY),
    tier(1, 1, 48 * MIB, kind=DeviceKind.SOLID_STATE),
    tier(2, 2, 60 * MIB, kind=DeviceKind.HARD_DISK),
]


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_policies()
        for expected in ("lru", "tpfs", "hotcold", "pinned"):
            assert expected in names

    def test_make_policy(self):
        policy = make_policy("lru", high_watermark=0.8, low_watermark=0.6)
        assert isinstance(policy, LruTieringPolicy)
        assert policy.high_watermark == 0.8

    def test_unknown_policy(self):
        with pytest.raises(PolicyError):
            make_policy("nonexistent")


class TestFastestWithRoom:
    def test_prefers_fastest(self):
        assert fastest_with_room(THREE_TIERS, 1024).tier_id == 0

    def test_skips_full_tier(self):
        tiers = [tier(0, 0, 100), tier(1, 1, 32 * MIB)]
        assert fastest_with_room(tiers, 4096).tier_id == 1

    def test_no_room_anywhere(self):
        tiers = [tier(0, 0, 10, total=100)]
        with pytest.raises(PolicyError):
            fastest_with_room(tiers, 10**9)


class TestLruPolicy:
    def test_places_on_fastest(self):
        policy = LruTieringPolicy()
        assert policy.place_write(request(), THREE_TIERS) == 0

    def test_watermark_validation(self):
        with pytest.raises(PolicyError):
            LruTieringPolicy(high_watermark=0.5, low_watermark=0.9)

    def test_demotes_coldest_from_overfull_tier(self):
        policy = LruTieringPolicy(
            high_watermark=0.5, low_watermark=0.4, promote_on_access=False
        )
        # tier 0 is 75% full -> over the watermark
        tiers = [
            tier(0, 0, 16 * MIB, total=64 * MIB),
            tier(1, 1, 64 * MIB, total=64 * MIB),
        ]
        cold = FileView(
            ino=1,
            path="/cold",
            size=CHUNK_BLOCKS * 4096,
            runs=[(0, CHUNK_BLOCKS, 0)],
        )
        hot = FileView(
            ino=2,
            path="/hot",
            size=CHUNK_BLOCKS * 4096,
            runs=[(0, CHUNK_BLOCKS, 0)],
        )
        policy.on_access(1, 0, CHUNK_BLOCKS, 0, "write", 1.0)
        policy.on_access(2, 0, CHUNK_BLOCKS, 0, "write", 2.0)  # hot is recent
        orders = policy.plan_migrations(tiers, [cold, hot])
        assert orders
        first = orders[0]
        assert first.ino == 1  # coldest chunk demoted first
        assert first.src_tier == 0
        assert first.dst_tier == 1

    def test_promote_on_read(self):
        policy = LruTieringPolicy()
        tiers = THREE_TIERS
        policy.on_access(5, 0, 8, tier_id=2, kind="read", now=1.0)
        view = FileView(ino=5, path="/f", size=8 * 4096, runs=[(0, 8, 2)])
        orders = policy.plan_migrations(tiers, [view])
        promotes = [o for o in orders if o.reason == "promote-on-access"]
        assert promotes
        assert promotes[0].src_tier == 2
        assert promotes[0].dst_tier == 1

    def test_no_demotion_below_watermark(self):
        policy = LruTieringPolicy(promote_on_access=False)
        orders = policy.plan_migrations(THREE_TIERS, [])
        assert orders == []

    def test_slowest_tier_never_demotes(self):
        policy = LruTieringPolicy(
            high_watermark=0.1, low_watermark=0.05, promote_on_access=False
        )
        tiers = [tier(0, 0, 1 * MIB, total=64 * MIB)]
        policy.on_access(1, 0, CHUNK_BLOCKS, 0, "write", 1.0)
        view = FileView(ino=1, path="/f", size=0, runs=[(0, CHUNK_BLOCKS, 0)])
        assert policy.plan_migrations(tiers, [view]) == []

    def test_forget_clears_state(self):
        policy = LruTieringPolicy()
        policy.on_access(1, 0, 8, 2, "read", 1.0)
        policy.forget(1)
        assert policy.plan_migrations(THREE_TIERS, []) == []


class TestTpfsPolicy:
    def test_small_writes_to_pm(self):
        policy = TpfsPolicy()
        assert policy.place_write(request(length=4096), THREE_TIERS) == 0

    def test_medium_writes_to_ssd(self):
        policy = TpfsPolicy()
        assert policy.place_write(request(length=512 * 1024), THREE_TIERS) == 1

    def test_large_writes_to_hdd(self):
        policy = TpfsPolicy()
        assert policy.place_write(request(length=8 * MIB), THREE_TIERS) == 2

    def test_synchronous_forces_pm(self):
        policy = TpfsPolicy()
        assert (
            policy.place_write(request(length=8 * MIB, synchronous=True), THREE_TIERS)
            == 0
        )

    def test_history_smooths_decisions(self):
        policy = TpfsPolicy(history_window=4)
        for _ in range(4):
            policy.place_write(request(length=8 * MIB, ino=9), THREE_TIERS)
        # one small write amid a large-write history stays on the large tier
        assert policy.place_write(request(length=1024, ino=9), THREE_TIERS) == 2

    def test_full_tier_overflows_downhill(self):
        policy = TpfsPolicy()
        tiers = [
            tier(0, 0, 100, kind=DeviceKind.PERSISTENT_MEMORY),
            tier(1, 1, 48 * MIB),
        ]
        assert policy.place_write(request(length=4096), tiers) == 1


class TestHotColdPolicy:
    def test_hot_file_promoted(self):
        policy = HotColdPolicy(hot_threshold=3.0)
        for _ in range(5):
            policy.on_access(1, 0, 4, 2, "read", 1.0)
        view = FileView(ino=1, path="/f", size=4 * 4096, runs=[(0, 4, 2)])
        orders = policy.plan_migrations(THREE_TIERS, [view])
        assert orders
        assert orders[0].dst_tier == 0
        assert orders[0].reason == "hot"

    def test_cold_file_demoted(self):
        policy = HotColdPolicy(cold_threshold=0.9, decay=0.5)
        policy.on_access(1, 0, 4, 0, "read", 1.0)
        view = FileView(ino=1, path="/f", size=4 * 4096, runs=[(0, 4, 0)])
        # first plan decays 1.0 -> 0.5; second sees 0.5 <= 0.9 -> demote
        policy.plan_migrations(THREE_TIERS, [view])
        orders = policy.plan_migrations(THREE_TIERS, [view])
        demotes = [o for o in orders if o.reason == "cold"]
        assert demotes
        assert demotes[0].dst_tier == 2

    def test_untouched_file_ignored(self):
        policy = HotColdPolicy()
        view = FileView(ino=1, path="/f", size=4 * 4096, runs=[(0, 4, 1)])
        assert policy.plan_migrations(THREE_TIERS, [view]) == []


class TestPinnedPolicy:
    def test_pins(self):
        policy = PinnedPolicy(2)
        assert policy.place_write(request(), THREE_TIERS) == 2

    def test_unknown_tier_rejected(self):
        policy = PinnedPolicy(9)
        with pytest.raises(PolicyError):
            policy.place_write(request(), THREE_TIERS)


class TestCustomPolicyRegistration:
    def test_user_policy_plugs_in(self):
        from repro.core.policy import Policy, register_policy

        name = "test-custom-policy"

        @register_policy(name)
        class EveryOtherPolicy(Policy):
            def __init__(self):
                self.flip = False

            def place_write(self, request, tiers):
                self.flip = not self.flip
                return tiers[0].tier_id if self.flip else tiers[-1].tier_id

        policy = make_policy(name)
        assert policy.place_write(request(), THREE_TIERS) == 0
        assert policy.place_write(request(), THREE_TIERS) == 2

    def test_duplicate_registration_rejected(self):
        from repro.core.policy import Policy, register_policy

        with pytest.raises(PolicyError):

            @register_policy("lru")
            class Clash(Policy):
                def place_write(self, request, tiers):
                    return 0
