"""Integration tests for the parallel I/O engine.

Covers the three overlap surfaces the engine introduces — sub-requests of
one split op across tiers, requests across a device's channels, and
background work (migration copies) against foreground time — plus the
serial ablation, the pessimistic-lock foreground stall, and fault
latching/retry through overlapped dispatch.
"""

import pytest

from repro.bench.workloads import striped_reads
from repro.core import calibration as cal
from repro.core.health import HealthState
from repro.core.policy import MigrationOrder
from repro.core.scheduler import IoScheduler
from repro.devices.faults import FaultConfig
from repro.errors import TierUnavailable
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


def _stack(parallel: bool, **kwargs):
    return build_stack(
        enable_cache=False, scheduler=IoScheduler(parallel=parallel), **kwargs
    )


def _drop_caches(stack):
    for fs in stack.filesystems.values():
        cache = getattr(fs, "page_cache", None)
        if cache is not None:
            cache.drop_clean()


def _split_file(stack, blocks=64):
    """A file whose second half lives on the ssd tier."""
    mux = stack.mux
    handle = mux.create("/split")
    mux.write(handle, 0, bytes(blocks * BS))
    mux.engine.migrate_now(
        MigrationOrder(
            handle.ino,
            blocks // 2,
            blocks // 2,
            stack.tier_id("pm"),
            stack.tier_id("ssd"),
        )
    )
    return mux, handle, blocks


class TestSplitOpOverlap:
    def test_split_read_completes_at_max_not_sum(self):
        def run(parallel):
            stack = _stack(parallel, tiers=["pm", "ssd"])
            mux, handle, blocks = _split_file(stack)
            _drop_caches(stack)
            t0 = stack.clock.now_ns
            mux.read(handle, 0, blocks * BS)
            return stack.clock.now_ns - t0

        serial = run(False)
        parallel = run(True)
        assert parallel < serial

    def test_parallel_striped_read_at_least_2x_faster(self):
        """The ISSUE acceptance bar: >=2x on a cross-tier striped read."""

        def run(parallel):
            stack = _stack(parallel, tiers=["pm", "ssd"])
            tier_ids = [stack.tier_id(n) for n in ("pm", "ssd")]
            return striped_reads(
                stack, tier_ids, file_bytes=2 * MIB, reads=2
            ).mean_ns

        serial = run(False)
        parallel = run(True)
        assert parallel * 2 <= serial

    def test_parallel_read_returns_same_data(self):
        payloads = {}
        for parallel in (False, True):
            stack = _stack(parallel, tiers=["pm", "ssd"])
            mux, handle, blocks = _split_file(stack)
            expected = bytes(blocks * BS)
            mux.write(handle, 10 * BS, b"\x11" * BS)
            mux.write(handle, 50 * BS, b"\x22" * (2 * BS))
            expected = (
                expected[: 10 * BS]
                + b"\x11" * BS
                + expected[11 * BS : 50 * BS]
                + b"\x22" * (2 * BS)
                + expected[52 * BS :]
            )
            _drop_caches(stack)
            payloads[parallel] = mux.read(handle, 0, blocks * BS)
            assert payloads[parallel] == expected
        assert payloads[True] == payloads[False]

    def test_serial_ablation_unchanged_by_engine(self):
        # parallel=False must reproduce the pre-engine serial model: the
        # same op sequence on two serial stacks is bit-identical
        def run():
            stack = _stack(False)
            mux, handle, blocks = _split_file(stack)
            _drop_caches(stack)
            mux.read(handle, 0, blocks * BS)
            return stack.clock.now_ns

        assert run() == run()

    def test_determinism_across_runs(self):
        def run():
            stack = _stack(True, tiers=["pm", "ssd"])
            tier_ids = [stack.tier_id(n) for n in ("pm", "ssd")]
            striped_reads(stack, tier_ids, file_bytes=1 * MIB, reads=2)
            return (
                stack.clock.now_ns,
                {n: d.stats.snapshot() for n, d in sorted(stack.devices.items())},
                {n: d.timeline.snapshot() for n, d in sorted(stack.devices.items())},
                stack.mux.scheduler.snapshot(),
            )

        assert run() == run()


class TestBackgroundMigration:
    def _prepare(self, stack, blocks=256):
        mux = stack.mux
        handle = mux.create("/mig")
        mux.write(handle, 0, bytes(blocks * BS))
        return mux, handle, blocks

    def test_copy_runs_on_background_time(self):
        stack = _stack(True)
        mux, handle, blocks = self._prepare(stack)
        t0 = stack.clock.now_ns
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        while task.step():
            pass
        stalled = stack.clock.now_ns - t0
        assert task.result.moved_blocks == blocks
        copy_span = task.cursor_ns - t0
        # the 1 MiB copy ran on the task's own timeline; the foreground
        # clock moved by far less than the copy took
        assert stalled * 10 < copy_span

    def test_drain_synchronizes_to_copy_completion(self):
        stack = _stack(True)
        mux, handle, blocks = self._prepare(stack)
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        while task.step():
            pass
        assert stack.clock.now_ns < task.cursor_ns
        mux.engine.drain()
        assert stack.clock.now_ns >= task.cursor_ns

    def test_foreground_reads_overlap_background_copy(self):
        stack = _stack(True)
        mux, handle, blocks = self._prepare(stack)
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        latencies = []
        while task.step():
            t0 = stack.clock.now_ns
            data = mux.read(handle, 0, BS)
            latencies.append(stack.clock.now_ns - t0)
            assert data == bytes(BS)
        # every interleaved foreground read stayed at PM-class latency
        # (the copy contends only for reserved background channels)
        assert max(latencies) < 100_000

    def test_serial_mode_migrations_stay_foreground(self):
        stack = _stack(False)
        mux, handle, blocks = self._prepare(stack)
        t0 = stack.clock.now_ns
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        while task.step():
            pass
        # the serial ablation charges the copy straight to the global clock
        assert stack.clock.now_ns > t0
        assert task.cursor_ns is None

    def test_lock_fallback_stalls_foreground(self):
        def run(force_lock):
            stack = _stack(True)
            mux, handle, blocks = self._prepare(stack)
            mux.engine.occ.force_lock = force_lock
            t0 = stack.clock.now_ns
            task = mux.engine.submit(
                MigrationOrder(
                    handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
                )
            )
            while task.step():
                pass
            assert task.result.moved_blocks == blocks
            assert task.result.lock_fallback == force_lock
            return stack.clock.now_ns - t0

        occ_stall = run(False)
        lock_stall = run(True)
        # a pessimistic lock blocks the user, so the locked copy charges
        # foreground time even though the task itself is background
        assert occ_stall * 10 < lock_stall
        assert lock_stall > cal.LOCK_FALLBACK_NS


class TestFaultsThroughParallelDispatch:
    def _faulty_split_stack(self, config, seed=7):
        stack = build_stack(
            enable_cache=False,
            scheduler=IoScheduler(parallel=True),
            faults={"ssd": config},
            fault_seed=seed,
        )
        mux, handle, blocks = (None, None, 64)
        mux = stack.mux
        handle = mux.create("/split")
        mux.write(handle, 0, bytes(blocks * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino,
                blocks // 2,
                blocks // 2,
                stack.tier_id("pm"),
                stack.tier_id("ssd"),
            )
        )
        return stack, mux, handle, blocks

    def test_transient_fault_in_overlapped_subrequest_retries(self):
        stack, mux, handle, blocks = self._faulty_split_stack(
            FaultConfig(read_error_p=0.3, transient_fraction=1.0)
        )
        _drop_caches(stack)
        data = mux.read(handle, 0, blocks * BS)
        assert data == bytes(blocks * BS)
        # retries and their simulated backoff were charged inside the
        # sub-request's frame, not lost
        assert mux.stats.get("fault_retries") > 0
        assert mux.stats.get("fault_backoff_ns") > 0
        assert not stack.clock.in_frame  # frame stack unwound cleanly

    def test_persistent_fault_in_overlapped_subrequest_latches(self):
        stack, mux, handle, blocks = self._faulty_split_stack(
            FaultConfig(read_error_p=1.0, transient_fraction=0.0)
        )
        ssd_health = stack.mux.registry.get(stack.tier_id("ssd")).health
        from repro.core.health import HEALTH_SUSPECT_ERRORS

        for _ in range(HEALTH_SUSPECT_ERRORS):
            _drop_caches(stack)
            with pytest.raises(TierUnavailable):
                mux.read(handle, 0, blocks * BS)
        # the faults fired inside overlapped frames and still latched
        assert ssd_health.state is HealthState.SUSPECT
        assert not stack.clock.in_frame  # fault path popped its frame
        # the pm-resident half is still readable after the failure
        assert mux.read(handle, 0, (blocks // 2) * BS) == bytes((blocks // 2) * BS)

    def test_repeated_failures_take_tier_offline(self):
        stack, mux, handle, blocks = self._faulty_split_stack(
            FaultConfig(read_error_p=1.0, transient_fraction=0.0)
        )
        ssd_health = stack.mux.registry.get(stack.tier_id("ssd")).health
        for _ in range(8):
            _drop_caches(stack)
            with pytest.raises(TierUnavailable):
                mux.read(handle, 0, blocks * BS)
            if ssd_health.state is HealthState.OFFLINE:
                break
        assert ssd_health.state is HealthState.OFFLINE
        assert not stack.clock.in_frame
