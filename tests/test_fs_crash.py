"""Crash-consistency tests: the write-ahead contract, end to end.

For the journaled file systems (XFS, Ext4): everything fsync'd survives a
crash; everything not fsync'd may be lost; journal replay is idempotent.
For NOVA: everything survives, fsync or not (§3.1's flush-on-write path).
"""

import pytest

from repro.vfs.interface import OpenFlags

BS = 4096


@pytest.fixture(params=["xfs", "ext4"])
def jfs(request, xfs, ext4):
    return {"xfs": xfs, "ext4": ext4}[request.param]


def crash_and_recover(fs):
    fs.crash()
    fs.recover()


class TestDurability:
    def test_fsynced_data_survives(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"KEEP" * 1024)
        jfs.fsync(handle)
        crash_and_recover(jfs)
        assert jfs.read_file("/f") == b"KEEP" * 1024

    def test_unsynced_data_lost(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"SYNCED")
        jfs.fsync(handle)
        jfs.write(handle, 0, b"VOLATI")
        crash_and_recover(jfs)
        assert jfs.read_file("/f") == b"SYNCED"

    def test_unsynced_new_file_has_no_content(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"never synced")
        crash_and_recover(jfs)
        # the create was journaled (namespace op), the data was not
        assert jfs.exists("/f")
        assert jfs.getattr("/f").size == 0

    def test_namespace_ops_survive_without_fsync(self, jfs):
        jfs.mkdir("/d")
        jfs.write_file("/d/a", b"")
        jfs.rename("/d/a", "/d/b")
        crash_and_recover(jfs)
        assert jfs.readdir("/d") == ["b"]

    def test_unlink_survives(self, jfs):
        jfs.write_file("/f", b"x")
        jfs.unlink("/f")
        crash_and_recover(jfs)
        assert not jfs.exists("/f")

    def test_fsynced_sparse_layout_survives(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 10 * BS, b"tail")
        jfs.fsync(handle)
        crash_and_recover(jfs)
        handle = jfs.open("/f", OpenFlags.RDONLY)
        assert jfs.read(handle, 0, 4) == bytes(4)
        assert jfs.read(handle, 10 * BS, 4) == b"tail"
        jfs.close(handle)

    def test_truncate_survives_after_fsync(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"z" * (4 * BS))
        jfs.fsync(handle)
        jfs.truncate(handle, 5)
        jfs.fsync(handle)
        crash_and_recover(jfs)
        assert jfs.getattr("/f").size == 5


class TestRecoveryMechanics:
    def test_double_crash_recover(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"stable")
        jfs.fsync(handle)
        crash_and_recover(jfs)
        crash_and_recover(jfs)
        assert jfs.read_file("/f") == b"stable"

    def test_replay_idempotent(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"abc")
        jfs.fsync(handle)
        jfs.crash()
        jfs.recover()
        jfs.recover()  # replaying twice must not corrupt anything
        assert jfs.read_file("/f") == b"abc"

    def test_allocator_rebuilt_consistently(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, bytes(32 * BS))
        jfs.fsync(handle)
        free_before = jfs.statfs().free_blocks
        crash_and_recover(jfs)
        assert jfs.statfs().free_blocks == free_before

    def test_crash_after_checkpoint(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, b"checkpointed")
        jfs.fsync(handle)
        jfs.checkpoint()
        crash_and_recover(jfs)
        assert jfs.read_file("/f") == b"checkpointed"

    def test_writes_after_recovery_work(self, jfs):
        jfs.write_file("/f", b"pre")
        handle = jfs.open("/f")
        jfs.fsync(handle)
        jfs.close(handle)
        crash_and_recover(jfs)
        handle = jfs.open("/f")
        jfs.write(handle, 3, b"-post")
        jfs.fsync(handle)
        assert jfs.read_file("/f") == b"pre-post"
        jfs.close(handle)

    def test_mixed_synced_and_unsynced_files(self, jfs):
        durable = jfs.create("/durable")
        volatile = jfs.create("/volatile")
        jfs.write(durable, 0, b"D" * 100)
        jfs.write(volatile, 0, b"V" * 100)
        jfs.fsync(durable)
        crash_and_recover(jfs)
        assert jfs.read_file("/durable") == b"D" * 100
        assert jfs.getattr("/volatile").size == 0


class TestNovaCrash:
    def test_everything_survives(self, nova):
        handle = nova.create("/f")
        nova.write(handle, 0, b"no fsync, still durable")
        nova.crash()
        nova.recover()
        assert nova.read_file("/f") == b"no fsync, still durable"

    def test_recovery_charges_scan(self, nova, clock):
        nova.write_file("/f", b"x" * 10_000)
        nova.crash()
        t0 = clock.now_ns
        nova.recover()
        assert clock.now_ns > t0
