"""Data-path semantics shared by every native file system: reads, writes,
sparse files, truncate, punch_hole, append."""

import pytest

from repro.errors import InvalidArgument
from repro.vfs.interface import OpenFlags

BS = 4096


@pytest.fixture
def handle(any_fs):
    h = any_fs.create("/f")
    yield h
    if h.is_open:
        any_fs.close(h)


class TestReadWrite:
    def test_roundtrip(self, any_fs, handle):
        any_fs.write(handle, 0, b"hello world")
        assert any_fs.read(handle, 0, 11) == b"hello world"

    def test_partial_read(self, any_fs, handle):
        any_fs.write(handle, 0, b"0123456789")
        assert any_fs.read(handle, 3, 4) == b"3456"

    def test_read_past_eof(self, any_fs, handle):
        any_fs.write(handle, 0, b"abc")
        assert any_fs.read(handle, 2, 100) == b"c"
        assert any_fs.read(handle, 3, 100) == b""
        assert any_fs.read(handle, 1000, 1) == b""

    def test_overwrite_within_block(self, any_fs, handle):
        any_fs.write(handle, 0, b"a" * 100)
        any_fs.write(handle, 50, b"B" * 10)
        data = any_fs.read(handle, 0, 100)
        assert data == b"a" * 50 + b"B" * 10 + b"a" * 40

    def test_cross_block_write(self, any_fs, handle):
        payload = bytes(range(256)) * 48  # 12 KiB, 3 blocks
        any_fs.write(handle, 100, payload)
        assert any_fs.read(handle, 100, len(payload)) == payload

    def test_unaligned_everything(self, any_fs, handle):
        any_fs.write(handle, BS - 7, b"x" * 14)  # straddles a block boundary
        assert any_fs.read(handle, BS - 7, 14) == b"x" * 14
        assert any_fs.getattr("/f").size == BS + 7

    def test_empty_write(self, any_fs, handle):
        assert any_fs.write(handle, 0, b"") == 0
        assert any_fs.getattr("/f").size == 0

    def test_write_returns_length(self, any_fs, handle):
        assert any_fs.write(handle, 0, b"12345") == 5

    def test_size_tracks_high_watermark(self, any_fs, handle):
        any_fs.write(handle, 0, b"x" * 10)
        any_fs.write(handle, 5, b"y" * 2)
        assert any_fs.getattr("/f").size == 10

    def test_negative_offset_rejected(self, any_fs, handle):
        with pytest.raises(InvalidArgument):
            any_fs.write(handle, -1, b"x")
        with pytest.raises(InvalidArgument):
            any_fs.read(handle, -1, 1)

    def test_readonly_handle_rejects_write(self, any_fs, handle):
        any_fs.write(handle, 0, b"x")
        any_fs.close(handle)
        ro = any_fs.open("/f", OpenFlags.RDONLY)
        with pytest.raises(InvalidArgument):
            any_fs.write(ro, 0, b"y")
        any_fs.close(ro)

    def test_writeonly_handle_rejects_read(self, any_fs, handle):
        any_fs.write(handle, 0, b"x")
        any_fs.close(handle)
        wo = any_fs.open("/f", OpenFlags.WRONLY)
        with pytest.raises(InvalidArgument):
            any_fs.read(wo, 0, 1)
        any_fs.close(wo)


class TestSparseFiles:
    def test_hole_reads_zero(self, any_fs, handle):
        any_fs.write(handle, 10 * BS, b"tail")
        assert any_fs.read(handle, 0, 16) == bytes(16)
        assert any_fs.read(handle, 5 * BS, 16) == bytes(16)
        assert any_fs.read(handle, 10 * BS, 4) == b"tail"

    def test_holes_consume_no_space(self, any_fs, handle):
        free_before = any_fs.statfs().free_blocks
        any_fs.write(handle, 1000 * BS, b"x")
        any_fs.fsync(handle)
        used = free_before - any_fs.statfs().free_blocks
        assert used <= 2  # one data block, not a thousand

    def test_st_blocks_counts_allocated_only(self, any_fs, handle):
        any_fs.write(handle, 100 * BS, bytes(BS))
        any_fs.fsync(handle)
        st = any_fs.getattr("/f")
        assert st.size == 101 * BS
        assert st.blocks <= 2 * (BS // 512)

    def test_fill_hole_later(self, any_fs, handle):
        any_fs.write(handle, 8 * BS, b"end")
        any_fs.write(handle, 4 * BS, b"middle")
        assert any_fs.read(handle, 4 * BS, 6) == b"middle"
        assert any_fs.read(handle, 8 * BS, 3) == b"end"


class TestTruncate:
    def test_shrink(self, any_fs, handle):
        any_fs.write(handle, 0, b"0123456789")
        any_fs.truncate(handle, 4)
        assert any_fs.getattr("/f").size == 4
        assert any_fs.read(handle, 0, 10) == b"0123"

    def test_shrink_then_grow_zeros(self, any_fs, handle):
        any_fs.write(handle, 0, b"x" * 10)
        any_fs.truncate(handle, 4)
        any_fs.write(handle, 8, b"y")
        assert any_fs.read(handle, 0, 9) == b"xxxx\0\0\0\0y"

    def test_grow_is_sparse(self, any_fs, handle):
        free_before = any_fs.statfs().free_blocks
        any_fs.truncate(handle, 100 * BS)
        any_fs.fsync(handle)
        assert any_fs.getattr("/f").size == 100 * BS
        assert free_before - any_fs.statfs().free_blocks <= 1

    def test_shrink_frees_blocks(self, any_fs, handle):
        any_fs.write(handle, 0, bytes(64 * BS))
        any_fs.fsync(handle)
        used_full = any_fs.statfs().free_blocks
        any_fs.truncate(handle, BS)
        any_fs.fsync(handle)
        assert any_fs.statfs().free_blocks > used_full

    def test_truncate_to_zero(self, any_fs, handle):
        any_fs.write(handle, 0, b"data")
        any_fs.truncate(handle, 0)
        assert any_fs.getattr("/f").size == 0
        assert any_fs.read(handle, 0, 4) == b""

    def test_partial_block_boundary(self, any_fs, handle):
        any_fs.write(handle, 0, b"z" * (BS + 100))
        any_fs.truncate(handle, BS + 10)
        assert any_fs.read(handle, BS, 100) == b"z" * 10

    def test_negative_rejected(self, any_fs, handle):
        with pytest.raises(InvalidArgument):
            any_fs.truncate(handle, -1)


class TestAppend:
    def test_append_flag(self, any_fs):
        any_fs.write_file("/f", b"head")
        handle = any_fs.open("/f", OpenFlags.RDWR | OpenFlags.APPEND)
        any_fs.write(handle, 0, b"-tail")  # offset ignored with O_APPEND
        assert any_fs.read(handle, 0, 9) == b"head-tail"
        any_fs.close(handle)

    def test_append_helper(self, any_fs, handle):
        any_fs.write(handle, 0, b"one")
        any_fs.append(handle, b"two")
        assert any_fs.read(handle, 0, 6) == b"onetwo"


class TestPunchHole:
    def test_punch_reads_zero(self, any_fs, handle):
        any_fs.write(handle, 0, b"q" * (4 * BS))
        any_fs.fsync(handle)
        any_fs.punch_hole(handle, BS, 2 * BS)
        assert any_fs.read(handle, 0, BS) == b"q" * BS
        assert any_fs.read(handle, BS, 2 * BS) == bytes(2 * BS)
        assert any_fs.read(handle, 3 * BS, BS) == b"q" * BS

    def test_punch_keeps_size(self, any_fs, handle):
        any_fs.write(handle, 0, b"q" * (4 * BS))
        any_fs.punch_hole(handle, 0, 4 * BS)
        assert any_fs.getattr("/f").size == 4 * BS

    def test_punch_frees_blocks(self, any_fs, handle):
        any_fs.write(handle, 0, bytes(32 * BS))
        any_fs.fsync(handle)
        free_before = any_fs.statfs().free_blocks
        any_fs.punch_hole(handle, 0, 32 * BS)
        any_fs.fsync(handle)
        assert any_fs.statfs().free_blocks >= free_before + 30

    def test_unaligned_rejected(self, any_fs, handle):
        with pytest.raises(InvalidArgument):
            any_fs.punch_hole(handle, 1, BS)
        with pytest.raises(InvalidArgument):
            any_fs.punch_hole(handle, 0, BS - 1)


class TestFsync:
    def test_fsync_persists_to_device(self, any_fs):
        handle = any_fs.create("/f")
        any_fs.write(handle, 0, b"durable")
        any_fs.fsync(handle)
        # everything the FS buffered must now be on the device
        assert any_fs.device.stats.bytes_written > 0
        any_fs.close(handle)

    def test_fsync_idempotent(self, any_fs):
        handle = any_fs.create("/f")
        any_fs.write(handle, 0, b"x")
        any_fs.fsync(handle)
        writes = any_fs.device.stats.write_ops
        any_fs.fsync(handle)
        any_fs.fsync(handle)
        # no data re-written (at most journal/metadata noise)
        assert any_fs.device.stats.write_ops <= writes + 1
        any_fs.close(handle)
