"""Mux namespace: the uniform merged directory tree (§2.1)."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
)
from repro.vfs.interface import OpenFlags


@pytest.fixture
def mux(stack):
    return stack.mux


class TestNamespace:
    def test_create_and_stat(self, mux):
        mux.create("/f")
        st = mux.getattr("/f")
        assert st.size == 0
        assert not st.is_dir

    def test_create_duplicate(self, mux):
        mux.create("/f")
        with pytest.raises(FileExists):
            mux.create("/f")

    def test_open_missing(self, mux):
        with pytest.raises(FileNotFound):
            mux.open("/ghost", OpenFlags.RDONLY)

    def test_open_creat_trunc(self, mux):
        mux.write_file("/f", b"old content")
        handle = mux.open("/f", OpenFlags.RDWR | OpenFlags.TRUNC)
        assert mux.getattr("/f").size == 0
        mux.close(handle)

    def test_mkdir_tree(self, mux):
        mux.mkdir("/a")
        mux.mkdir("/a/b")
        mux.write_file("/a/b/f", b"x")
        assert mux.readdir("/a") == ["b"]
        assert mux.readdir("/a/b") == ["f"]

    def test_rmdir(self, mux):
        mux.mkdir("/d")
        mux.rmdir("/d")
        assert not mux.exists("/d")

    def test_rmdir_nonempty(self, mux):
        mux.mkdir("/d")
        mux.write_file("/d/f", b"")
        with pytest.raises(DirectoryNotEmpty):
            mux.rmdir("/d")

    def test_unlink(self, mux):
        mux.write_file("/f", b"bye")
        mux.unlink("/f")
        assert not mux.exists("/f")

    def test_unlink_dir_rejected(self, mux):
        mux.mkdir("/d")
        with pytest.raises(IsADirectory):
            mux.unlink("/d")

    def test_readdir_hides_mux_internal_files(self, mux):
        assert mux.readdir("/") == []


class TestBackingFiles:
    """Mux mirrors files as sparse backing files on the tiers it uses."""

    def test_backing_file_created_on_initial_tier(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, b"data")
        # LRU policy places on the fastest tier: pm
        assert stack.vfs.exists("/tiers/pm/f")
        mux.close(handle)

    def test_backing_files_in_subdirs(self, stack):
        mux = stack.mux
        mux.mkdir("/deep")
        mux.mkdir("/deep/er")
        mux.write_file("/deep/er/f", b"x")
        assert stack.vfs.exists("/tiers/pm/deep/er/f")

    def test_unlink_removes_backing(self, stack):
        mux = stack.mux
        mux.write_file("/f", b"x")
        assert stack.vfs.exists("/tiers/pm/f")
        mux.unlink("/f")
        assert not stack.vfs.exists("/tiers/pm/f")

    def test_same_name_on_multiple_tiers(self, stack):
        """§2.1: the same file name exists in different file systems."""
        from repro.core.policy import MigrationOrder

        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * 4096))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, 4, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        assert stack.vfs.exists("/tiers/pm/f")
        assert stack.vfs.exists("/tiers/ssd/f")
        mux.close(handle)


class TestRename:
    def test_rename_moves_backing_files(self, stack):
        mux = stack.mux
        mux.write_file("/a", b"payload")
        mux.rename("/a", "/b")
        assert mux.read_file("/b") == b"payload"
        assert not stack.vfs.exists("/tiers/pm/a")
        assert stack.vfs.exists("/tiers/pm/b")

    def test_rename_into_directory(self, stack):
        mux = stack.mux
        mux.mkdir("/d")
        mux.write_file("/a", b"1")
        mux.rename("/a", "/d/a")
        assert mux.read_file("/d/a") == b"1"
        assert stack.vfs.exists("/tiers/pm/d/a")

    def test_rename_directory_moves_children(self, stack):
        mux = stack.mux
        mux.mkdir("/d1")
        mux.write_file("/d1/f", b"deep")
        mux.rename("/d1", "/d2")
        assert mux.read_file("/d2/f") == b"deep"
        assert stack.vfs.exists("/tiers/pm/d2/f")

    def test_rename_overwrite(self, stack):
        mux = stack.mux
        mux.write_file("/a", b"new")
        mux.write_file("/b", b"old")
        mux.rename("/a", "/b")
        assert mux.read_file("/b") == b"new"

    def test_reopen_after_rename(self, stack):
        mux = stack.mux
        mux.write_file("/a", b"v")
        mux.rename("/a", "/b")
        handle = mux.open("/b", OpenFlags.RDWR)
        mux.write(handle, 1, b"2")
        assert mux.read(handle, 0, 2) == b"v2"
        mux.close(handle)


class TestStatfs:
    def test_aggregates_all_tiers(self, stack):
        mux = stack.mux
        total = sum(
            fs.statfs().total_blocks for fs in stack.filesystems.values()
        )
        assert mux.statfs().total_blocks == total

    def test_single_device_view(self, stack):
        """§1: expose the hierarchy as a single device."""
        stats = stack.mux.statfs()
        assert stats.free_bytes > 0
        assert stats.used_bytes >= 0
