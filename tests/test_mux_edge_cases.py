"""Mux edge cases: removal with a live cache, reads at EOF boundaries,
plans over deleted files, metafile wraparound."""

import pytest

from repro.core import calibration as cal
from repro.core.policy import MigrationOrder
from repro.stack import build_stack
from repro.tools.fsck import check_mux

MIB = 1024 * 1024
BS = 4096


class TestTierRemovalWithCache:
    def test_removing_pm_tier_drops_cache(self):
        stack = build_stack(
            capacities={"pm": 16 * MIB, "ssd": 64 * MIB, "hdd": 128 * MIB}
        )
        mux = stack.mux
        assert mux.cache is not None
        mux.write_file("/f", bytes(8 * BS))
        mux.remove_tier(stack.tier_id("pm"))
        assert mux.cache is None
        # everything still works cache-less
        assert mux.read_file("/f") == bytes(8 * BS)
        assert check_mux(mux) == []


class TestEofBoundaries:
    def test_partial_block_at_eof_through_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, b"X" * (BS + 100))  # 1 full block + 100 bytes
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 2, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        # cached read of the EOF partial block must not invent bytes
        assert mux.read(handle, BS, 500) == b"X" * 100
        assert mux.read(handle, BS, 500) == b"X" * 100  # now from SCM cache
        mux.close(handle)

    def test_read_exactly_at_size(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, b"12345")
        assert mux.read(handle, 5, 1) == b""
        assert mux.read(handle, 4, 1) == b"5"
        mux.close(handle)

    def test_zero_length_ops(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        assert mux.write(handle, 0, b"") == 0
        assert mux.read(handle, 0, 0) == b""
        mux.punch_hole(handle, 0, 0)
        mux.close(handle)


class TestPlansOverDeletedFiles:
    def test_maintain_skips_vanished_files(self, stack_nocache):
        from repro.core.policies import LruTieringPolicy

        stack = stack_nocache
        mux = stack.mux
        mux.policy = LruTieringPolicy(high_watermark=0.3, low_watermark=0.2)
        handle = mux.create("/doomed")
        mux.write(handle, 0, bytes(8 * MIB))
        mux.close(handle)
        # the plan will want to demote /doomed; delete it first
        orders = mux.policy.plan_migrations(mux.tier_states(), mux.file_views())
        mux.unlink("/doomed")
        for order in orders:
            # engine must not blow up on stale ino; mux.maintain filters
            from repro.errors import FileNotFound

            try:
                mux.ns.get(order.ino)
            except FileNotFound:
                continue
        assert mux.maintain() >= 0  # runs cleanly with nothing to do


class TestMetafileWraparound:
    def test_metafile_write_wraps_at_cap(self, stack):
        mux = stack.mux
        meta = mux._meta
        # drive enough records through to exceed MAX_BYTES several times
        records_needed = (meta.MAX_BYTES // cal.META_RECORD_BYTES) + 100
        for _ in range(records_needed // cal.META_SYNC_RECORDS + 2):
            meta.note(cal.META_SYNC_RECORDS)
        assert meta._offset <= meta.MAX_BYTES
        # the metafile never exceeds the cap on the PM tier
        size = stack.filesystems["pm"].getattr("/.mux_meta").size
        assert size <= meta.MAX_BYTES


class TestStatsSurfaces:
    def test_split_read_counter(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 4, 4, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        before = mux.stats.get("split_reads")
        mux.read(handle, 0, 8 * BS)
        assert mux.stats.get("split_reads") > before
        mux.close(handle)

    def test_bytes_counters(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(1000))
        mux.read(handle, 0, 1000)
        assert mux.stats.get("bytes_written") == 1000
        assert mux.stats.get("bytes_read") == 1000
        mux.close(handle)
